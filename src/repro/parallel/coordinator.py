"""The sharded enumeration coordinator.

:class:`ParallelEnumerator` decomposes a compilation job top-down —
program → functions → frontier-level sub-shards — into a work queue
consumed by a ``multiprocessing`` worker pool, merges the shard
results deterministically (see :mod:`repro.parallel.merge`), and
produces per-function :class:`EnumerationResult` objects whose DAGs
are bit-identical to serial runs.

Scheduling model
----------------
Each function job advances level by level (the enumeration is
level-synchronous, like the serial algorithm), but different functions
overlap freely: while one function waits for the last shard of its
level, the pool stays busy on other functions' shards.  Within one
function, a wide frontier is split into sub-shards so several workers
expand it concurrently.

Fault model
-----------
Every dispatched shard is a **lease**: the coordinator tracks the
worker's process liveness and heartbeats, and when a worker dies or
goes silent past ``lease_timeout`` the shard is re-leased (to a
respawned worker slot), resuming from the shard's last checkpoint if
one was written.  Shard expansion is deterministic — including
per-shard seeded fault injection — so a re-leased shard produces the
same result no matter which worker runs it or how often it was
interrupted.

Persistence
-----------
With a ``run_dir``, the coordinator journals progress at three
granularities, all through the PR-1 checkpoint format:

- per-shard partial results (written by workers);
- per-function level checkpoints, written at level barriers in the
  exact :mod:`repro.core.checkpoint` layout — a parallel run aborted
  by budget or ^C can be **resumed serially** with ``--checkpoint
  ... --resume``, and vice versa;
- the completed-space store (:mod:`repro.parallel.store`), which later
  runs hit instead of re-enumerating.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import re
import signal
import threading
import time
from multiprocessing.connection import wait as connection_wait
from collections import deque
from typing import Dict, List, NamedTuple, Optional, Sequence

from repro.core import checkpoint as ckpt
from repro.core.dag import SpaceDAG
from repro.core.enumeration import (
    EnumerationConfig,
    EnumerationResult,
    _arrival_phases,
    _node_key,
)
from repro.core.fingerprint import fingerprint_function
from repro.ir.function import Function
from repro.machine.target import DEFAULT_TARGET
from repro.observability import manifest as manifest_mod
from repro.observability.tracer import Tracer
from repro.opt import implicit_cleanup
from repro.parallel import shards as shards_mod
from repro.parallel.merge import merge_shard
from repro.parallel.store import SpaceStore, cacheable, store_signature
from repro.parallel.telemetry import ProgressReporter
from repro.parallel.worker import worker_main
from repro.robustness.quarantine import QuarantineLog
from repro.robustness.retry import RetryBudget


class EnumerationRequest(NamedTuple):
    """One function to enumerate: a display label, the function, and —
    when differential testing is on — its program's mini-C source."""

    label: str
    function: Function
    source: Optional[str] = None


class ParallelConfig:
    """Tunables of the parallel service (the serial knobs stay on
    :class:`EnumerationConfig`)."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        shard_size: Optional[int] = None,
        lease_timeout: float = 30.0,
        heartbeat_interval: float = 0.5,
        shard_checkpoint_interval: float = 5.0,
        checkpoint_interval: float = 30.0,
        run_dir: Optional[str] = None,
        resume: bool = False,
        store: Optional[SpaceStore] = None,
        progress: Optional[ProgressReporter] = None,
        chaos: Optional[Dict] = None,
        start_method: Optional[str] = None,
        tracer: Optional[Tracer] = None,
    ):
        #: worker process count
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        #: frontier nodes per shard (None = auto from frontier width)
        self.shard_size = shard_size
        #: seconds of heartbeat silence before a lease is reclaimed;
        #: must exceed the worst-case single-node expansion time
        self.lease_timeout = lease_timeout
        self.heartbeat_interval = heartbeat_interval
        #: how often workers persist partial shards (0 = every node)
        self.shard_checkpoint_interval = shard_checkpoint_interval
        #: how often level checkpoints are written at barriers
        self.checkpoint_interval = checkpoint_interval
        #: directory for the persistent work journal (shard + level
        #: checkpoints, telemetry JSONL); None disables persistence
        self.run_dir = run_dir
        #: continue from level checkpoints found in run_dir
        self.resume = resume
        #: completed-space cache consulted before enumerating
        self.store = store
        #: telemetry sink (events + status line); caller-owned
        self.progress = progress
        #: test hook: {"worker": id, "after_nodes": n, "kind":
        #: "exit"|"hang"} — makes one worker fail mid-shard, once
        self.chaos = chaos
        self.start_method = start_method
        #: observability tracer (journal + manifest); caller-owned.
        #: When None and a run_dir is set (without a legacy journaling
        #: reporter), the coordinator builds and owns one.
        self.tracer = tracer

    def resolve_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        env = os.environ.get("REPRO_START_METHOD")
        if env:
            return env
        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else "spawn"


def _safe_name(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]", "_", label)


def _recipe(dag: SpaceDAG, node_id: int) -> str:
    """The serial enumerator's recipe for a node: the phase path along
    each node's first (creation) in-edge back to the root."""
    parts: List[str] = []
    while node_id != dag.root_id:
        parent_id, phase_id = dag.nodes[node_id].parents[0]
        parts.append(phase_id)
        node_id = parent_id
    return "".join(reversed(parts))


class _FunctionJob:
    """Coordinator-side state of one function's enumeration."""

    def __init__(
        self,
        job_id: int,
        request: EnumerationRequest,
        config: EnumerationConfig,
        run_dir: Optional[str],
    ):
        self.job_id = job_id
        self.label = request.label
        self.source = request.source
        self.config = config
        self.function_name = request.function.name
        root = request.function.clone()
        if not config.canonical_input:
            implicit_cleanup(root)
        fingerprint = fingerprint_function(
            root, keep_text=config.exact, remap=config.remap
        )
        self.root_key = _node_key(fingerprint, root)
        self.dag = SpaceDAG(self.function_name)
        root_node = self.dag.add_node(
            self.root_key, 0, fingerprint.num_insts, fingerprint.cf_crc
        )
        #: node id -> serialized Function, for every pending instance
        self.functions: Dict[int, dict] = {
            root_node.node_id: ckpt.function_to_dict(root)
        }
        self.root_function_dict = self.functions[root_node.node_id]
        self.texts: Dict[object, str] = (
            {self.root_key: fingerprint.text} if config.exact else {}
        )
        self.frontier: List[int] = [root_node.node_id]
        self.frontier_index = 0
        self.next_frontier: List[int] = []
        self.level = 0
        self.attempted = 0
        self.applied = 0
        #: phase id -> {"active", "dormant", "quarantined"} counts,
        #: folded at merge time (see repro.parallel.merge)
        self.phase_counts: Dict[str, Dict[str, int]] = {}
        #: sanitizer counters (edges, findings, verdicts), folded from
        #: worker outcomes at merge time; empty without --sanitize
        self.sanitize_counts: Dict[str, int] = {}
        #: semantic-collapse decision state (collapse=semantic only);
        #: lives on the coordinator so workers never race on merges and
        #: the replay merge decides in exact serial order
        self.collapser = None
        if getattr(config, "collapse", "syntactic") == "semantic":
            from repro.staticanalysis.canon import SemanticCollapser

            program = None
            if request.source is not None:
                from repro.frontend import compile_source

                program = compile_source(request.source)
            self.collapser = SemanticCollapser(
                program=program, entry=self.function_name
            )
            self.collapser.register(
                self.collapser.digest_of(root), root_node.node_id, root
            )
        self.quarantine = QuarantineLog()
        #: seconds consumed by prior runs (level-checkpoint resume)
        self.consumed = 0.0
        #: started lazily at first planning, so time_limit measures the
        #: function's own enumeration (serial semantics), not how long
        #: the job sat queued behind other functions
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self.state = "ready"  # ready | waiting | done
        self.completed = False
        self.abort_reason: Optional[str] = None
        self.resumed_from: Optional[str] = None
        self._cached: Optional[EnumerationResult] = None
        # current level's shard bookkeeping
        self.expected: List[int] = []
        self.results: Dict[int, Dict] = {}
        self.merged = 0
        self.done_shards = set()
        self.checkpoint_path = (
            os.path.join(run_dir, f"{_safe_name(self.label)}.ckpt.json")
            if run_dir
            else None
        )
        self._last_checkpoint = time.monotonic()

    # ------------------------------------------------------------------

    def start_clock(self) -> None:
        if self.start is None:
            self.start = time.monotonic()

    def elapsed(self) -> float:
        if self.start is None:
            return self.consumed
        end = self.end if self.end is not None else time.monotonic()
        return self.consumed + end - self.start

    def adopt_cached(self, result: EnumerationResult) -> None:
        self._cached = result
        self.state = "done"
        self.completed = True
        self.end = time.monotonic()

    def result(self) -> EnumerationResult:
        if self._cached is not None:
            return self._cached
        return EnumerationResult(
            self.dag,
            self.completed,
            self.attempted,
            self.applied,
            self.elapsed(),
            self.abort_reason,
            quarantine=self.quarantine,
            levels_completed=self.level,
            resumed_from=self.resumed_from,
            sanitize_stats=self.sanitize_counts or None,
            collapse_stats=(
                self.collapser.stats_fields()
                if self.collapser is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Level checkpoints (PR-1 format; serially resumable)
    # ------------------------------------------------------------------

    def checkpoint_state(self, outstanding_specs: Dict[int, Dict]) -> Dict:
        pending = self.frontier[self.frontier_index :] + self.next_frontier
        functions = {
            str(node_id): self.functions[node_id]
            for node_id in pending
            if node_id in self.functions
        }
        # Frontier instances currently embedded in unmerged shard specs.
        for shard_id in self.expected[self.merged :]:
            spec = outstanding_specs.get(shard_id)
            if spec is not None:
                for entry in spec["nodes"]:
                    functions[str(entry["node_id"])] = entry["function"]
        state: Dict[str, object] = {
            "function_name": self.function_name,
            "config": self.config.signature(),
            "completed": False,
            "level": self.level,
            "frontier": list(self.frontier),
            "frontier_index": self.frontier_index,
            "next_frontier": list(self.next_frontier),
            "attempted": self.attempted,
            "applied": self.applied,
            "elapsed": self.elapsed(),
            "dag": ckpt.dag_to_dict(self.dag),
            "root_function": self.root_function_dict,
            "functions": functions,
            "recipes": {
                str(node_id): _recipe(self.dag, node_id) for node_id in pending
            },
            "texts": [
                [ckpt.key_to_json(key), text] for key, text in self.texts.items()
            ],
            "quarantine": self.quarantine.to_dicts(),
        }
        if self.collapser is not None:
            state["collapse"] = self.collapser.state_dict()
        return state

    def write_checkpoint(
        self, outstanding_specs: Dict[int, Dict], interval: float, force: bool = False
    ) -> bool:
        """Persist a level checkpoint; True when one was written."""
        if self.checkpoint_path is None or self.state == "done":
            return False
        now = time.monotonic()
        if not force and now - self._last_checkpoint < interval:
            return False
        self._last_checkpoint = now
        ckpt.save_checkpoint(self.checkpoint_path, self.checkpoint_state(outstanding_specs))
        return True

    def try_restore(self) -> bool:
        """Continue from a level checkpoint in run_dir, if present.

        A checkpoint that is unreadable, fails its integrity check, or
        will not rebuild raises CheckpointError (CKP001) — resuming is
        an explicit request, so silently starting over would be wrong.
        """
        path = self.checkpoint_path
        if path is None or not os.path.exists(path):
            return False
        state = ckpt.load_checkpoint(path, require=ckpt.ENUMERATION_KEYS)
        try:
            return self._restore_state(path, state)
        except ckpt.CheckpointError:
            raise
        except (KeyError, IndexError, TypeError, ValueError, AttributeError) as error:
            raise ckpt.CheckpointError(
                f"checkpoint {path} is structurally invalid: "
                f"{type(error).__name__}: {error}"
            ) from error

    def _restore_state(self, path: str, state: Dict) -> bool:
        if state["function_name"] != self.function_name:
            raise ckpt.CheckpointError(
                f"checkpoint {path} is for function "
                f"{state['function_name']!r}, not {self.function_name!r}"
            )
        if state["config"] != self.config.signature():
            raise ckpt.CheckpointError(
                f"checkpoint {path} was written with different enumeration "
                f"settings ({state['config']} != {self.config.signature()})"
            )
        dag = ckpt.dag_from_dict(self.function_name, state["dag"])
        if dag.root.key != self.root_key:
            raise ckpt.CheckpointError(
                f"checkpoint {path} was written for a different version of "
                f"{self.function_name!r} (root fingerprint mismatch)"
            )
        self.dag = dag
        self.frontier = list(state["frontier"])
        self.frontier_index = state["frontier_index"]
        self.next_frontier = list(state["next_frontier"])
        self.functions = {
            int(node_id): data for node_id, data in state["functions"].items()
        }
        self.texts = {
            ckpt.key_from_json(key): text for key, text in state["texts"]
        }
        self.attempted = state["attempted"]
        self.applied = state["applied"]
        self.consumed = state["elapsed"]
        self.level = state["level"]
        if self.collapser is not None:
            # The signature check above guarantees a semantic-mode
            # checkpoint, so the collapse state exists (serial and
            # parallel runs write the same key, interchangeably).
            self.collapser.restore(state["collapse"])
        self.quarantine = QuarantineLog.from_dicts(state["quarantine"])
        # A checkpoint written exactly at a level boundary has its whole
        # frontier expanded; roll to the next level like the serial
        # loop's top would.
        if self.frontier and self.frontier_index >= len(self.frontier):
            self.frontier = self.next_frontier
            self.next_frontier = []
            self.frontier_index = 0
            self.level += 1
        self.resumed_from = path
        return True

    def discard_checkpoint(self) -> None:
        if self.checkpoint_path is not None:
            try:
                os.unlink(self.checkpoint_path)
            except OSError:
                pass


class _WorkerSlot:
    """One worker process slot (respawned across worker deaths)."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.process = None
        self.task_queue = None
        #: per-worker event channel.  Deliberately *not* shared: a
        #: worker killed mid-write can leave a multiprocessing.Queue's
        #: cross-process lock held forever, deadlocking every other
        #: worker's put().  A SimpleQueue with a single writer confines
        #: any damage to the dead worker's own channel.
        self.event_queue = None
        self.busy: Optional[int] = None  # leased shard id
        self.last_heartbeat = 0.0


class ParallelEnumerator:
    """Sharded multi-process exhaustive enumeration service."""

    #: a worker slot dying this often aborts the run (systemic failure)
    MAX_SLOT_DEATHS = 3
    #: a shard failing this often aborts its function job
    MAX_SHARD_RETRIES = 2

    def __init__(
        self,
        config: Optional[EnumerationConfig] = None,
        parallel: Optional[ParallelConfig] = None,
    ):
        self.config = config if config is not None else EnumerationConfig()
        self.parallel = parallel if parallel is not None else ParallelConfig()
        self._check_supported(self.config)
        self._slots: List[_WorkerSlot] = []
        self._specs: Dict[int, Dict] = {}
        self._spec_job: Dict[int, _FunctionJob] = {}
        self._pending = deque()
        #: shard re-lease budget: a shard failing more than
        #: MAX_SHARD_RETRIES times aborts its function job
        self._shard_retries = RetryBudget(self.MAX_SHARD_RETRIES)
        #: worker respawn budget: one slot dying more than
        #: MAX_SLOT_DEATHS times is systemic, not transient
        self._respawns = RetryBudget(self.MAX_SLOT_DEATHS)
        self._next_shard_id = 0
        self._instances = 0
        self._ctx = None
        #: cross-run phase-transition memo (loaded from the store);
        #: None when the run is ineligible (exact, guarded, sabotaged)
        self._memo = None
        if self.parallel.run_dir:
            os.makedirs(self.parallel.run_dir, exist_ok=True)
        self._tracer = self.parallel.tracer
        self._owns_tracer = False
        reporter = self.parallel.progress
        if (
            self._tracer is None
            and self.parallel.run_dir
            and (reporter is None or reporter.jsonl_path is None)
        ):
            # No caller-provided tracer and no legacy journal-owning
            # reporter: give the run dir its journal + manifest here.
            self._tracer = self._build_tracer()
            self._owns_tracer = True

    def _build_tracer(self) -> Tracer:
        config, parallel = self.config, self.parallel
        seeds: Dict[str, object] = {}
        if config.fault_injector is not None:
            seeds["fault"] = config.fault_injector.seed
        manifest = manifest_mod.build_manifest(
            tool="repro.parallel",
            config=store_signature(config),
            seeds=seeds,
            extra={
                "jobs": parallel.jobs,
                "start_method": parallel.resolve_start_method(),
            },
        )
        tracer = Tracer(run_dir=parallel.run_dir, manifest=manifest)
        tracer.emit("run_start", tool="repro.parallel", jobs=parallel.jobs)
        return tracer

    @staticmethod
    def _check_supported(config: EnumerationConfig) -> None:
        if not config.share_prefixes:
            raise ValueError(
                "parallel enumeration requires share_prefixes=True "
                "(sequence-replay mode is a serial ablation)"
            )
        if config.keep_functions:
            raise ValueError("keep_functions is not supported in parallel runs")
        if config.checkpoint_path is not None or config.resume:
            raise ValueError(
                "use ParallelConfig(run_dir=..., resume=...) instead of "
                "EnumerationConfig checkpointing for parallel runs"
            )
        if config.input_vectors is not None:
            raise ValueError(
                "custom difftest input vectors are not supported in "
                "parallel runs (workers derive the default vectors)"
            )
        if config.target is not DEFAULT_TARGET:
            raise ValueError("parallel workers only support the default target")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def enumerate(
        self, requests: Sequence[EnumerationRequest]
    ) -> List[EnumerationResult]:
        """Enumerate every requested function; results in request order."""
        ok = False
        try:
            results = self._enumerate(requests)
            ok = True
            return results
        finally:
            if self._owns_tracer and self._tracer is not None:
                self._tracer.close(ok=ok)

    def _enumerate(
        self, requests: Sequence[EnumerationRequest]
    ) -> List[EnumerationResult]:
        config, parallel = self.config, self.parallel
        if config.difftest or config.sanitize == "full":
            need = "difftest" if config.difftest else "sanitize=full"
            for request in requests:
                if request.source is None:
                    raise ValueError(
                        f"{need} requires program source for {request.label!r}"
                    )
        labels = set()
        for request in requests:
            if request.label in labels:
                raise ValueError(f"duplicate request label {request.label!r}")
            labels.add(request.label)
        self._emit("job_start", functions=len(requests), jobs=parallel.jobs)
        # Warm transition memo: hot-path shortcut for re-reached
        # instances.  Exact mode verifies rather than trusts (and only
        # the serial engine implements the verification), and guarded
        # runs must actually execute phases, so both stay cold here.
        if (
            parallel.store is not None
            and not config.exact
            and not config.guards_enabled()
            and cacheable(config)
        ):
            self._memo = parallel.store.load_memo(config)
            if len(self._memo):
                self._emit("memo_loaded", entries=len(self._memo))
        jobs = [
            _FunctionJob(job_id, request, config, parallel.run_dir)
            for job_id, request in enumerate(requests)
        ]
        for job in jobs:
            cached = (
                parallel.store.get(job.function_name, job.root_key, config)
                if parallel.store is not None
                else None
            )
            if cached is not None:
                job.adopt_cached(cached)
                self._emit("cache_hit", function=job.label)
            elif parallel.resume and job.try_restore():
                self._emit(
                    "job_restored",
                    function=job.label,
                    level=job.level,
                    instances=len(job.dag),
                )
        if any(job.state != "done" for job in jobs):
            self._run_pool(jobs)
        if self._memo is not None:
            # Memo entries are per-transition facts, valid even from an
            # aborted run — persist whatever was learned.
            parallel.store.save_memo(config, self._memo)
            self._emit(
                "memo_saved",
                entries=len(self._memo),
                hits=self._memo.hits,
                misses=self._memo.misses,
            )
        if parallel.progress is not None:
            parallel.progress.tick(force=True)
        self._emit(
            "job_done",
            instances=self._instances,
            functions=len(jobs),
            completed=sum(1 for job in jobs if job.completed),
        )
        return [job.result() for job in jobs]

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _job_spec(self, with_chaos: bool) -> Dict:
        config, parallel = self.config, self.parallel
        fault = None
        if config.fault_injector is not None:
            injector = config.fault_injector
            fault = {
                "seed": injector.seed,
                "rate": injector.rate,
                "modes": list(injector.modes),
            }
        spec = {
            "config": {
                "phases": "".join(phase.id for phase in config.phases),
                "remap": config.remap,
                "exact": config.exact,
                "validate": config.validate,
                "difftest": bool(config.difftest),
                "phase_timeout": config.phase_timeout,
                "sanitize": config.sanitize,
                "fault": fault,
            },
            "run_dir": parallel.run_dir,
            "heartbeat_interval": parallel.heartbeat_interval,
            "shard_checkpoint_interval": parallel.shard_checkpoint_interval,
        }
        if with_chaos and parallel.chaos is not None:
            spec["chaos"] = dict(parallel.chaos)
        return spec

    def _spawn(self, slot: _WorkerSlot, with_chaos: bool) -> None:
        # fresh queues per (re)spawn: nothing is inherited from a
        # previous incarnation that died holding a lock or a half
        # written pipe message
        slot.task_queue = self._ctx.Queue()
        slot.event_queue = self._ctx.SimpleQueue()
        slot.process = self._ctx.Process(
            target=worker_main,
            args=(
                slot.worker_id,
                self._job_spec(with_chaos),
                slot.task_queue,
                slot.event_queue,
            ),
            daemon=True,
        )
        slot.process.start()

    def _run_pool(self, jobs: List[_FunctionJob]) -> None:
        self._ctx = multiprocessing.get_context(self.parallel.resolve_start_method())
        self._slots = [_WorkerSlot(i) for i in range(self.parallel.jobs)]
        for slot in self._slots:
            self._spawn(slot, with_chaos=True)
        previous_sigterm = self._install_sigterm()
        try:
            self._drive(jobs)
        except KeyboardInterrupt:
            for job in jobs:
                if job.state != "done" and job.write_checkpoint(
                    self._specs, 0.0, force=True
                ):
                    self._emit(
                        "checkpoint_write",
                        path=job.checkpoint_path,
                        function=job.label,
                        level=job.level,
                    )
            raise
        finally:
            if previous_sigterm is not None:
                signal.signal(signal.SIGTERM, previous_sigterm)
            self._shutdown()

    def _install_sigterm(self):
        """SIGTERM parity with ^C: an orchestrator shutdown must take
        the same graceful path (checkpoint every job, drain the pool)
        as KeyboardInterrupt, not kill the coordinator mid-merge.
        Handlers can only be installed on the main thread."""
        if threading.current_thread() is not threading.main_thread():
            return None

        def _handler(signum, frame):
            raise KeyboardInterrupt

        return signal.signal(signal.SIGTERM, _handler)

    def _shutdown(self) -> None:
        for slot in self._slots:
            if slot.process is not None and slot.process.is_alive():
                try:
                    slot.task_queue.put(None)
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            self._drain_events()  # unblock workers mid-put
            if all(
                slot.process is None or not slot.process.is_alive()
                for slot in self._slots
            ):
                break
            time.sleep(0.02)
        for slot in self._slots:
            if slot.process is not None and slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(1.0)
                if slot.process.is_alive():
                    slot.process.kill()
        self._drain_events()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _drive(self, jobs: List[_FunctionJob]) -> None:
        while True:
            free = sum(1 for slot in self._slots if slot.busy is None)
            for job in jobs:
                if job.state != "ready":
                    continue
                # In-flight jobs always replan (level roll); a *new*
                # function only starts once the shard queue is starved,
                # so its time_limit clock is not charged for work that
                # belongs to the functions ahead of it.
                if job.start is None and len(self._pending) >= max(1, free):
                    continue
                self._plan(job)
            if all(job.state == "done" for job in jobs):
                return
            self._dispatch()
            self._pump_events(timeout=0.05)
            self._check_budgets(jobs)
            self._health()
            reporter = self.parallel.progress
            if reporter is not None:
                busy = sum(1 for slot in self._slots if slot.busy is not None)
                reporter.gauges(
                    queue_depth=len(self._pending) + busy,
                    busy=busy,
                    instances=self._instances,
                )
                reporter.tick()

    # ------------------------------------------------------------------
    # Planning (program -> function -> frontier sub-shards)
    # ------------------------------------------------------------------

    def _plan(self, job: _FunctionJob) -> None:
        job.start_clock()
        config = job.config
        pending = job.frontier[job.frontier_index :]
        if not pending:
            self._finish(job, completed=True)
            return
        at_level_start = job.frontier_index == 0 and not job.next_frontier
        if at_level_start:
            if (
                config.max_levels is not None
                and job.level >= config.max_levels
            ):
                self._abort(job, "max_levels")
                return
            sequences_this_level = sum(
                len(config.phases)
                - len(_arrival_phases(job.dag.nodes[node_id]))
                for node_id in pending
            )
            if sequences_this_level > config.max_level_sequences:
                self._abort(job, "max_level_sequences")
                return
        if (
            config.time_limit is not None
            and job.elapsed() > config.time_limit
        ):
            self._abort(job, "time_limit")
            return
        size = self.parallel.shard_size or shards_mod.auto_shard_size(
            len(pending), self.parallel.jobs
        )
        job.expected = []
        job.results = {}
        job.merged = 0
        synthesized: List[Dict] = []
        for chunk in shards_mod.partition(pending, size):
            shard_id = self._next_shard_id
            self._next_shard_id += 1
            spec = {
                "shard_id": shard_id,
                "job_id": job.job_id,
                "function_name": job.function_name,
                "level": job.level,
                "nodes": [
                    {
                        "node_id": node_id,
                        "function": job.functions.pop(node_id),
                        "skip": sorted(
                            _arrival_phases(job.dag.nodes[node_id])
                        ),
                    }
                    for node_id in chunk
                ],
            }
            if (
                self.config.difftest or self.config.sanitize == "full"
            ) and job.source is not None:
                spec["source"] = job.source
            self._specs[shard_id] = spec
            self._spec_job[shard_id] = job
            job.expected.append(shard_id)
            memo_result = self._memo_expand(job, spec)
            if memo_result is not None:
                synthesized.append(memo_result)
            else:
                self._pending.append(shard_id)
        job.state = "waiting"
        self._emit(
            "level_start",
            function=job.label,
            level=job.level,
            frontier=len(pending),
            shards=len(job.expected),
            memo_shards=len(synthesized),
        )
        # Fully-memoized shards never reach a worker: their synthesized
        # results merge through the exact same replay path, so the DAG
        # stays bit-identical to a cold run.
        for result in synthesized:
            self._on_result(-1, result)

    def _memo_expand(self, job: _FunctionJob, spec: Dict) -> Optional[Dict]:
        """A synthesized worker result for a fully-memoized shard.

        Succeeds only when *every* non-arrival transition of every node
        in the shard is in the memo; a single cold transition sends the
        whole shard to a worker (workers re-derive everything anyway,
        and a per-phase split would complicate the replay for little
        gain — shards are cut along node boundaries).
        """
        memo = self._memo
        if memo is None or not memo.entries:
            return None
        config = job.config
        expansions = []
        functions: Dict[str, dict] = {}
        attempts = 0
        for entry_spec in spec["nodes"]:
            node = job.dag.nodes[entry_spec["node_id"]]
            skip = set(entry_spec["skip"])
            outcomes = []
            for phase in config.phases:
                if phase.id in skip:
                    continue
                entry = memo.entries.get((node.key, phase.id))
                if entry is None:
                    memo.misses += 1
                    return None
                attempts += 1
                if entry.dormant:
                    outcomes.append({"phase": phase.id, "active": False})
                    continue
                key_json = ckpt.key_to_json(entry.key)
                keystr = json.dumps(key_json)
                if keystr not in functions:
                    function = entry.function
                    if isinstance(function, Function):
                        function = ckpt.function_to_dict(function)
                    functions[keystr] = function
                outcomes.append(
                    {
                        "phase": phase.id,
                        "active": True,
                        "key": key_json,
                        "num_insts": entry.num_insts,
                        "cf_crc": entry.cf_crc,
                    }
                )
            expansions.append([entry_spec["node_id"], outcomes])
        memo.hits += attempts
        return {
            "shard_id": spec["shard_id"],
            "job_id": spec["job_id"],
            "level": spec["level"],
            "expansions": expansions,
            "functions": functions,
            "texts": {},
            "attempts": attempts,
            "wall": 0.0,
            "memo_shard": True,
        }

    def _record_memo(self, job: _FunctionJob, result: Dict) -> None:
        """Fold a worker shard's outcomes into the transition memo.

        Every recorded outcome is a valid deterministic fact keyed by
        instance content — including outcomes the replay later discards
        as stale arrivals (the worker really did apply the phase)."""
        memo = self._memo
        functions = result["functions"]
        for node_id, outcomes in result["expansions"]:
            parent_key = job.dag.nodes[node_id].key
            for outcome in outcomes:
                if outcome.get("quarantine"):
                    continue  # defensive: memo runs are unguarded
                if not outcome["active"]:
                    memo.record_dormant(parent_key, outcome["phase"])
                    continue
                memo.record_active(
                    parent_key,
                    outcome["phase"],
                    ckpt.key_from_json(outcome["key"]),
                    outcome["num_insts"],
                    outcome["cf_crc"],
                    functions[json.dumps(outcome["key"])],
                )

    def _dispatch(self) -> None:
        for slot in self._slots:
            if slot.busy is not None or not self._pending:
                continue
            while self._pending:
                shard_id = self._pending.popleft()
                job = self._spec_job.get(shard_id)
                if job is None or job.state == "done" or shard_id in job.done_shards:
                    continue  # stale work from an aborted/merged level
                slot.task_queue.put(self._specs[shard_id])
                slot.busy = shard_id
                slot.last_heartbeat = time.monotonic()
                self._emit(
                    "shard_dispatch", shard=shard_id, worker=slot.worker_id
                )
                break

    # ------------------------------------------------------------------
    # Events, merging, budgets, health
    # ------------------------------------------------------------------

    def _pump_events(self, timeout: float) -> None:
        if self._drain_events():
            return
        readers = [
            slot.event_queue._reader
            for slot in self._slots
            if slot.event_queue is not None
        ]
        if readers:
            # select()-based wakeup: react to the next event
            # immediately instead of polling on a sleep cadence
            connection_wait(readers, timeout)
            self._drain_events()
        else:
            time.sleep(timeout)

    def _drain_events(self) -> bool:
        handled = False
        for slot in self._slots:
            channel = slot.event_queue
            if channel is None:
                continue
            # single reader: empty() == False guarantees get() returns
            while not channel.empty():
                self._handle_event(channel.get())
                handled = True
        return handled

    def _handle_event(self, event) -> None:
        kind, worker_id, payload = event
        slot = self._slots[worker_id]
        if kind == "heartbeat":
            slot.last_heartbeat = time.monotonic()
        elif kind == "shard_resumed":
            slot.last_heartbeat = time.monotonic()
            self._emit(
                "shard_resumed",
                shard=payload["shard_id"],
                worker=worker_id,
                nodes_done=payload["nodes_done"],
            )
        elif kind == "result":
            if slot.busy == payload["shard_id"]:
                slot.busy = None
            slot.last_heartbeat = time.monotonic()
            self._on_result(worker_id, payload)
        elif kind == "shard_error":
            if slot.busy == payload["shard_id"]:
                slot.busy = None
            self._emit(
                "shard_error",
                shard=payload["shard_id"],
                worker=worker_id,
                error=payload["error"],
            )
            self._requeue(payload["shard_id"], payload["error"])

    def _on_result(self, worker_id: int, result: Dict) -> None:
        shard_id = result["shard_id"]
        job = self._spec_job.get(shard_id)
        if job is None or job.state != "waiting" or shard_id in job.done_shards:
            return  # duplicate or aborted-job result
        job.results[shard_id] = result
        while job.merged < len(job.expected):
            next_id = job.expected[job.merged]
            if next_id not in job.results:
                break
            merged_result = job.results.pop(next_id)
            if self._memo is not None and not merged_result.get("memo_shard"):
                self._record_memo(job, merged_result)
            added = merge_shard(job, merged_result)
            job.frontier_index += len(merged_result["expansions"])
            job.merged += 1
            job.done_shards.add(next_id)
            self._shard_retries.reset(next_id)
            self._specs.pop(next_id, None)
            self._spec_job.pop(next_id, None)
            self._instances += added
            self._emit(
                "shard_done",
                shard=next_id,
                worker=worker_id,
                function=job.label,
                nodes=added,
                attempts=merged_result["attempts"],
                wall=round(merged_result["wall"], 4),
            )
            if (
                job.config.max_nodes is not None
                and len(job.dag) > job.config.max_nodes
            ):
                self._abort(job, "max_nodes")
                return
        if job.merged == len(job.expected):
            job.frontier = job.next_frontier
            job.next_frontier = []
            job.frontier_index = 0
            job.level += 1
            if job.write_checkpoint(self._specs, self.parallel.checkpoint_interval):
                self._emit(
                    "checkpoint_write",
                    path=job.checkpoint_path,
                    function=job.label,
                    level=job.level,
                )
            job.state = "ready"

    def _check_budgets(self, jobs: List[_FunctionJob]) -> None:
        for job in jobs:
            if job.state == "done":
                continue
            config = job.config
            if (
                config.time_limit is not None
                and job.elapsed() > config.time_limit
            ):
                self._abort(job, "time_limit")

    def _health(self) -> None:
        now = time.monotonic()
        for slot in self._slots:
            if slot.busy is None:
                continue
            dead = not slot.process.is_alive()
            hung = now - slot.last_heartbeat > self.parallel.lease_timeout
            if not dead and not hung:
                continue
            shard_id = slot.busy
            slot.busy = None
            self._emit(
                "worker_dead" if dead else "lease_timeout",
                worker=slot.worker_id,
                shard=shard_id,
            )
            if not dead:
                slot.process.terminate()
                slot.process.join(2.0)
                if slot.process.is_alive():
                    slot.process.kill()
                    slot.process.join(1.0)
            if not self._respawns.record_failure(slot.worker_id):
                raise RuntimeError(
                    f"worker slot {slot.worker_id} died "
                    f"{self._respawns.failures(slot.worker_id)} times; "
                    "aborting the run (systemic failure)"
                )
            # The replacement never inherits the chaos hook: the fault
            # being simulated happened, and the recovery path is what
            # is being exercised.
            self._spawn(slot, with_chaos=False)
            self._requeue(shard_id, "worker lost")

    def _requeue(self, shard_id: int, why: str) -> None:
        job = self._spec_job.get(shard_id)
        if job is None or job.state == "done" or shard_id in job.done_shards:
            return
        if not self._shard_retries.record_failure(shard_id):
            self._abort(job, f"shard_failed: {why}")
            return
        self._pending.appendleft(shard_id)
        self._emit(
            "lease_reclaim",
            shard=shard_id,
            retries=self._shard_retries.failures(shard_id),
            why=why,
        )

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def _abort(self, job: _FunctionJob, reason: str) -> None:
        job.abort_reason = reason
        if job.write_checkpoint(self._specs, 0.0, force=True):
            self._emit(
                "checkpoint_write",
                path=job.checkpoint_path,
                function=job.label,
                level=job.level,
            )
        self._finish(job, completed=False)

    def _finish(self, job: _FunctionJob, completed: bool) -> None:
        job.completed = completed
        job.state = "done"
        job.end = time.monotonic()
        if completed:
            job.discard_checkpoint()
            if self.parallel.store is not None:
                self.parallel.store.put(
                    job.function_name, job.root_key, job.config, job.result()
                )
        if job.phase_counts:
            self._emit(
                "phase_stats", phases=job.phase_counts, function=job.label
            )
        if job.sanitize_counts:
            self._emit(
                "sanitize_stats",
                function=job.label,
                mode=self.config.sanitize,
                **job.sanitize_counts,
            )
        if job.collapser is not None:
            self._emit(
                "collapse_stats",
                function=job.label,
                **job.collapser.stats_fields(),
            )
        self._emit(
            "function_done",
            function=job.label,
            instances=len(job.dag),
            levels=job.level,
            completed=completed,
            reason=job.abort_reason,
            wall=round(job.elapsed(), 3),
        )

    def _emit(self, name: str, **fields) -> None:
        if self._tracer is not None:
            self._tracer.emit(name, **fields)
        if self.parallel.progress is not None:
            self.parallel.progress.event(name, **fields)


def enumerate_space_parallel(
    func: Function,
    config: Optional[EnumerationConfig] = None,
    parallel: Optional[ParallelConfig] = None,
    source: Optional[str] = None,
    label: Optional[str] = None,
) -> EnumerationResult:
    """Enumerate one function's space with the parallel service."""
    enumerator = ParallelEnumerator(config, parallel)
    request = EnumerationRequest(label or func.name, func, source)
    return enumerator.enumerate([request])[0]
