"""Worker-process side of the parallel enumeration service.

Each worker is one OS process running :func:`worker_main`: it takes
shard specs off its task queue, expands every frontier node in the
shard (clone → guarded phase application → fingerprint, exactly the
serial enumerator's per-attempt pipeline), and posts the recorded
outcomes back on the shared event queue.  Workers never touch the
space DAG — merging is the coordinator's job — so they stay stateless
between shards and a dead worker loses at most one shard lease.

Liveness and crash safety:

- a **heartbeat** event is posted between node expansions; the
  coordinator re-leases the shard of any worker whose heartbeats stop
  (hung) or whose process died;
- with a ``run_dir``, large shards are **checkpointed** at instance
  boundaries through the PR-1 checkpoint writer, so the next lease
  resumes instead of restarting;
- the per-phase watchdog inside :class:`GuardedPhaseRunner` works here
  unchanged: a worker process's main thread can install ``SIGALRM``,
  and off the main thread the guard degrades to the cooperative
  deadline check.

The ``chaos`` entry of the job spec is a test hook: it makes one
worker die (or hang) after a set number of node expansions so the
lease-recovery path can be exercised deterministically.
"""

from __future__ import annotations

import json
import os
import signal
import time
import traceback
from typing import Dict, Optional, Tuple

from repro.core import checkpoint as ckpt
from repro.core.enumeration import _node_key
from repro.core.fingerprint import fingerprint_function
from repro.frontend import compile_source
from repro.machine.target import DEFAULT_TARGET
from repro.opt import attempt_phase_on_clone, phase_by_id
from repro.parallel import shards
from repro.robustness.guard import (
    DifferentialTester,
    GuardedPhaseRunner,
    default_vectors,
)


def _build_guard(
    cfg: Dict, spec: Dict, program_cache: Dict
) -> Optional[Tuple[GuardedPhaseRunner, object]]:
    """The ``(guard, fault injector)`` stack for one shard, mirroring
    :meth:`EnumerationConfig.guards_enabled`; None when no guard is
    needed."""
    injector = shards.shard_fault_injector(cfg.get("fault"), spec["shard_id"])

    def _program():
        job_id = spec["job_id"]
        if job_id not in program_cache:
            program_cache[job_id] = compile_source(spec["source"])
        return program_cache[job_id]

    difftester = None
    if cfg.get("difftest") and spec.get("source"):
        program = _program()
        pristine = program.functions[spec["function_name"]]
        difftester = DifferentialTester(
            program, spec["function_name"], default_vectors(pristine)
        )
    checker = None
    if cfg.get("sanitize"):
        from repro.staticanalysis.checker import EdgeChecker

        # full mode co-executes through the program; fast mode only
        # needs the function (program context stays None off-source)
        program = _program() if spec.get("source") else None
        checker = EdgeChecker(
            mode=cfg["sanitize"],
            target=DEFAULT_TARGET,
            program=program,
            entry=spec["function_name"],
        )
    if not (
        cfg.get("validate")
        or cfg.get("phase_timeout") is not None
        or injector is not None
        or difftester is not None
        or checker is not None
    ):
        return None
    return GuardedPhaseRunner(
        target=DEFAULT_TARGET,
        validate=bool(cfg.get("validate")),
        difftest=difftester,
        phase_timeout=cfg.get("phase_timeout"),
        fault_injector=injector,
        sanitizer=checker,
    ), injector


class _ShardRunner:
    """Expands one shard; owns its checkpoint/heartbeat cadence."""

    def __init__(self, worker_id: int, job_spec: Dict, spec: Dict, event_queue):
        self.worker_id = worker_id
        self.job_spec = job_spec
        self.spec = spec
        self.event_queue = event_queue
        self.cfg = job_spec["config"]
        self.phases = [phase_by_id(p) for p in self.cfg["phases"]]
        self.run_dir = job_spec.get("run_dir")
        self.expansions = []
        self.functions: Dict[str, dict] = {}
        self.texts: Dict[str, str] = {}
        self.attempts = 0
        self._last_heartbeat = time.monotonic()
        self._last_checkpoint = time.monotonic()

    def run(self, program_cache: Dict, chaos_state: Dict) -> Dict:
        spec, cfg = self.spec, self.cfg
        guard = None
        injector = None
        built = _build_guard(cfg, spec, program_cache)
        if built is not None:
            guard, injector = built
        start_index = self._restore(injector)
        started = time.monotonic()
        for index in range(start_index, len(spec["nodes"])):
            self._expand_node(spec["nodes"][index], guard)
            chaos_state["nodes"] = chaos_state.get("nodes", 0) + 1
            self._chaos(chaos_state, injector)
            self._heartbeat(index + 1)
            self._maybe_checkpoint(injector)
        if self.run_dir:
            shards.discard_shard_checkpoint(self.run_dir, spec["shard_id"])
        return {
            "shard_id": spec["shard_id"],
            "job_id": spec["job_id"],
            "level": spec["level"],
            "expansions": self.expansions,
            "functions": self.functions,
            "texts": self.texts,
            "attempts": self.attempts,
            "wall": time.monotonic() - started,
        }

    # ------------------------------------------------------------------

    def _restore(self, injector) -> int:
        """Resume a reclaimed shard from its last instance boundary."""
        if not self.run_dir:
            return 0
        state = shards.load_shard_checkpoint(self.run_dir, self.spec["shard_id"])
        if state is None:
            return 0
        self.expansions = state["expansions"]
        self.functions = state["functions"]
        self.texts = state["texts"]
        self.attempts = sum(
            len(outcomes) for _node_id, outcomes in self.expansions
        )
        if injector is not None:
            shards.fast_forward_injector(
                injector,
                state["injector_applications"],
                self.cfg.get("phase_timeout"),
            )
        self.event_queue.put(
            (
                "shard_resumed",
                self.worker_id,
                {
                    "shard_id": self.spec["shard_id"],
                    "nodes_done": len(self.expansions),
                },
            )
        )
        return len(self.expansions)

    def _expand_node(self, entry: Dict, guard: Optional[GuardedPhaseRunner]) -> None:
        """One frontier node: attempt every non-arrival phase in order."""
        cfg = self.cfg
        func = ckpt.function_from_dict(entry["function"])
        skip = set(entry["skip"])
        outcomes = []
        for phase in self.phases:
            if phase.id in skip:
                continue
            self.attempts += 1
            if guard is not None:
                candidate = func.clone()
                quarantined_before = len(guard.quarantine.records)
                active = guard.apply(
                    candidate,
                    phase,
                    node_key=f"node#{entry['node_id']}",
                    level=self.spec["level"],
                )
                quarantine = [
                    record.to_dict()
                    for record in guard.quarantine.records[quarantined_before:]
                ]
            else:
                # Single-clone fast path, same as the serial engine.
                candidate = attempt_phase_on_clone(func, phase, DEFAULT_TARGET)
                active = candidate is not None
                quarantine = []
            outcome = {"phase": phase.id, "active": bool(active)}
            if quarantine:
                outcome["quarantine"] = quarantine
            if (
                active
                and guard is not None
                and guard.sanitizer is not None
                and guard.sanitizer.last_verdict is not None
            ):
                # the coordinator folds these into per-function
                # sanitize_stats at merge time
                outcome["verdict"] = guard.sanitizer.last_verdict
            
            if active:
                fingerprint = fingerprint_function(
                    candidate, keep_text=cfg["exact"], remap=cfg["remap"]
                )
                key = ckpt.key_to_json(_node_key(fingerprint, candidate))
                keystr = json.dumps(key)
                outcome.update(
                    key=key,
                    num_insts=fingerprint.num_insts,
                    cf_crc=fingerprint.cf_crc,
                )
                if keystr not in self.functions:
                    self.functions[keystr] = ckpt.function_to_dict(candidate)
                if cfg["exact"]:
                    self.texts[keystr] = fingerprint.text
            outcomes.append(outcome)
        self.expansions.append([entry["node_id"], outcomes])

    def _heartbeat(self, nodes_done: int) -> None:
        interval = self.job_spec.get("heartbeat_interval", 0.5)
        now = time.monotonic()
        if now - self._last_heartbeat >= interval:
            self._last_heartbeat = now
            self.event_queue.put(
                (
                    "heartbeat",
                    self.worker_id,
                    {"shard_id": self.spec["shard_id"], "nodes_done": nodes_done},
                )
            )

    def _maybe_checkpoint(self, injector, force: bool = False) -> None:
        if not self.run_dir:
            return
        interval = self.job_spec.get("shard_checkpoint_interval", 5.0)
        now = time.monotonic()
        if force or now - self._last_checkpoint >= interval:
            self._last_checkpoint = now
            shards.save_shard_checkpoint(
                self.run_dir,
                self.spec["shard_id"],
                self.expansions,
                self.functions,
                self.texts,
                injector,
            )

    def _chaos(self, chaos_state: Dict, injector) -> None:
        """Test hook: die or hang after N node expansions (once)."""
        chaos = self.job_spec.get("chaos")
        if not chaos or chaos["worker"] != self.worker_id:
            return
        if chaos_state["nodes"] < chaos.get("after_nodes", 1):
            return
        # Persist the partial shard first so the recovery path that the
        # chaos run exercises includes the checkpoint resume.
        self._maybe_checkpoint(injector, force=True)
        if chaos.get("kind", "exit") == "hang":
            time.sleep(3600.0)
        os._exit(137)


def worker_main(worker_id: int, job_spec: Dict, task_queue, event_queue) -> None:
    """Worker process entry point: lease shards until told to stop."""
    # The coordinator owns lifecycle; a ^C in the parent must not kill
    # workers mid-shard (the graceful path drains and joins them).
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread (tests)
        pass
    # A fork-started worker inherits the coordinator's installed tracer
    # — and with it an open journal file descriptor.  Telemetry has a
    # single writer (the coordinator, which folds worker outcomes at
    # merge time), so tracing is always off in workers.
    from repro.observability import tracer as obs_tracer

    obs_tracer.ACTIVE = None
    program_cache: Dict = {}
    chaos_state: Dict = {}
    while True:
        spec = task_queue.get()
        if spec is None:
            break
        try:
            result = _ShardRunner(worker_id, job_spec, spec, event_queue).run(
                program_cache, chaos_state
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as error:
            event_queue.put(
                (
                    "shard_error",
                    worker_id,
                    {
                        "shard_id": spec["shard_id"],
                        "job_id": spec["job_id"],
                        "error": f"{type(error).__name__}: {error}",
                        "traceback": traceback.format_exc(limit=8),
                    },
                )
            )
            continue
        event_queue.put(("result", worker_id, result))
