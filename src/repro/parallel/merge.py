"""Deterministic fusion of shard results into one space DAG.

The coordinator does not union per-shard graphs — it **replays** each
shard's recorded outcomes into the function's DAG in exactly the order
the serial enumerator would have taken: shards strictly in creation
order (frontier order), nodes in shard order, phases in Table 1 order.
Replay is what makes the merged space *bit-identical* to a serial run:
node ids, levels, edges, dormant sets and the attempted/applied
counters all come out the same, so Table 3 rows and the Table 4–6
interaction matrices match a ``--jobs 1`` run exactly.

Two details make the replay equivalent rather than merely similar:

- **arrival phases are re-derived at merge time.**  A shard is cut at
  a level barrier, but an earlier node of the same level can merge an
  edge *into* a later node while that node's shard is already out at a
  worker.  The worker therefore attempts the phase anyway; the replay
  consults the DAG's current in-edges (exactly what the serial loop
  does) and discards outcomes for phases that became arrival phases
  after the shard was cut — including their quarantine records;
- **identical-instance lookups happen here, not in workers.**  Workers
  fingerprint candidates but never see the global key table, so two
  workers discovering the same instance cannot race; the first replay
  in serial order creates the node, the second becomes an edge.
"""

from __future__ import annotations

import json

from repro.core import checkpoint as ckpt
from repro.core.enumeration import _arrival_phases
from repro.robustness.quarantine import QuarantineRecord
from repro.staticanalysis.canon import _reaches as canon_reaches


class MergeError(RuntimeError):
    """A shard result cannot be replayed into the space DAG."""


def _fold_sanitize(counts, outcome, records) -> None:
    """Fold one replayed outcome into the job's sanitizer counters.

    Mirrors :class:`~repro.staticanalysis.checker.EdgeChecker`'s own
    accounting as closely as the shard wire format allows: every
    checked edge counts once, and a quarantined edge contributes one
    finding/violation/refutation (the checker's per-finding counts are
    not shipped across the process boundary).
    """
    if not counts:
        counts.update(
            edges=0,
            findings=0,
            contract_violations=0,
            proved=0,
            tested=0,
            unverified=0,
            refuted=0,
        )
    verdict = outcome.get("verdict")
    checked = outcome["active"]
    for record in records:
        kind = record.get("kind")
        detail = record.get("detail", "")
        if kind == "sanitizer":
            counts["findings"] += 1
            checked = True
        elif kind == "contract":
            counts["contract_violations"] += 1
            checked = True
        elif kind == "semantics" and detail.startswith("translation validator"):
            counts["refuted"] += 1
            checked = True
    if checked:
        counts["edges"] += 1
    if verdict is not None:
        counts[verdict] += 1


def merge_shard(job, result) -> int:
    """Replay one shard's expansions into *job*'s DAG.

    *job* is the coordinator's per-function state (``dag``, ``config``,
    ``functions``, ``texts``, ``next_frontier``, counters).  Returns
    the number of new instances discovered.
    """
    config = job.config
    dag = job.dag
    functions = result["functions"]
    texts = result["texts"]
    #: per-phase attempted/active/dormant/quarantined telemetry; folded
    #: here (not in workers) so the counts follow the replay's serial
    #: semantics — discarded stale-arrival outcomes are not counted,
    #: exactly as the serial enumerator never attempts them.  getattr:
    #: merge also replays onto bare job stand-ins in tests.
    phase_counts = getattr(job, "phase_counts", None)
    #: sanitizer/transval counters, folded under the same replay
    #: discipline — a discarded stale-arrival outcome contributes
    #: neither an edge nor a verdict
    sanitize_counts = getattr(job, "sanitize_counts", None)
    sanitize_on = getattr(config, "sanitize", None) is not None
    #: semantic collapse decisions are coordinator-side only — workers
    #: never see the digest index, so merges cannot race, and the
    #: replay makes them in exactly the serial enumerator's order
    collapser = getattr(job, "collapser", None)
    added = 0
    for node_id, outcomes in result["expansions"]:
        node = dag.nodes[node_id]
        by_phase = {outcome["phase"]: outcome for outcome in outcomes}
        arrival = _arrival_phases(node)
        for phase in config.phases:
            if phase.id in arrival:
                # The phase that produced this instance just ran to its
                # fixpoint; the serial enumerator marks it dormant
                # without an attempt, and so does the replay — even
                # when the worker, holding a stale arrival set,
                # attempted it anyway.
                node.dormant.add(phase.id)
                continue
            outcome = by_phase.get(phase.id)
            if outcome is None:
                raise MergeError(
                    f"shard {result['shard_id']} has no outcome for phase "
                    f"{phase.id!r} at node {node_id} of {dag.function_name!r}"
                )
            job.attempted += 1
            job.applied += 1
            records = outcome.get("quarantine", ())
            for record in records:
                job.quarantine.add(QuarantineRecord.from_dict(record))
            if phase_counts is not None:
                counts = phase_counts.get(phase.id)
                if counts is None:
                    counts = {"active": 0, "dormant": 0, "quarantined": 0}
                    phase_counts[phase.id] = counts
                counts["active" if outcome["active"] else "dormant"] += 1
                counts["quarantined"] += len(records)
            if sanitize_on and sanitize_counts is not None:
                _fold_sanitize(sanitize_counts, outcome, records)
            if not outcome["active"]:
                node.dormant.add(phase.id)
                continue
            key = ckpt.key_from_json(outcome["key"])
            keystr = json.dumps(outcome["key"])
            existing = dag.lookup(key)
            if existing is not None:
                if config.exact and job.texts.get(key) != texts.get(keystr):
                    raise RuntimeError(
                        f"fingerprint collision in {dag.function_name}: two "
                        "distinct instances share (count, byte-sum, CRC)"
                    )
                if (
                    collapser is not None
                    and key not in dag.by_key
                    and (
                        existing.node_id == node.node_id
                        or canon_reaches(dag, existing.node_id, node.node_id)
                    )
                ):
                    # The hit resolved through an alias onto this node's
                    # own root path; the edge would close a cycle.  Fall
                    # through — the collapser splits (same decision, same
                    # order as the serial expander's alias guard).
                    existing = None
            if existing is not None:
                dag.add_edge(node, phase.id, existing)
                continue
            digest = None
            if collapser is not None:
                candidate = ckpt.function_from_dict(functions[keystr])
                digest, rep = collapser.merge_target(dag, node, candidate)
                if rep is not None:
                    # Proved/tested equivalent to an existing instance:
                    # alias + edge, no new node — and the candidate's
                    # subspace is never dispatched (the representative's
                    # already is/was).
                    dag.add_alias(key, rep.node_id)
                    if config.exact:
                        job.texts[key] = texts.get(keystr)
                    dag.add_edge(node, phase.id, rep)
                    continue
            child = dag.add_node(
                key, node.level + 1, outcome["num_insts"], outcome["cf_crc"]
            )
            if collapser is not None:
                collapser.register(digest, child.node_id, functions[keystr])
            if config.exact:
                job.texts[key] = texts.get(keystr)
            dag.add_edge(node, phase.id, child)
            job.functions[child.node_id] = functions[keystr]
            job.next_frontier.append(child.node_id)
            added += 1
        node.expanded = True
    return added
