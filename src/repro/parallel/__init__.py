"""Sharded multi-process exhaustive enumeration (``repro.parallel``).

The serial enumerator (:mod:`repro.core.enumeration`) is the reference
implementation; this package scales it across worker processes while
keeping the merged space DAG **bit-identical** to a serial run — same
node ids, edges, dormant sets and counters, so every Table 3–7 number
is reproducible at any ``--jobs`` level.  See ``docs/PARALLEL.md``.

- :mod:`~repro.parallel.coordinator` — job decomposition, worker
  leases, deterministic in-order merging, budgets, level checkpoints;
- :mod:`~repro.parallel.worker` — the stateless shard-expansion
  process;
- :mod:`~repro.parallel.merge` — serial-order replay of shard results;
- :mod:`~repro.parallel.store` — persistent completed-space cache;
- :mod:`~repro.parallel.telemetry` — JSONL event log + live status.
"""

from repro.parallel.coordinator import (
    EnumerationRequest,
    ParallelConfig,
    ParallelEnumerator,
    enumerate_space_parallel,
)
from repro.parallel.store import SpaceStore
from repro.parallel.telemetry import ProgressReporter

__all__ = [
    "EnumerationRequest",
    "ParallelConfig",
    "ParallelEnumerator",
    "ProgressReporter",
    "SpaceStore",
    "enumerate_space_parallel",
]
