"""Live progress and structured event telemetry for parallel runs.

Two outputs, both optional and both driven by the same event stream:

- a **JSONL event log** — one JSON object per line, ``{"t": seconds
  since start, "event": name, ...fields}`` — the machine-readable
  record of a run (dispatches, merges, lease reclaims, cache hits).
  When the coordinator runs with a ``run_dir``, this doubles as the
  persistent work-queue journal;
- a **live TTY status line** — a single ``\\r``-rewritten line showing
  functions done, worker occupancy, queue depth, instance throughput
  and a coarse ETA.  It only renders when the stream is a TTY (or when
  forced), so piped output and test logs stay clean.

The reporter is deliberately passive: the coordinator pushes events
and gauges; nothing here spawns threads or touches the worker pool.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Dict, Optional, TextIO


class ProgressReporter:
    """Collects run events; renders a status line and a JSONL log."""

    def __init__(
        self,
        jsonl_path: Optional[str] = None,
        stream: Optional[TextIO] = None,
        interval: float = 0.25,
        force_tty: bool = False,
    ):
        self.jsonl_path = jsonl_path
        self._log = open(jsonl_path, "a") if jsonl_path else None
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._tty = force_tty or bool(
            getattr(self.stream, "isatty", lambda: False)()
        )
        self._start = time.monotonic()
        self._last_render = 0.0
        self._line_live = False
        #: recent (t, instances) samples for the throughput window
        self._samples = []
        # gauges the status line renders
        self.instances = 0
        self.attempts = 0
        self.functions_done = 0
        self.functions_total = 0
        self.cache_hits = 0
        self.queue_depth = 0
        self.workers = 0
        self.busy = 0
        self.reclaims = 0
        self._function_walls = []

    # ------------------------------------------------------------------
    # Event stream
    # ------------------------------------------------------------------

    def elapsed(self) -> float:
        return time.monotonic() - self._start

    def event(self, name: str, **fields) -> None:
        """Record one event: update gauges, append to the JSONL log."""
        if name == "job_start":
            self.functions_total = fields.get("functions", 0)
            self.workers = fields.get("jobs", 0)
        elif name == "cache_hit":
            self.cache_hits += 1
            self.functions_done += 1
        elif name == "shard_done":
            self.instances += fields.get("nodes", 0)
            self.attempts += fields.get("attempts", 0)
        elif name == "function_done":
            self.functions_done += 1
            if "wall" in fields:
                self._function_walls.append(fields["wall"])
        elif name == "lease_reclaim":
            self.reclaims += 1
        if self._log is not None:
            record = {"t": round(self.elapsed(), 3), "event": name}
            record.update(fields)
            self._log.write(json.dumps(record, sort_keys=True) + "\n")
            self._log.flush()

    def gauges(self, queue_depth: int, busy: int, instances: int) -> None:
        """Update the fast-moving gauges (called every coordinator tick)."""
        self.queue_depth = queue_depth
        self.busy = busy
        self.instances = instances

    # ------------------------------------------------------------------
    # Status line
    # ------------------------------------------------------------------

    def throughput(self) -> float:
        """Instances/second over a sliding ~5s window."""
        now = self.elapsed()
        self._samples.append((now, self.instances))
        while self._samples and now - self._samples[0][0] > 5.0:
            self._samples.pop(0)
        t0, n0 = self._samples[0]
        if now - t0 < 1e-6:
            return 0.0
        return (self.instances - n0) / (now - t0)

    def eta_seconds(self) -> Optional[float]:
        """Coarse ETA from completed-function wall times; None early on."""
        if not self._function_walls or not self.functions_total:
            return None
        remaining = self.functions_total - self.functions_done
        if remaining <= 0:
            return 0.0
        avg = sum(self._function_walls) / len(self._function_walls)
        return remaining * avg / max(self.busy, 1)

    def status_line(self) -> str:
        rate = self.throughput()
        eta = self.eta_seconds()
        parts = [
            f"[repro.parallel] fns {self.functions_done}/{self.functions_total}",
            f"workers {self.busy}/{self.workers} busy",
            f"queue {self.queue_depth}",
            f"{self.instances} inst",
            f"{rate:.0f} inst/s",
        ]
        if self.cache_hits:
            parts.append(f"{self.cache_hits} cached")
        if self.reclaims:
            parts.append(f"{self.reclaims} reclaimed")
        parts.append(f"eta {'~%.0fs' % eta if eta is not None else '?'}")
        return " · ".join(parts)

    def tick(self, force: bool = False) -> None:
        """Re-render the status line if the render interval has passed."""
        if not self._tty:
            return
        now = self.elapsed()
        if not force and now - self._last_render < self.interval:
            return
        self._last_render = now
        line = self.status_line()
        self.stream.write("\r" + line.ljust(100)[:100])
        self.stream.flush()
        self._line_live = True

    def close(self) -> None:
        """Finish the status line and close the JSONL log."""
        if self._tty and self._line_live:
            self.tick(force=True)
            self.stream.write("\n")
            self.stream.flush()
            self._line_live = False
        if self._log is not None:
            self._log.close()
            self._log = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
