"""Live progress reporting on top of the shared observability stream.

The reporter is a *consumer* of the run's event stream: producers (the
parallel coordinator, the serial enumerator via its tracer) emit
schema-validated events, and the reporter folds them into gauges and
renders a live TTY status line — a single ``\\r``-rewritten line
showing functions done, worker occupancy, queue depth, instance
throughput and a coarse ETA.  It only renders when the stream is a TTY
(or when forced), so piped output and test logs stay clean.

For compatibility the reporter can still be given a ``jsonl_path``, in
which case it owns an :class:`~repro.observability.events.EventStream`
journal (UTF-8, schema-validated) — but when a
:class:`~repro.observability.tracer.Tracer` owns the journal, build the
reporter without a path and subscribe it to the tracer instead; the
events then flow tracer → journal + reporter with a single writer.

The reporter is deliberately passive: events and gauges are pushed in;
nothing here spawns threads or touches the worker pool.
"""

from __future__ import annotations

import shutil
import sys
import time
from collections import deque
from typing import Deque, Optional, TextIO, Tuple

from repro.observability.events import EventStream, read_journal

#: seconds of (t, instances) history the throughput window keeps
_WINDOW_S = 5.0

#: never render a status line narrower than this, whatever the terminal says
_MIN_COLUMNS = 40


class ProgressReporter:
    """Folds run events into gauges; renders a status line (and
    optionally a legacy-owned JSONL journal)."""

    def __init__(
        self,
        jsonl_path: Optional[str] = None,
        stream: Optional[TextIO] = None,
        interval: float = 0.25,
        force_tty: bool = False,
    ):
        self.jsonl_path = jsonl_path
        self._log = EventStream(jsonl_path) if jsonl_path else None
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._tty = force_tty or bool(
            getattr(self.stream, "isatty", lambda: False)()
        )
        self._start = time.monotonic()
        self._last_render = 0.0
        self._line_live = False
        #: recent (t, instances) samples for the throughput window.
        #: Appended by :meth:`_sample` (write paths only); deque keeps
        #: window pruning O(1) instead of ``list.pop(0)``'s O(n).
        self._samples: Deque[Tuple[float, int]] = deque()
        # gauges the status line renders
        self.instances = 0
        self.attempts = 0
        #: functions completed by actually enumerating (wall-sampled)
        self.functions_done = 0
        #: functions satisfied from the store cache (no wall sample)
        self.cached_done = 0
        self.functions_total = 0
        self.cache_hits = 0
        self.queue_depth = 0
        self.workers = 0
        self.busy = 0
        self.reclaims = 0
        self._function_walls = []

    # ------------------------------------------------------------------
    # Event stream
    # ------------------------------------------------------------------

    def elapsed(self) -> float:
        return time.monotonic() - self._start

    @property
    def total_done(self) -> int:
        """All finished functions, enumerated and cache-satisfied alike."""
        return self.functions_done + self.cached_done

    def event(self, name: str, **fields) -> None:
        """Fold one event into the gauges; journal it if we own a log."""
        if name == "job_start":
            self.functions_total = fields.get("functions", 0)
            self.workers = fields.get("jobs", 0)
        elif name == "cache_hit":
            # Cache-satisfied functions are done work but carry no wall
            # sample — counting them into functions_done would shrink
            # the remaining-work estimate while leaving the per-function
            # average untouched, biasing eta_seconds() on warm-store and
            # resumed runs.  Keep them in their own gauge.
            self.cache_hits += 1
            self.cached_done += 1
        elif name == "shard_done":
            self.instances += fields.get("nodes", 0)
            self.attempts += fields.get("attempts", 0)
        elif name == "function_done":
            self.functions_done += 1
            if "wall" in fields:
                self._function_walls.append(fields["wall"])
        elif name == "lease_reclaim":
            self.reclaims += 1
        if self._log is not None:
            self._log.emit(name, **fields)

    def gauges(self, queue_depth: int, busy: int, instances: int) -> None:
        """Update the fast-moving gauges (called every coordinator tick)."""
        self.queue_depth = queue_depth
        self.busy = busy
        self.instances = instances
        self._sample()

    # ------------------------------------------------------------------
    # Status line
    # ------------------------------------------------------------------

    def _sample(self) -> None:
        """Record an (elapsed, instances) sample; prune the window."""
        now = self.elapsed()
        self._samples.append((now, self.instances))
        while self._samples and now - self._samples[0][0] > _WINDOW_S:
            self._samples.popleft()

    def throughput(self) -> float:
        """Instances/second over the sliding window.  Pure read: extra
        render or logging calls cannot skew the measured rate."""
        if len(self._samples) < 2:
            return 0.0
        t0, n0 = self._samples[0]
        t1, n1 = self._samples[-1]
        if t1 - t0 < 1e-6:
            return 0.0
        return (n1 - n0) / (t1 - t0)

    def eta_seconds(self) -> Optional[float]:
        """Coarse ETA from completed-function wall times; None early on.

        Cache-satisfied functions are excluded from both sides of the
        estimate: they contribute no wall sample, and the work they
        would have been is already off the remaining-work ledger.
        """
        if not self._function_walls or not self.functions_total:
            return None
        remaining = self.functions_total - self.functions_done - self.cached_done
        if remaining <= 0:
            return 0.0
        avg = sum(self._function_walls) / len(self._function_walls)
        return remaining * avg / max(self.busy, 1)

    def _columns(self) -> int:
        """Render width: the terminal's, with a sane floor."""
        try:
            width = shutil.get_terminal_size().columns
        except (ValueError, OSError):
            width = _MIN_COLUMNS
        # leave the last cell free so the line never triggers autowrap
        return max(width - 1, _MIN_COLUMNS)

    def status_line(self) -> str:
        rate = self.throughput()
        eta = self.eta_seconds()
        parts = [
            f"[repro.parallel] fns {self.total_done}/{self.functions_total}",
            f"workers {self.busy}/{self.workers} busy",
            f"queue {self.queue_depth}",
            f"{self.instances} inst",
            f"{rate:.0f} inst/s",
        ]
        if self.cache_hits:
            parts.append(f"{self.cache_hits} cached")
        if self.reclaims:
            parts.append(f"{self.reclaims} reclaimed")
        parts.append(f"eta {'~%.0fs' % eta if eta is not None else '?'}")
        return " · ".join(parts)

    def tick(self, force: bool = False) -> None:
        """Re-render the status line if the render interval has passed."""
        if not self._tty:
            return
        now = self.elapsed()
        if not force and now - self._last_render < self.interval:
            return
        self._last_render = now
        self._sample()
        width = self._columns()
        line = self.status_line()
        self.stream.write("\r" + line.ljust(width)[:width])
        self.stream.flush()
        self._line_live = True

    def close(self) -> None:
        """Finish the status line and close the JSONL log."""
        if self._tty and self._line_live:
            self.tick(force=True)
            self.stream.write("\n")
            self.stream.flush()
            self._line_live = False
        if self._log is not None:
            self._log.close()
            self._log = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def replay_journal(
    path: str, reporter: Optional[ProgressReporter] = None
) -> ProgressReporter:
    """Replay a run's JSONL journal through a reporter's gauges.

    The same folding rules the live reporter applies to pushed events
    are applied to the journaled ones, so a finished run's gauges can
    be reconstructed — and cross-checked against the merged result —
    from the journal alone.
    """
    if reporter is None:
        reporter = ProgressReporter()
    records, _errors = read_journal(path)
    for record in records:
        name = record.get("event")
        if not isinstance(name, str):
            continue
        fields = {
            key: value
            for key, value in record.items()
            if key not in ("t", "event")
        }
        reporter.event(name, **fields)
    return reporter
