"""An interpreter for RTL programs.

Execution model (the runtime conventions the compiler targets):

- each call activates a fresh register file (so r4..r12 behave as
  callee-saved at no cost); calls deterministically clobber r0..r3 in
  the caller, with r0 receiving the return value;
- the stack grows upward from ``STACK_BASE``; each frame occupies the
  function's ``frame_size`` bytes and ``fp`` (r13) points at its base;
- memory is word-addressed storage initialized to zero, with globals
  laid out by :class:`~repro.ir.function.Program`;
- the activation-record management the paper's compiler inserts as a
  compulsory phase after the last code-improving phase is performed by
  the interpreter's call sequence itself, keeping it outside the
  enumerated search space exactly as the paper does.

Dynamic instruction counts are recorded per function, mirroring the
paper's use of dynamic counts as the execution-efficiency proxy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.ir.function import Function, Program
from repro.ir.instructions import (
    Assign,
    Call,
    Compare,
    CondBranch,
    Jump,
    Return,
)
from repro.ir.operands import BinOp, Const, Expr, Mem, Reg, Sym, UnOp
from repro.machine.target import DEFAULT_TARGET, Target

Number = Union[int, float]

STACK_BASE = 0x40000


class VMError(Exception):
    """A runtime error during RTL interpretation."""


class VMFuelExhausted(VMError):
    """The configured dynamic instruction budget was exceeded."""


class ExecutionResult:
    """Outcome of one program execution."""

    __slots__ = ("value", "total_insts", "per_function", "cycles")

    def __init__(self, value, total_insts, per_function, cycles):
        self.value = value
        self.total_insts = total_insts
        self.per_function = per_function
        self.cycles = cycles

    def __repr__(self):
        return (
            f"<ExecutionResult value={self.value} insts={self.total_insts} "
            f"cycles={self.cycles}>"
        )


def _mask32(value: int) -> int:
    value &= 0xFFFFFFFF
    if value >= 0x80000000:
        value -= 0x100000000
    return value


class _Frame:
    __slots__ = ("regs", "cc", "fp")

    def __init__(self, fp: int):
        self.regs: Dict[int, Number] = {13: fp, 14: fp}
        self.cc = 0
        self.fp = fp


class Interpreter:
    """Execute functions of a :class:`Program`."""

    def __init__(
        self,
        program: Program,
        target: Optional[Target] = None,
        fuel: int = 10_000_000,
        profile_blocks: bool = False,
    ):
        self.program = program
        self.target = target or DEFAULT_TARGET
        self.fuel = fuel
        self.memory: Dict[int, Number] = {}
        self._init_globals()
        self.total_insts = 0
        self.per_function: Dict[str, int] = {}
        self.cycles = 0
        self._stack_top = STACK_BASE
        #: when profiling, (function name, block label) -> execution count
        self.profile_blocks = profile_blocks
        self.block_counts: Dict[Tuple[str, str], int] = {}

    def _init_globals(self) -> None:
        for var in self.program.globals.values():
            for i, value in enumerate(var.init):
                self.memory[var.address + 4 * i] = value

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, name: str, args: Sequence[Number] = ()) -> ExecutionResult:
        """Call function *name* with *args*; returns the result."""
        value = self._call(name, list(args))
        return ExecutionResult(
            value, self.total_insts, dict(self.per_function), self.cycles
        )

    def load_global(self, name: str, index: int = 0) -> Number:
        """Read a global scalar or array element (for assertions)."""
        var = self.program.globals[name]
        return self.memory.get(var.address + 4 * index, 0)

    def store_global(self, name: str, value: Number, index: int = 0) -> None:
        var = self.program.globals[name]
        self.memory[var.address + 4 * index] = value

    def global_address(self, name: str) -> int:
        return self.program.globals[name].address

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _call(self, name: str, args: List[Number]) -> Number:
        func = self.program.functions.get(name)
        if func is None:
            raise VMError(f"call to unknown function {name!r}")
        if len(args) > 4:
            raise VMError("at most 4 arguments are supported")
        frame = _Frame(self._stack_top)
        self._stack_top += max(func.frame_size, 4)
        for i, value in enumerate(args):
            frame.regs[i] = value
        try:
            return self._execute(func, frame)
        finally:
            self._stack_top -= max(func.frame_size, 4)

    def _execute(self, func: Function, frame: _Frame) -> Number:
        blocks = func.blocks
        index_of = {block.label: i for i, block in enumerate(blocks)}
        block_index = 0
        count = self.per_function.get(func.name, 0)
        while True:
            block = blocks[block_index]
            if self.profile_blocks:
                key = (func.name, block.label)
                self.block_counts[key] = self.block_counts.get(key, 0) + 1
            transfer: Optional[str] = None
            returned = False
            for inst in block.insts:
                self.total_insts += 1
                count += 1
                self.cycles += self.target.cost(inst)
                if self.total_insts > self.fuel:
                    self.per_function[func.name] = count
                    raise VMFuelExhausted(
                        f"exceeded {self.fuel} dynamic instructions"
                    )
                if isinstance(inst, Assign):
                    self._assign(inst, frame)
                elif isinstance(inst, Compare):
                    left = self._eval(inst.left, frame)
                    right = self._eval(inst.right, frame)
                    frame.cc = (left > right) - (left < right)
                elif isinstance(inst, CondBranch):
                    if self._branch_taken(inst.relop, frame.cc):
                        transfer = inst.target
                elif isinstance(inst, Jump):
                    transfer = inst.target
                elif isinstance(inst, Call):
                    self.per_function[func.name] = count
                    result = self._call(
                        inst.name, [frame.regs.get(i, 0) for i in range(inst.nargs)]
                    )
                    count = self.per_function.get(func.name, 0)
                    frame.regs[0] = result if result is not None else 0
                    frame.regs[1] = 0
                    frame.regs[2] = 0
                    frame.regs[3] = 0
                elif isinstance(inst, Return):
                    returned = True
                else:
                    raise VMError(f"cannot execute {inst!r}")
                if transfer is not None or returned:
                    break
            if returned:
                self.per_function[func.name] = count
                if func.returns_value:
                    return frame.regs.get(0, 0)
                return None
            if transfer is not None:
                block_index = index_of[transfer]
            else:
                block_index += 1
                if block_index >= len(blocks):
                    raise VMError(f"{func.name}: fell off the function end")

    @staticmethod
    def _branch_taken(relop: str, cc: int) -> bool:
        if relop == "lt":
            return cc < 0
        if relop == "le":
            return cc <= 0
        if relop == "gt":
            return cc > 0
        if relop == "ge":
            return cc >= 0
        if relop == "eq":
            return cc == 0
        return cc != 0

    def _assign(self, inst: Assign, frame: _Frame) -> None:
        value = self._eval(inst.src, frame)
        dst = inst.dst
        if isinstance(dst, Reg):
            frame.regs[self._reg_key(dst)] = value
        else:
            address = self._eval(dst.addr, frame)
            if not isinstance(address, int):
                raise VMError(f"non-integer store address {address!r}")
            self.memory[address] = value

    @staticmethod
    def _reg_key(reg: Reg):
        # Pseudo and hardware registers live in disjoint key spaces so
        # unoptimized (pre-assignment) code executes directly.
        return reg.index if not reg.pseudo else ("t", reg.index)

    def _eval(self, expr: Expr, frame: _Frame) -> Number:
        if isinstance(expr, Reg):
            return frame.regs.get(self._reg_key(expr), 0)
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Sym):
            var = self.program.globals.get(expr.name)
            if var is None:
                raise VMError(f"unknown global {expr.name!r}")
            if expr.part == "hi":
                return var.address & ~0xFFFF
            return var.address & 0xFFFF
        if isinstance(expr, Mem):
            address = self._eval(expr.addr, frame)
            if not isinstance(address, int):
                raise VMError(f"non-integer load address {address!r}")
            return self.memory.get(address, 0)
        if isinstance(expr, BinOp):
            left = self._eval(expr.left, frame)
            right = self._eval(expr.right, frame)
            return self._binop(expr.op, left, right)
        if isinstance(expr, UnOp):
            value = self._eval(expr.operand, frame)
            return self._unop(expr.op, value)
        raise VMError(f"cannot evaluate {expr!r}")

    @staticmethod
    def _binop(op: str, left: Number, right: Number) -> Number:
        if op == "add":
            return _mask32(left + right)
        if op == "sub":
            return _mask32(left - right)
        if op == "mul":
            return _mask32(left * right)
        if op == "div":
            if right == 0:
                raise VMError("integer division by zero")
            return _mask32(int(left / right))
        if op == "rem":
            if right == 0:
                raise VMError("integer remainder by zero")
            return _mask32(left - int(left / right) * right)
        if op == "and":
            return _mask32(int(left) & int(right))
        if op == "or":
            return _mask32(int(left) | int(right))
        if op == "xor":
            return _mask32(int(left) ^ int(right))
        if op == "lsl":
            return _mask32(int(left) << (int(right) & 31))
        if op == "lsr":
            return _mask32((int(left) & 0xFFFFFFFF) >> (int(right) & 31))
        if op == "asr":
            return _mask32(int(left) >> (int(right) & 31))
        if op == "fadd":
            return float(left) + float(right)
        if op == "fsub":
            return float(left) - float(right)
        if op == "fmul":
            return float(left) * float(right)
        if op == "fdiv":
            if right == 0:
                raise VMError("float division by zero")
            return float(left) / float(right)
        raise VMError(f"unknown operator {op!r}")

    @staticmethod
    def _unop(op: str, value: Number) -> Number:
        if op == "neg":
            return _mask32(-value)
        if op == "not":
            return _mask32(~int(value))
        if op == "fneg":
            return -float(value)
        if op == "itof":
            return float(value)
        if op == "ftoi":
            return _mask32(int(value))
        raise VMError(f"unknown unary operator {op!r}")
