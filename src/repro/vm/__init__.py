"""RTL interpreter: executes compiled programs at any optimization stage.

Used both as the correctness oracle (every phase ordering of a function
must produce code with identical observable behaviour) and to measure
dynamic instruction counts for the Table 7 experiment.
"""

from repro.vm.interpreter import (
    ExecutionResult,
    Interpreter,
    VMError,
    VMFuelExhausted,
)

__all__ = ["Interpreter", "ExecutionResult", "VMError", "VMFuelExhausted"]
