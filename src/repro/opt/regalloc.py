"""Phase k — register allocation.

Table 1: "Uses graph coloring to replace references to a variable
within a live range with a register."

Like VPO's, this phase is only legal after instruction selection has
been applied (so that candidate loads and stores contain the addresses
of arguments or local scalars) and it requires the compulsory register
assignment.

Every scalar frame slot whose accesses are all resolvable (the
frame-reference analysis proves their fp offsets, and the function
contains no wild frame access) is a candidate.  Candidates are colored
against each other and against the hardware registers live or defined
anywhere within the slot's live range; a colored slot's loads and
stores become register-to-register moves — which instruction selection
typically collapses afterwards, exactly the enabling relation between
k and s the paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.cache import liveness_of, slot_liveness_of
from repro.ir.function import Function
from repro.ir.instructions import Assign, Instruction
from repro.ir.operands import Mem, Reg
from repro.machine.target import ALLOCATABLE, Target
from repro.opt.base import Phase


class RegisterAllocation(Phase):
    id = "k"
    name = "register allocation"
    #: contract: legal only after instruction selection (mirrors applicable)
    contract_requires = ('selection-done',)
    contract_establishes = ('registers-assigned', 'no-pseudo-registers', 'allocation-done')
    contract_breaks = ()
    requires_assignment = True

    def applicable(self, func: Function) -> bool:
        return func.sel_applied

    def run(self, func: Function, target: Target) -> bool:
        slot_liveness = slot_liveness_of(func)
        frame_refs = slot_liveness.frame_refs
        if frame_refs.has_wild:
            return False  # an unresolved frame access may alias any slot

        candidates = self._referenced_slots(func, frame_refs)
        if not candidates:
            return False

        liveness = liveness_of(func)
        forbidden, slot_edges = self._interference(
            func, candidates, liveness, slot_liveness
        )
        coloring = self._color(candidates, forbidden, slot_edges)
        if not coloring:
            return False
        self._rewrite(func, frame_refs, coloring)
        func.invalidate_analyses()
        return True

    @staticmethod
    def _referenced_slots(func: Function, frame_refs) -> List[int]:
        referenced: Set[int] = set()
        for block_refs in frame_refs.refs.values():
            for ref in block_refs:
                referenced |= ref.reads
                referenced |= ref.writes
        return sorted(referenced)

    @staticmethod
    def _interference(func, candidates, liveness, slot_liveness):
        candidate_set = set(candidates)
        forbidden: Dict[int, Set[int]] = {offset: set() for offset in candidates}
        slot_edges: Dict[int, Set[int]] = {offset: set() for offset in candidates}

        frame_refs = slot_liveness.frame_refs
        for block in func.blocks:
            # Block-boundary interference (covers live-through ranges in
            # blocks that never touch the slot).
            slots_in = set(slot_liveness.live_in[block.label]) & candidate_set
            if slots_in:
                regs_in = {
                    reg.index for reg in liveness.live_in[block.label] if not reg.pseudo
                }
                for offset in slots_in:
                    forbidden[offset] |= regs_in
                    for other in slots_in:
                        if other != offset:
                            slot_edges[offset].add(other)
            regs_after = liveness.live_after_each(block.label)
            slots_after = slot_liveness.live_after_each(block.label)
            refs = frame_refs.refs[block.label]
            for i, inst in enumerate(block.insts):
                # A write to a slot interferes even when the stored value
                # is dead (overwritten before any read): the rewrite still
                # materializes the store, and once slots share a register
                # a dead store physically clobbers the other slot's live
                # value — so a defined slot conflicts with everything live
                # across this instruction, exactly like a defined register.
                live_slots = (slots_after[i] | refs[i].writes) & candidate_set
                if not live_slots:
                    continue
                live_regs = {reg.index for reg in regs_after[i] if not reg.pseudo}
                defined = {reg.index for reg in inst.defs() if not reg.pseudo}
                for offset in live_slots:
                    forbidden[offset] |= live_regs | defined
                    for other in live_slots:
                        if other != offset:
                            slot_edges[offset].add(other)
        return forbidden, slot_edges

    @staticmethod
    def _color(candidates, forbidden, slot_edges) -> Dict[int, Reg]:
        coloring: Dict[int, Reg] = {}
        for offset in candidates:
            taken = set(forbidden[offset])
            for neighbor in slot_edges[offset]:
                assigned = coloring.get(neighbor)
                if assigned is not None:
                    taken.add(assigned.index)
            free = [c for c in ALLOCATABLE if c not in taken]
            if free:
                coloring[offset] = Reg(free[0], pseudo=False)
        return coloring

    @staticmethod
    def _rewrite(func: Function, frame_refs, coloring: Dict[int, Reg]) -> None:
        for block in func.blocks:
            refs = frame_refs.refs[block.label]
            new_insts: List[Instruction] = []
            for inst, ref in zip(block.insts, refs):
                replacement = inst
                read_hits = ref.reads & set(coloring)
                write_hits = ref.writes & set(coloring)
                if read_hits and isinstance(inst, Assign) and isinstance(inst.src, Mem):
                    (offset,) = read_hits
                    replacement = Assign(inst.dst, coloring[offset])
                elif (
                    write_hits
                    and isinstance(inst, Assign)
                    and isinstance(inst.dst, Mem)
                ):
                    (offset,) = write_hits
                    replacement = Assign(coloring[offset], inst.src)
                new_insts.append(replacement)
            block.insts = new_insts
