"""Phase u — remove useless jumps.

Table 1: "Removes jumps and branches whose target is the following
positional block."
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import CondBranch, Jump
from repro.machine.target import Target
from repro.opt.base import Phase


class RemoveUselessJumps(Phase):
    id = "u"
    name = "remove useless jumps"
    #: contract: requires nothing, establishes nothing, preserves
    #: every monotone invariant (see staticanalysis/contracts.py)
    contract_requires = ()
    contract_establishes = ()
    contract_breaks = ()

    def run(self, func: Function, target: Target) -> bool:
        changed = False
        for i, block in enumerate(func.blocks[:-1]):
            term = block.terminator()
            next_label = func.blocks[i + 1].label
            if isinstance(term, (Jump, CondBranch)) and term.target == next_label:
                block.insts.pop()
                changed = True
        if changed:
            func.invalidate_analyses()
        return changed
