"""Phase r — reverse branches.

Table 1: "Removes an unconditional jump by reversing a conditional
branch branching over the jump."

Pattern::

    B1:  ... ; IC=... ; PC=IC cc 0, L2
    B2:  PC=L3                            (only reached from B1)
    L2:  ...

becomes::

    B1:  ... ; IC=... ; PC=IC !cc 0, L3
    L2:  ...
"""

from __future__ import annotations

from repro.analysis.cache import cfg_of
from repro.ir.function import Function
from repro.ir.instructions import CondBranch, INVERTED_RELOP, Jump
from repro.machine.target import Target
from repro.opt.base import Phase


class ReverseBranches(Phase):
    id = "r"
    name = "reverse branches"
    #: contract: requires nothing, establishes nothing, preserves
    #: every monotone invariant (see staticanalysis/contracts.py)
    contract_requires = ()
    contract_establishes = ()
    contract_breaks = ()

    def run(self, func: Function, target: Target) -> bool:
        changed = False
        while True:
            cfg = cfg_of(func)
            applied = False
            for i in range(len(func.blocks) - 2):
                upper = func.blocks[i]
                middle = func.blocks[i + 1]
                lower = func.blocks[i + 2]
                term = upper.terminator()
                if not isinstance(term, CondBranch):
                    continue
                if term.target != lower.label:
                    continue
                if len(middle.insts) != 1 or not isinstance(middle.insts[0], Jump):
                    continue
                if cfg.preds.get(middle.label) != [upper.label]:
                    continue
                jump_target = middle.insts[0].target
                if jump_target == middle.label:
                    continue  # degenerate self-loop
                upper.insts[-1] = CondBranch(
                    INVERTED_RELOP[term.relop], jump_target
                )
                del func.blocks[i + 1]
                func.invalidate_analyses()
                applied = True
                changed = True
                break
            if not applied:
                return changed
