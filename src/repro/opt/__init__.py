"""The fifteen candidate optimization phases (Table 1 of the paper).

======  ================================  ==============================
Letter  Phase                             Ordering restrictions
======  ================================  ==============================
b       branch chaining
c       common subexpression elimination  triggers register assignment
d       remove unreachable code
g       loop unrolling                    after register allocation (k)
h       dead assignment elimination
i       block reordering
j       minimize loop jumps
k       register allocation               after instruction selection (s);
                                          triggers register assignment
l       loop transformations              after register allocation (k)
n       code abstraction
o       evaluation order determination    before register assignment
q       strength reduction
r       reverse branches
s       instruction selection
u       remove useless jumps
======  ================================  ==============================
"""

from repro.opt.base import (
    Phase,
    apply_phase,
    attempt_phase_on_clone,
    set_legacy_clone_mode,
)
from repro.opt.cleanup import implicit_cleanup
from repro.opt.register_assignment import assign_registers

from repro.opt.branch_chaining import BranchChaining
from repro.opt.cse import CommonSubexpressionElimination
from repro.opt.unreachable import RemoveUnreachableCode
from repro.opt.loop_unrolling import LoopUnrolling
from repro.opt.dead_assign import DeadAssignmentElimination
from repro.opt.block_reordering import BlockReordering
from repro.opt.loop_jumps import MinimizeLoopJumps
from repro.opt.regalloc import RegisterAllocation
from repro.opt.loop_transforms import LoopTransformations
from repro.opt.code_abstraction import CodeAbstraction
from repro.opt.eval_order import EvaluationOrderDetermination
from repro.opt.strength_reduction import StrengthReduction
from repro.opt.reverse_branches import ReverseBranches
from repro.opt.instruction_selection import InstructionSelection
from repro.opt.useless_jumps import RemoveUselessJumps

#: all candidate phases in the paper's Table 1 order
PHASES = (
    BranchChaining(),
    CommonSubexpressionElimination(),
    RemoveUnreachableCode(),
    LoopUnrolling(),
    DeadAssignmentElimination(),
    BlockReordering(),
    MinimizeLoopJumps(),
    RegisterAllocation(),
    LoopTransformations(),
    CodeAbstraction(),
    EvaluationOrderDetermination(),
    StrengthReduction(),
    ReverseBranches(),
    InstructionSelection(),
    RemoveUselessJumps(),
)

PHASE_IDS = tuple(phase.id for phase in PHASES)

_BY_ID = {phase.id: phase for phase in PHASES}


def phase_by_id(phase_id: str) -> Phase:
    """Look up a phase by its single-letter designation."""
    return _BY_ID[phase_id]


__all__ = [
    "Phase",
    "apply_phase",
    "attempt_phase_on_clone",
    "set_legacy_clone_mode",
    "implicit_cleanup",
    "assign_registers",
    "PHASES",
    "PHASE_IDS",
    "phase_by_id",
    "BranchChaining",
    "CommonSubexpressionElimination",
    "RemoveUnreachableCode",
    "LoopUnrolling",
    "DeadAssignmentElimination",
    "BlockReordering",
    "MinimizeLoopJumps",
    "RegisterAllocation",
    "LoopTransformations",
    "CodeAbstraction",
    "EvaluationOrderDetermination",
    "StrengthReduction",
    "ReverseBranches",
    "InstructionSelection",
    "RemoveUselessJumps",
]
