"""Phase g — loop unrolling.

Table 1: "Loop unrolling to potentially reduce the number of
comparisons and branches at run time and to aid scheduling at the cost
of code size increase."

The unroll factor is fixed at two (paper section 3: the target is an
embedded processor where code size matters).  Like VPO's, this phase
runs only after register allocation.

The transformation is a general factor-2 unroll that preserves the
exit tests: the loop body blocks are duplicated with fresh labels, the
original back edges are redirected to the copy, and the copy's back
edges return to the original header.  Each loop is unrolled at most
once, and only when its blocks are positionally contiguous and the body
is small enough.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.cache import loops_of
from repro.analysis.loops import Loop
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import CondBranch, Jump
from repro.machine.target import Target
from repro.opt.base import Phase

#: loops with more instructions than this are not unrolled
MAX_UNROLL_INSTS = 40


class LoopUnrolling(Phase):
    id = "g"
    name = "loop unrolling"
    #: contract: legal only after register allocation (mirrors applicable)
    contract_requires = ('allocation-done',)
    contract_establishes = ()
    contract_breaks = ()
    UNROLL_FACTOR = 2

    def applicable(self, func: Function) -> bool:
        return func.alloc_applied

    def run(self, func: Function, target: Target) -> bool:
        changed = False
        while self._apply_once(func):
            changed = True
        return changed

    def _apply_once(self, func: Function) -> bool:
        loops = loops_of(func)
        for loop in loops:
            if loop.header in func.unrolled:
                continue
            if self._unroll(func, loop):
                func.unrolled.add(loop.header)
                return True
        return False

    def _unroll(self, func: Function, loop: Loop) -> bool:
        indices = sorted(func.block_index(label) for label in loop.body)
        first, last = indices[0], indices[-1]
        if indices != list(range(first, last + 1)):
            return False  # loop blocks not contiguous
        if func.blocks[first].label != loop.header:
            return False
        if first == 0:
            return False  # never duplicate the entry block
        originals = func.blocks[first : last + 1]
        if sum(len(block.insts) for block in originals) > MAX_UNROLL_INSTS:
            return False

        # The positionally-last loop block must not fall through into
        # the copies we are about to insert.
        # Every back edge must be an explicit transfer to the header
        # (verified before any mutation).
        for latch_label in loop.latches:
            term = func.block(latch_label).terminator()
            if not (
                isinstance(term, (Jump, CondBranch)) and term.target == loop.header
            ):
                return False

        tail = originals[-1]
        tail_term = tail.terminator()
        insert_at = last + 1
        if tail_term is None:
            if last + 1 >= len(func.blocks):
                return False
            tail.insts.append(Jump(func.blocks[last + 1].label))
        elif isinstance(tail_term, CondBranch):
            if last + 1 >= len(func.blocks):
                return False
            thunk = BasicBlock(func.new_label(), [Jump(func.blocks[last + 1].label)])
            func.blocks.insert(last + 1, thunk)
            insert_at = last + 2

        mapping: Dict[str, str] = {
            block.label: func.new_label() for block in originals
        }
        copies: List[BasicBlock] = []
        for block in originals:
            copy = BasicBlock(mapping[block.label], list(block.insts))
            term = copy.terminator()
            if isinstance(term, Jump) and term.target in mapping:
                copy.insts[-1] = Jump(mapping[term.target])
            elif isinstance(term, CondBranch) and term.target in mapping:
                copy.insts[-1] = CondBranch(term.relop, mapping[term.target])
            copies.append(copy)

        new_header = mapping[loop.header]
        # Original back edges now enter the copy; the copy's back edges
        # (already mapped onto the copy header) return to the original.
        for latch_label in loop.latches:
            latch = func.block(latch_label)
            term = latch.terminator()
            if isinstance(term, Jump):
                latch.insts[-1] = Jump(new_header)
            else:
                assert isinstance(term, CondBranch)
                latch.insts[-1] = CondBranch(term.relop, new_header)
            copy_latch = next(
                c for c in copies if c.label == mapping[latch_label]
            )
            copy_term = copy_latch.terminator()
            if isinstance(copy_term, Jump) and copy_term.target == new_header:
                copy_latch.insts[-1] = Jump(loop.header)
            elif (
                isinstance(copy_term, CondBranch)
                and copy_term.target == new_header
            ):
                copy_latch.insts[-1] = CondBranch(copy_term.relop, loop.header)

        func.blocks[insert_at:insert_at] = copies
        func.invalidate_analyses()
        return True
