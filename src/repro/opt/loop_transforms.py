"""Phase l — loop transformations.

Table 1: "Performs loop-invariant code motion, recurrence elimination,
loop strength reduction, and induction variable elimination on each
loop ordered by loop nesting level."

Like VPO's, this phase is restricted to run after register allocation
(k), because it analyzes values held in registers.

Three transformations, applied one at a time with fresh analyses:

- *Loop-invariant code motion*: a pure computation (or a load, when the
  loop contains no stores or calls) whose operands are not defined in
  the loop is moved to the loop preheader, creating the preheader on
  demand.  Potentially trapping operations (division) are never
  speculated.
- *Strength reduction*: a derived induction expression ``t = r*m`` /
  ``t = r << k`` / ``t = base + (r << k)`` over a basic induction
  variable ``r`` (single in-loop definition ``r = r ± c``) is replaced
  by a new register ``p`` initialized in the preheader and bumped in
  lockstep with ``r``.
- *Induction variable elimination*: when afterwards the only remaining
  uses of ``r`` are its own bump and one exit comparison against an
  invariant bound, the comparison is rewritten against the reduced
  register (``IC = p ? bound*m`` — the shape of Figure 5 in the paper)
  and the bump deleted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cache import cfg_of, dominators_of, liveness_of, loops_of
from repro.analysis.loops import Loop
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Assign,
    Call,
    Compare,
    CondBranch,
    Instruction,
    Jump,
)
from repro.ir.operands import BinOp, Const, Expr, Mem, Reg
from repro.machine.target import ALLOCATABLE, FP, Target
from repro.opt.base import Phase

_TRAPPING_OPS = frozenset({"div", "rem", "fdiv"})


def ensure_preheader(func: Function, loop: Loop) -> BasicBlock:
    """Return the loop's preheader, creating one when necessary."""
    cfg = cfg_of(func)
    header_label = loop.header
    outside = [p for p in cfg.preds.get(header_label, ()) if p not in loop.body]
    if len(outside) == 1:
        pred = func.block(outside[0])
        if cfg.succs.get(pred.label) == [header_label]:
            return pred

    header_index = func.block_index(header_label)
    # A latch that reaches the header by positional fallthrough must be
    # given an explicit jump before we squeeze a block in between.
    if header_index > 0:
        prev = func.blocks[header_index - 1]
        if prev.terminator() is None and prev.label in loop.body:
            prev.insts.append(Jump(header_label))
    preheader = BasicBlock(func.new_label())
    func.blocks.insert(func.block_index(header_label), preheader)
    for pred_label in outside:
        pred = func.block(pred_label)
        term = pred.terminator()
        if isinstance(term, Jump) and term.target == header_label:
            pred.insts[-1] = Jump(preheader.label)
        elif isinstance(term, CondBranch) and term.target == header_label:
            pred.insts[-1] = CondBranch(term.relop, preheader.label)
        # Fallthrough predecessors now fall into the preheader, which
        # falls into the header.
    func.invalidate_analyses()
    return preheader


def _append_to_preheader(preheader: BasicBlock, insts: List[Instruction]) -> None:
    term = preheader.terminator()
    if term is None:
        preheader.insts.extend(insts)
    else:
        preheader.insts[-1:-1] = insts


class _LoopInfo:
    """Per-loop facts shared by the transformations."""

    def __init__(self, func: Function, loop: Loop):
        self.loop = loop
        self.blocks = [func.block(label) for label in sorted(loop.body)]
        self.def_counts: Dict[Reg, int] = {}
        self.def_site: Dict[Reg, Tuple[str, int]] = {}
        self.has_store_or_call = False
        for block in self.blocks:
            for i, inst in enumerate(block.insts):
                for reg in inst.defs():
                    self.def_counts[reg] = self.def_counts.get(reg, 0) + 1
                    self.def_site[reg] = (block.label, i)
                if isinstance(inst, Call) or inst.writes_memory():
                    self.has_store_or_call = True

    def invariant_reg(self, reg: Reg) -> bool:
        return reg == FP or reg not in self.def_counts

    def invariant_expr(self, expr: Expr) -> bool:
        return all(self.invariant_reg(reg) for reg in expr.registers())


class LoopTransformations(Phase):
    id = "l"
    name = "loop transformations"
    #: contract: legal only after register allocation (mirrors applicable)
    contract_requires = ('allocation-done',)
    contract_establishes = ('registers-assigned', 'no-pseudo-registers')
    contract_breaks = ()
    requires_assignment = True

    def applicable(self, func: Function) -> bool:
        return func.alloc_applied

    def run(self, func: Function, target: Target) -> bool:
        changed = False
        while self._apply_once(func, target):
            changed = True
        return changed

    def _apply_once(self, func: Function, target: Target) -> bool:
        loops = loops_of(func)
        for loop in loops:  # innermost first
            if self._transform_loop(func, target, loop):
                return True
        return False

    def _transform_loop(self, func: Function, target: Target, loop: Loop) -> bool:
        info = _LoopInfo(func, loop)
        if self._licm_once(func, loop, info):
            return True
        if self._strength_reduce(func, target, loop, info):
            return True
        return False

    # ------------------------------------------------------------------
    # Loop-invariant code motion
    # ------------------------------------------------------------------

    def _licm_once(self, func: Function, loop: Loop, info: _LoopInfo) -> bool:
        cfg = cfg_of(func)
        dom = dominators_of(func)
        liveness = liveness_of(func)
        header_live_in = liveness.live_in[loop.header]
        latches = loop.latches
        exiting = loop.exiting_blocks(cfg)

        for block in info.blocks:
            for i, inst in enumerate(block.insts):
                if not isinstance(inst, Assign) or not isinstance(inst.dst, Reg):
                    continue
                reg = inst.dst
                src = inst.src
                if not info.invariant_expr(src):
                    continue
                if reg in src.registers():
                    continue
                if any(
                    isinstance(node, BinOp) and node.op in _TRAPPING_OPS
                    for node in src.walk()
                ):
                    continue
                if src.reads_memory() and info.has_store_or_call:
                    continue
                if info.def_counts.get(reg, 0) != 1:
                    continue
                if reg in header_live_in:
                    continue
                if not all(dom.dominates(block.label, latch) for latch in latches):
                    continue
                safe = True
                for exit_block in exiting:
                    if dom.dominates(block.label, exit_block):
                        continue
                    for succ in cfg.succs.get(exit_block, ()):
                        if succ not in loop.body and reg in liveness.live_in[succ]:
                            safe = False
                            break
                    if not safe:
                        break
                if not safe:
                    continue
                # Commit: move to the preheader.
                del block.insts[i]
                func.invalidate_analyses()
                preheader = ensure_preheader(func, loop)
                _append_to_preheader(preheader, [inst])
                func.invalidate_analyses()
                return True
        return False

    # ------------------------------------------------------------------
    # Strength reduction + induction variable elimination
    # ------------------------------------------------------------------

    def _strength_reduce(
        self, func: Function, target: Target, loop: Loop, info: _LoopInfo
    ) -> bool:
        dom = dominators_of(func)
        bivs = self._basic_ivs(info, dom, loop)
        if not bivs:
            return False
        for reg, step in sorted(bivs.items(), key=lambda kv: kv[0].index):
            candidates = self._derived_candidates(info, reg)
            if not candidates:
                continue
            if self._reduce_biv(func, target, loop, info, reg, step, candidates):
                return True
        return False

    @staticmethod
    def _basic_ivs(info: _LoopInfo, dom, loop: Loop) -> Dict[Reg, int]:
        bivs: Dict[Reg, int] = {}
        for block in info.blocks:
            for inst in block.insts:
                if not isinstance(inst, Assign) or not isinstance(inst.dst, Reg):
                    continue
                reg = inst.dst
                if info.def_counts.get(reg, 0) != 1:
                    continue
                src = inst.src
                if (
                    isinstance(src, BinOp)
                    and src.left == reg
                    and isinstance(src.right, Const)
                    and isinstance(src.right.value, int)
                    and src.op in ("add", "sub")
                ):
                    if not all(
                        dom.dominates(block.label, latch) for latch in loop.latches
                    ):
                        continue
                    step = src.right.value if src.op == "add" else -src.right.value
                    if step != 0:
                        bivs[reg] = step
        return bivs

    @staticmethod
    def _derived_candidates(info: _LoopInfo, biv: Reg):
        """(block, index, inst, multiplier, base) for reducible exprs."""
        candidates = []
        for block in info.blocks:
            for i, inst in enumerate(block.insts):
                if not isinstance(inst, Assign) or not isinstance(inst.dst, Reg):
                    continue
                t = inst.dst
                if t == biv or info.def_counts.get(t, 0) != 1:
                    continue
                src = inst.src
                multiplier: Optional[int] = None
                base: Optional[Reg] = None
                if isinstance(src, BinOp) and src.left == biv:
                    if src.op == "mul" and isinstance(src.right, Const):
                        if isinstance(src.right.value, int):
                            multiplier = src.right.value
                    elif src.op == "lsl" and isinstance(src.right, Const):
                        if isinstance(src.right.value, int) and 0 <= src.right.value < 31:
                            multiplier = 1 << src.right.value
                elif (
                    isinstance(src, BinOp)
                    and src.op == "add"
                    and isinstance(src.left, Reg)
                    and info.invariant_reg(src.left)
                    and isinstance(src.right, BinOp)
                    and src.right.left == biv
                ):
                    inner = src.right
                    if inner.op == "lsl" and isinstance(inner.right, Const):
                        if isinstance(inner.right.value, int) and 0 <= inner.right.value < 31:
                            multiplier = 1 << inner.right.value
                            base = src.left
                    elif inner.op == "mul" and isinstance(inner.right, Const):
                        if isinstance(inner.right.value, int):
                            multiplier = inner.right.value
                            base = src.left
                if multiplier is None or multiplier == 0:
                    continue
                candidates.append((block, i, inst, multiplier, base))
        return candidates

    def _reduce_biv(
        self,
        func: Function,
        target: Target,
        loop: Loop,
        info: _LoopInfo,
        biv: Reg,
        step: int,
        candidates,
    ) -> bool:
        free_pool = self._free_registers(func)
        if len(free_pool) < len(candidates):
            return False
        bump_label, bump_index = info.def_site[biv]

        # Check immediate legality of every inserted step first.
        for __, __, __, multiplier, __ in candidates:
            if abs(step * multiplier) > target.alu_imm_limit:
                return False

        preheader = ensure_preheader(func, loop)
        new_regs: List[Tuple[Reg, int, Optional[Reg]]] = []
        for (block, i, inst, multiplier, base) in candidates:
            p = free_pool.pop()
            init: List[Instruction] = [Assign(p, BinOp("mul", biv, Const(multiplier)))]
            if base is not None:
                init.append(Assign(p, BinOp("add", p, base)))
            _append_to_preheader(preheader, init)
            block.insts[i] = Assign(inst.dst, p)
            new_regs.append((p, multiplier, base))
        # Bump every new register right after the biv's bump.
        bump_block = func.block(bump_label)
        # The bump index may have shifted if the preheader was inserted
        # into the same list; recompute by searching for the bump.
        bump_at = self._find_bump(bump_block, biv)
        bumps = [
            Assign(p, BinOp("add", p, Const(step * multiplier)))
            for (p, multiplier, __) in new_regs
        ]
        bump_block.insts[bump_at + 1 : bump_at + 1] = bumps

        self._try_eliminate_biv(func, target, loop, biv, new_regs, preheader)
        func.invalidate_analyses()
        return True

    @staticmethod
    def _find_bump(block: BasicBlock, biv: Reg) -> int:
        for i, inst in enumerate(block.insts):
            if (
                isinstance(inst, Assign)
                and inst.dst == biv
                and isinstance(inst.src, BinOp)
                and inst.src.left == biv
            ):
                return i
        raise RuntimeError("induction variable bump vanished")

    @staticmethod
    def _free_registers(func: Function) -> List[Reg]:
        used: Set[int] = set()
        for inst in func.instructions():
            for reg in inst.defs():
                if not reg.pseudo:
                    used.add(reg.index)
            for reg in inst.uses():
                if not reg.pseudo:
                    used.add(reg.index)
        # Low indices are k's preference; hand out high ones.
        return [Reg(i, pseudo=False) for i in ALLOCATABLE if i not in used]

    def _try_eliminate_biv(
        self,
        func: Function,
        target: Target,
        loop: Loop,
        biv: Reg,
        new_regs: List[Tuple[Reg, int, Optional[Reg]]],
        preheader: BasicBlock,
    ) -> None:
        """Rewrite the exit comparison against a reduced register and
        delete the biv bump, when the biv has no other remaining uses."""
        # Pick a reduced register with positive multiplier (order-safe).
        chosen = next(
            ((p, m, base) for (p, m, base) in new_regs if m > 0), None
        )
        if chosen is None:
            return
        p, multiplier, base = chosen

        bump_site: Optional[Tuple[BasicBlock, int]] = None
        compare_site: Optional[Tuple[BasicBlock, int]] = None
        for block in func.blocks:
            in_loop = block.label in loop.body
            for i, inst in enumerate(block.insts):
                if isinstance(inst, Assign) and inst.dst == biv:
                    if in_loop:
                        if not (
                            isinstance(inst.src, BinOp) and inst.src.left == biv
                        ):
                            return  # unexpected in-loop redefinition
                        if bump_site is not None:
                            return
                        bump_site = (block, i)
                        continue
                    # Definitions outside the loop (the initialization,
                    # or an unrelated reuse of the register) are fine —
                    # they become dead or overwrite after the loop.
                    continue
                if biv not in inst.uses():
                    continue
                if isinstance(inst, Compare) and in_loop:
                    if compare_site is not None:
                        return
                    compare_site = (block, i)
                    continue
                if block.label == preheader.label:
                    # Preheader uses (the reduction inits we just
                    # planted) execute before any bump; deleting the
                    # bump cannot change what they read.
                    continue
                return  # some other use remains (possibly of a later value)
        if bump_site is None or compare_site is None:
            return
        block, i = compare_site
        compare = block.insts[i]
        assert isinstance(compare, Compare)
        if compare.left == biv and biv not in compare.right.registers():
            bound, biv_on_left = compare.right, True
        elif compare.right == biv and biv not in compare.left.registers():
            bound, biv_on_left = compare.left, False
        else:
            return
        if isinstance(bound, Const):
            if not isinstance(bound.value, int):
                return
        elif isinstance(bound, Reg):
            if bound in (reg for b in func.blocks if b.label in loop.body
                         for inst2 in b.insts for reg in inst2.defs()):
                return  # bound not invariant
        else:
            return

        free = self._free_registers(func)
        if not free:
            return
        q = free.pop()
        init: List[Instruction]
        if isinstance(bound, Const):
            scaled = bound.value * multiplier
            if abs(scaled) > target.alu_imm_limit:
                init = None
            else:
                init = [Assign(q, Const(scaled))]
        else:
            init = [Assign(q, BinOp("mul", bound, Const(multiplier)))]
        if init is None:
            return
        if base is not None:
            init.append(Assign(q, BinOp("add", q, base)))
        _append_to_preheader(preheader, init)
        if biv_on_left:
            block.insts[i] = Compare(p, q)
        else:
            block.insts[i] = Compare(q, p)
        bump_block, bump_index = bump_site
        del bump_block.insts[bump_index]
