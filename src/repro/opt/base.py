"""Phase framework: the Phase interface and application driver.

A phase is *active* when running it changes the code, and *dormant*
otherwise (paper section 4.1).  A phase that is illegal at the current
compilation state (e.g. evaluation order determination after register
assignment) is trivially dormant.

``apply_phase`` implements VPO's implicit behaviour around a phase:

- compulsory register assignment runs before the first phase in a
  sequence that requires it (c and k);
- the implicit merge-basic-blocks / eliminate-empty-blocks cleanup runs
  after any active phase (these only canonicalize control flow and are
  not part of the candidate phase set);
- the function's legality flags are updated when s or k is active.

A dormant attempt leaves the function unchanged (callers that need the
original must apply phases to a clone, as the enumerator does).

Cloning invariant (the enumeration hot path)
--------------------------------------------

``apply_phase`` mutates its argument in place, so enumeration callers
historically cloned the parent *and* — for phases requiring the
compulsory register assignment — ``apply_phase`` cloned a scratch copy
again and copied it back, i.e. two deep clones per attempted edge.
:func:`attempt_phase_on_clone` collapses this to **at most one clone
per attempt, and none for a trivially-dormant phase**:

- legality (``phase.applicable``) is checked *before* cloning, so an
  illegal phase costs nothing;
- one clone is made, and for ``requires_assignment`` phases the
  register assignment is committed directly on that clone (no
  scratch-and-copy-back: if the phase turns out dormant the clone is
  simply discarded, which is what preserves the dormant-leaves-the-
  parent-unchanged invariant);
- a dormant run returns ``None`` and the parent is untouched;
- an active run returns the clone after the implicit cleanup fixpoint
  and legality-flag update, exactly as ``apply_phase`` would have left
  it.

``set_legacy_clone_mode(True)`` (or ``REPRO_LEGACY_CLONE=1``) restores
the old clone-then-``apply_phase`` flow so the hot-path bench can
measure what the double clone cost.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.ir.function import Function
from repro.machine.target import DEFAULT_TARGET, Target
from repro.observability import tracer as _obs


class Phase:
    """Base class for the fifteen candidate optimization phases."""

    #: single-letter designation from Table 1 of the paper
    id: str = "?"
    name: str = "?"
    #: phase needs the compulsory register assignment to have run
    requires_assignment: bool = False
    #: phase-contract declarations (plain invariant-name tuples; the
    #: vocabulary and checker live in repro/staticanalysis/contracts.py):
    #: invariants that must hold before the phase runs,
    contract_requires: tuple = ()
    #: invariants any active application establishes,
    contract_establishes: tuple = ()
    #: and monotone invariants the phase is allowed to destroy.
    contract_breaks: tuple = ()

    def applicable(self, func: Function) -> bool:
        """Legality of attempting this phase in the current state."""
        return True

    def run(self, func: Function, target: Target) -> bool:
        """Apply the phase in place; return True when code changed."""
        raise NotImplementedError

    def __repr__(self):
        return f"<Phase {self.id}: {self.name}>"


def apply_phase(func: Function, phase: Phase, target: Optional[Target] = None) -> bool:
    """Attempt *phase* on *func* with VPO's implicit behaviours.

    Returns True when the phase was active.  When the phase is dormant
    the function is left exactly as it was — including not committing
    the implicit register assignment, so a dormant attempt never
    changes the instance (see DESIGN.md).
    """
    from repro.opt.cleanup import implicit_cleanup
    from repro.opt.register_assignment import assign_registers

    if target is None:
        target = DEFAULT_TARGET
    if not phase.applicable(func):
        return False

    if phase.requires_assignment and not func.reg_assigned:
        # Attempt on a scratch copy first so a dormant phase does not
        # commit the assignment.
        scratch = func.clone()
        assign_registers(scratch, target)
        scratch.reg_assigned = True
        if not phase.run(scratch, target):
            return False
        _cleanup_fixpoint(scratch, phase, target)
        _copy_into(scratch, func)
        _note_active(func, phase)
        return True

    changed = phase.run(func, target)
    if changed:
        _cleanup_fixpoint(func, phase, target)
        _note_active(func, phase)
    return changed


_LEGACY_CLONE = bool(os.environ.get("REPRO_LEGACY_CLONE"))


def set_legacy_clone_mode(enabled: bool) -> bool:
    """Restore the clone + apply_phase double-clone flow (bench toggle).

    Returns the previous setting so callers can restore it.
    """
    global _LEGACY_CLONE
    previous = _LEGACY_CLONE
    _LEGACY_CLONE = enabled
    return previous


def attempt_phase_on_clone(
    func: Function, phase: Phase, target: Optional[Target] = None
) -> Optional[Function]:
    """Attempt *phase* on a clone of *func*; None when dormant.

    Single-clone fast path for enumeration (see the module docstring
    for the invariant): *func* is never mutated, and at most one clone
    is made — none when the phase is illegal in the current state.
    """
    from repro.opt.register_assignment import assign_registers

    if target is None:
        target = DEFAULT_TARGET
    if _LEGACY_CLONE:
        candidate = func.clone()
        active = apply_phase(candidate, phase, target)
        _note_outcome(phase, active)
        return candidate if active else None
    if not phase.applicable(func):
        _note_outcome(phase, False)
        return None
    candidate = func.clone()
    if phase.requires_assignment and not candidate.reg_assigned:
        assign_registers(candidate, target)
        candidate.reg_assigned = True
    if not phase.run(candidate, target):
        _note_outcome(phase, False)
        return None
    _cleanup_fixpoint(candidate, phase, target)
    _note_active(candidate, phase)
    _note_outcome(phase, True)
    return candidate


def _cleanup_fixpoint(func: Function, phase: Phase, target: Target) -> None:
    """Run the implicit cleanup and re-run *phase* to a joint fixpoint.

    The implicit block merging can expose new opportunities for the
    phase that just ran (e.g. removing an empty block brings a
    conditional branch and the jump it skips next to each other for r).
    Re-running until dormant preserves the paper's invariant that no
    phase is ever successfully applied twice in a row.
    """
    from repro.opt.cleanup import implicit_cleanup

    implicit_cleanup(func)
    for _ in range(100):
        if not phase.run(func, target):
            return
        implicit_cleanup(func)
    raise RuntimeError(
        f"{func.name}: phase {phase.id} did not reach a fixpoint with cleanup"
    )


def _note_outcome(phase: Phase, active: bool) -> None:
    """Count this attempt's outcome on the active tracer, if any.

    Observational only — never touches the function or the phase, so
    traced and untraced runs stay bit-identical.
    """
    tr = _obs.ACTIVE
    if tr is not None:
        tr.phase_outcome(phase.id, "active" if active else "dormant")


def _note_active(func: Function, phase: Phase) -> None:
    if phase.id == "s":
        func.sel_applied = True
    elif phase.id == "k":
        func.alloc_applied = True


def _copy_into(source: Function, dest: Function) -> None:
    """Overwrite *dest* in place with *source*'s state."""
    dest.blocks = source.blocks
    dest.frame = source.frame
    dest.frame_size = source.frame_size
    dest.next_pseudo = source.next_pseudo
    dest.next_label = source.next_label
    dest.reg_assigned = source.reg_assigned
    dest.sel_applied = source.sel_applied
    dest.alloc_applied = source.alloc_applied
    dest.unrolled = source.unrolled
    dest._analyses = source._analyses
