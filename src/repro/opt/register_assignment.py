"""Compulsory register assignment: pseudo registers -> hardware registers.

VPO performs this implicitly before the first code-improving phase in a
sequence that requires it (c and k).  It is not one of the fifteen
candidate phases; evaluation order determination (o) is illegal after
it has run.

The implementation is a Chaitin-style graph coloring over pseudo
register live ranges, with precolored hardware registers (argument
registers, the return value, call-clobbered registers) as interference
constraints and spill-to-stack as the fallback.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cache import liveness_of
from repro.analysis.defuse import rewrite_registers
from repro.ir.function import Function
from repro.ir.instructions import Assign, Instruction
from repro.ir.operands import BinOp, Const, Mem, Reg
from repro.machine.target import ALLOCATABLE, FP, Target

_MAX_SPILL_ROUNDS = 25

#: phase contract (one of the two implicit phases; candidate phases
#: declare these as Phase class attributes instead — see
#: repro/staticanalysis/contracts.py for the vocabulary and checker)
CONTRACT = {
    "requires": ("pre-assignment",),
    "establishes": ("registers-assigned", "no-pseudo-registers"),
    "breaks": (),
}


def assign_registers(func: Function, target: Target) -> None:
    """Replace every pseudo register in *func* with a hardware register."""
    for _ in range(_MAX_SPILL_ROUNDS):
        coloring, spilled = _try_color(func)
        if not spilled:
            _rewrite(func, coloring)
            func.reg_assigned = True
            return
        for pseudo in spilled:
            _spill(func, pseudo)
    raise RuntimeError(f"{func.name}: register assignment did not converge")


def _try_color(func: Function) -> Tuple[Dict[Reg, Reg], List[Reg]]:
    """One coloring attempt: returns (coloring, pseudos to spill)."""
    interference: Dict[Reg, Set[Reg]] = {}
    forbidden: Dict[Reg, Set[int]] = {}

    def note(a: Reg, b: Reg) -> None:
        if a == b:
            return
        if a.pseudo and b.pseudo:
            interference.setdefault(a, set()).add(b)
            interference.setdefault(b, set()).add(a)
        elif a.pseudo:
            forbidden.setdefault(a, set()).add(b.index)
        elif b.pseudo:
            forbidden.setdefault(b, set()).add(a.index)

    pseudos: Set[Reg] = set()
    for inst in func.instructions():
        for reg in inst.defs():
            if reg.pseudo:
                pseudos.add(reg)
        for reg in inst.uses():
            if reg.pseudo:
                pseudos.add(reg)
    for pseudo in pseudos:
        interference.setdefault(pseudo, set())
        forbidden.setdefault(pseudo, set())

    liveness = liveness_of(func)
    for block in func.blocks:
        live_after = liveness.live_after_each(block.label)
        for inst, live in zip(block.insts, live_after):
            for defined in inst.defs():
                for other in live:
                    note(defined, other)

    # Chaitin-Briggs simplify/select with optimistic spilling.
    colors = list(ALLOCATABLE)
    k = len(colors)
    degree = {p: len(interference[p]) + len(forbidden[p]) for p in pseudos}
    stack: List[Reg] = []
    remaining = set(pseudos)
    removed: Set[Reg] = set()
    while remaining:
        candidates = sorted(
            (p for p in remaining if degree[p] < k), key=lambda r: r.index
        )
        if candidates:
            chosen = candidates[0]
        else:
            # Optimistic: push the highest-degree node and hope.
            chosen = max(remaining, key=lambda r: (degree[r], r.index))
        stack.append(chosen)
        remaining.discard(chosen)
        removed.add(chosen)
        for neighbor in interference[chosen]:
            if neighbor not in removed:
                degree[neighbor] -= 1

    # Prefer lightly used colors so unrelated values get distinct
    # registers — keeping live ranges separable for the later phases,
    # as VPO's plentiful-register assignment does.  Hardware registers
    # already present in the code (arguments, return value) count as
    # used so temporaries avoid them.
    usage: Dict[int, int] = {c: 0 for c in colors}
    for inst in func.instructions():
        for reg in list(inst.defs()) + list(inst.uses()):
            if not reg.pseudo and reg.index in usage:
                usage[reg.index] += 1

    coloring: Dict[Reg, Reg] = {}
    spilled: List[Reg] = []
    while stack:
        pseudo = stack.pop()
        taken = set(forbidden[pseudo])
        for neighbor in interference[pseudo]:
            assigned = coloring.get(neighbor)
            if assigned is not None:
                taken.add(assigned.index)
        free = [c for c in colors if c not in taken]
        if free:
            best = min(free, key=lambda c: (usage[c], c))
            coloring[pseudo] = Reg(best, pseudo=False)
            usage[best] += 1
        else:
            spilled.append(pseudo)
    return coloring, spilled


def _rewrite(func: Function, coloring: Dict[Reg, Reg]) -> None:
    for block in func.blocks:
        block.insts = [rewrite_registers(inst, coloring) for inst in block.insts]
    func.invalidate_analyses()


def _spill_slot_name(func: Function) -> str:
    index = 0
    while f"_spill{index}" in func.frame:
        index += 1
    return f"_spill{index}"


def _spill(func: Function, pseudo: Reg) -> None:
    """Rewrite *pseudo* to live in a new stack slot."""
    slot = func.add_local(_spill_slot_name(func), 1, "int", False)
    addr = BinOp("add", FP, Const(slot.offset)) if slot.offset else FP

    from repro.analysis.defuse import rewrite_uses

    for block in func.blocks:
        new_insts: List[Instruction] = []
        for inst in block.insts:
            uses_pseudo = pseudo in inst.uses()
            defines_pseudo = pseudo in inst.defs()
            if uses_pseudo:
                load_temp = func.new_reg()
                new_insts.append(Assign(load_temp, Mem(addr)))
                inst = rewrite_uses(inst, {pseudo: load_temp})
            if defines_pseudo:
                store_temp = func.new_reg()
                assert isinstance(inst, Assign) and inst.dst == pseudo
                inst = Assign(store_temp, inst.src)
                new_insts.append(inst)
                new_insts.append(Assign(Mem(addr), store_temp))
            else:
                new_insts.append(inst)
        block.insts = new_insts
    func.invalidate_analyses()
