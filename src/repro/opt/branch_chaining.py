"""Phase b — branch chaining.

Table 1: "Replaces a branch or jump target with the target of the last
jump in the jump chain."

Per section 5.1 of the paper, unreachable code occasionally left behind
by branch chaining is removed during branch chaining itself (it would
otherwise hinder later analyses); a standalone unreachable-code phase
(d) still exists.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.cache import cfg_of
from repro.ir.function import Function
from repro.ir.instructions import CondBranch, Jump
from repro.machine.target import Target
from repro.opt.base import Phase


def _final_target(start: str, trivial: Dict[str, str]) -> str:
    """Follow a chain of jump-only blocks; stop on a cycle."""
    seen = {start}
    current = start
    while current in trivial:
        following = trivial[current]
        if following in seen:
            break
        seen.add(following)
        current = following
    return current


class BranchChaining(Phase):
    id = "b"
    name = "branch chaining"
    #: contract: requires nothing, establishes nothing, preserves
    #: every monotone invariant (see staticanalysis/contracts.py)
    contract_requires = ()
    contract_establishes = ()
    contract_breaks = ()

    def run(self, func: Function, target: Target) -> bool:
        # Blocks consisting solely of an unconditional jump.
        trivial: Dict[str, str] = {}
        for block in func.blocks:
            if len(block.insts) == 1 and isinstance(block.insts[0], Jump):
                trivial[block.label] = block.insts[0].target

        changed = False
        for block in func.blocks:
            term = block.terminator()
            if isinstance(term, Jump):
                final = _final_target(term.target, trivial)
                if final != term.target:
                    block.insts[-1] = Jump(final)
                    changed = True
            elif isinstance(term, CondBranch):
                final = _final_target(term.target, trivial)
                if final != term.target:
                    block.insts[-1] = CondBranch(term.relop, final)
                    changed = True

        if changed:
            # Remove code made unreachable by the retargeting.  The
            # cache must be dropped first: the retargeting above mutated
            # terminators in place.
            func.invalidate_analyses()
            cfg = cfg_of(func)
            reachable = cfg.reachable(func.entry.label)
            func.blocks = [
                block for block in func.blocks if block.label in reachable
            ]
            func.invalidate_analyses()
        return changed
