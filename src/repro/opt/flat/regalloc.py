"""Flat kernel for phase k — register allocation (slots -> registers)."""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.flat import flat_liveness_of, flat_slot_liveness_of
from repro.ir.flat import (
    DEF_MASK,
    DEF_RID,
    INST_OBJS,
    KIND,
    K_ASSIGN,
    K_STORE,
    REG_OBJS,
    FlatFunction,
    intern_inst,
)
from repro.ir.instructions import Assign
from repro.ir.operands import Mem, Reg
from repro.machine.target import ALLOCATABLE, Target
from repro.opt.flat.support import FlatKernel, HW_MASK

#: (load iid, hw index) -> ``dst = rX`` / (store iid, hw index) -> ``rX = src``
_LOAD_REWRITES: Dict[Tuple[int, int], int] = {}
_STORE_REWRITES: Dict[Tuple[int, int], int] = {}


def _load_rewrite(iid: int, hw_index: int) -> int:
    key = (iid, hw_index)
    result = _LOAD_REWRITES.get(key)
    if result is None:
        result = intern_inst(
            Assign(INST_OBJS[iid].dst, Reg(hw_index, pseudo=False))
        )
        _LOAD_REWRITES[key] = result
    return result


def _store_rewrite(iid: int, hw_index: int) -> int:
    key = (iid, hw_index)
    result = _STORE_REWRITES.get(key)
    if result is None:
        result = intern_inst(
            Assign(Reg(hw_index, pseudo=False), INST_OBJS[iid].src)
        )
        _STORE_REWRITES[key] = result
    return result


class RegisterAllocationKernel(FlatKernel):
    id = "k"
    requires_assignment = True

    def applicable(self, flat: FlatFunction) -> bool:
        return flat.sel_applied

    def run(self, flat: FlatFunction, target: Target) -> bool:
        slot_liveness = flat_slot_liveness_of(flat)
        frame_refs = slot_liveness.frame_refs
        if frame_refs.has_wild:
            return False  # an unresolved frame access may alias any slot

        referenced: Set[int] = set()
        for block_refs in frame_refs.refs:
            for ref in block_refs:
                referenced |= ref.reads
                referenced |= ref.writes
        candidates = sorted(referenced)
        if not candidates:
            return False

        liveness = flat_liveness_of(flat)
        forbidden, slot_edges = self._interference(
            flat, candidates, liveness, slot_liveness
        )
        coloring = self._color(candidates, forbidden, slot_edges)
        if not coloring:
            return False
        self._rewrite(flat, frame_refs, coloring)
        flat.invalidate_analyses()
        return True

    @staticmethod
    def _interference(flat, candidates, liveness, slot_liveness):
        candidate_set = set(candidates)
        forbidden: Dict[int, int] = {offset: 0 for offset in candidates}
        slot_edges: Dict[int, Set[int]] = {offset: set() for offset in candidates}

        frame_refs = slot_liveness.frame_refs
        for bi, block in enumerate(flat.blocks):
            # Block-boundary interference (covers live-through ranges in
            # blocks that never touch the slot).
            slots_in = slot_liveness.live_in[bi] & candidate_set
            if slots_in:
                regs_in = liveness.live_in[bi] & HW_MASK
                for offset in slots_in:
                    forbidden[offset] |= regs_in
                    for other in slots_in:
                        if other != offset:
                            slot_edges[offset].add(other)
            regs_after = liveness.live_after_each(bi)
            slots_after = slot_liveness.live_after_each(bi)
            refs = frame_refs.refs[bi]
            for i, iid in enumerate(block):
                # A written slot conflicts with everything live across
                # the instruction, exactly like a defined register (see
                # the object implementation for the rationale).
                live_slots = (slots_after[i] | refs[i].writes) & candidate_set
                if not live_slots:
                    continue
                hw_mask = (regs_after[i] | DEF_MASK[iid]) & HW_MASK
                for offset in live_slots:
                    forbidden[offset] |= hw_mask
                    for other in live_slots:
                        if other != offset:
                            slot_edges[offset].add(other)
        return forbidden, slot_edges

    @staticmethod
    def _color(candidates, forbidden, slot_edges) -> Dict[int, int]:
        coloring: Dict[int, int] = {}
        for offset in candidates:
            taken = forbidden[offset]
            for neighbor in slot_edges[offset]:
                assigned = coloring.get(neighbor)
                if assigned is not None:
                    taken |= 1 << assigned
            free = [c for c in ALLOCATABLE if not taken >> c & 1]
            if free:
                coloring[offset] = free[0]
        return coloring

    @staticmethod
    def _rewrite(flat: FlatFunction, frame_refs, coloring: Dict[int, int]) -> None:
        colored = set(coloring)
        for bi, block in enumerate(flat.blocks):
            refs = frame_refs.refs[bi]
            new_block: List[int] = []
            for iid, ref in zip(block, refs):
                replacement = iid
                kind = KIND[iid]
                is_assign = kind == K_ASSIGN or kind == K_STORE
                read_hits = ref.reads & colored
                write_hits = ref.writes & colored
                if (
                    read_hits
                    and is_assign
                    and isinstance(INST_OBJS[iid].src, Mem)
                ):
                    (offset,) = read_hits
                    replacement = _load_rewrite(iid, coloring[offset])
                elif write_hits and kind == K_STORE:
                    (offset,) = write_hits
                    replacement = _store_rewrite(iid, coloring[offset])
                new_block.append(replacement)
            flat.blocks[bi] = new_block
