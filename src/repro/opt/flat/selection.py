"""Flat kernel for phase s — instruction selection.

Combine results are pure pair facts: substituting def ``t = e`` into a
use instruction and folding depends only on the two interned
instructions, so the rewrite+fold is cached per (def id, use id) and
the legality verdict per (result id, target).  The scan that finds the
single combinable use runs on masks and cached textual counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import weakref

from repro.analysis.defuse import rewrite_uses
from repro.ir.flat import (
    DEF_MASK,
    DEF_RID,
    FLAGS,
    F_READS_MEM,
    F_WRITES_MEM,
    INST_OBJS,
    KIND,
    K_ASSIGN,
    K_CALL,
    K_RET,
    REG_OBJS,
    USE_MASK,
    FlatFunction,
    block_id,
    intern_inst,
)
from repro.analysis.flat import RV_RID, _cache_of
from repro.machine.target import Target
from repro.opt.flat.support import (
    FlatKernel,
    fold_iid,
    is_legal_iid,
    legal_cache,
    src_info,
    use_counts,
    SRC_COPY,
)

#: (def iid, use iid) -> folded combined iid, or -1 when the textual
#: rewrite leaves the use unchanged (the object pass skips the def).
_COMBINED: Dict[Tuple[int, int], int] = {}
_COMBINED_MAX = 1 << 18

#: iid -> True when the instruction is a no-op self move (rN = rN)
_SELF_MOVE: Dict[int, bool] = {}

#: per-target fold/self-move result per block: block id -> new tuple of
#: iids, or ``False`` when the block is already fully folded (pure in
#: the block content and target, like the LVN cache in ``cse``)
_FOLDED: "weakref.WeakKeyDictionary[Target, Dict[int, object]]" = (
    weakref.WeakKeyDictionary()
)
_FOLDED_MAX = 1 << 18
_MISSING = object()

#: per-target combine decision per (block id, use-count vector of the
#: block's defined registers): the single (def index, use index,
#: combined iid) action the pass would take, or ``None``.  The scan in
#: :meth:`InstructionSelectionKernel._combine_in_block` reads only the
#: block's own instructions plus the *total* textual use count of each
#: candidate register, so that pair fully determines the outcome.
_DECISIONS: "weakref.WeakKeyDictionary[Target, Dict[Tuple, object]]" = (
    weakref.WeakKeyDictionary()
)


def _target_cache(store, target: Target) -> Dict:
    cache = store.get(target)
    if cache is None:
        cache = {}
        store[target] = cache
    return cache


def _is_self_move(iid: int) -> bool:
    result = _SELF_MOVE.get(iid)
    if result is None:
        result = False
        if KIND[iid] == K_ASSIGN:
            cat, payload = src_info(iid)
            result = cat == SRC_COPY and payload == DEF_RID[iid]
        _SELF_MOVE[iid] = result
    return result


def _combined(def_iid: int, use_iid: int) -> int:
    key = (def_iid, use_iid)
    result = _COMBINED.get(key)
    if result is None:
        def_inst = INST_OBJS[def_iid]
        rewritten = rewrite_uses(
            INST_OBJS[use_iid], {def_inst.dst: def_inst.src}
        )
        if rewritten == INST_OBJS[use_iid]:
            result = -1
        else:
            result = fold_iid(intern_inst(rewritten))
        if len(_COMBINED) >= _COMBINED_MAX:
            _COMBINED.clear()
        _COMBINED[key] = result
    return result


def _count_in(iid: int, rid: int) -> int:
    for counted_rid, count in use_counts(iid):
        if counted_rid == rid:
            return count
    return 0


class InstructionSelectionKernel(FlatKernel):
    id = "s"

    def run(self, flat: FlatFunction, target: Target) -> bool:
        changed = False
        while self._pass(flat, target):
            changed = True
        return changed

    def _pass(self, flat: FlatFunction, target: Target) -> bool:
        # Standalone folding first (cheap, enables combinations), and
        # removal of no-op self-moves left behind by collapsed copies.
        legal = legal_cache(target)
        fold_cache = _target_cache(_FOLDED, target)
        folded_any = False
        for bi, block in enumerate(flat.blocks):
            bid = block_id(tuple(block))
            result = fold_cache.get(bid, _MISSING)
            if result is _MISSING:
                new_block = self._fold_block(block, target, legal)
                result = tuple(new_block) if new_block is not None else False
                if len(fold_cache) >= _FOLDED_MAX:
                    fold_cache.clear()
                fold_cache[bid] = result
            if result is not False:
                flat.blocks[bi] = list(result)
                folded_any = True
        if folded_any:
            flat.invalidate_analyses()

        counts = self._count_register_uses(flat)
        decisions = _target_cache(_DECISIONS, target)
        for block in flat.blocks:
            if self._combine_in_block(
                block, flat, target, legal, counts, decisions
            ):
                return True
        return folded_any

    @staticmethod
    def _fold_block(block, target: Target, legal) -> Optional[List[int]]:
        """Fold one block; the new instruction list, or None if unchanged."""
        kept = [iid for iid in block if not _is_self_move(iid)]
        changed = len(kept) != len(block)
        for i, iid in enumerate(kept):
            folded = fold_iid(iid)
            if folded != iid and is_legal_iid(folded, target, legal):
                kept[i] = folded
                changed = True
        return kept if changed else None

    @staticmethod
    def _count_register_uses(flat: FlatFunction) -> Dict[int, int]:
        """Textual use counts of every register, including implicit uses.

        A pure function of the content, so shared through the
        content-keyed analysis store like any other dataflow fact.
        """
        cache = _cache_of(flat)
        counts = cache.reg_use_counts
        if counts is None:
            counts = {}
            returns_value = flat.returns_value
            for block in flat.blocks:
                for iid in block:
                    for rid, count in use_counts(iid):
                        counts[rid] = counts.get(rid, 0) + count
                    if returns_value and KIND[iid] == K_RET:
                        counts[RV_RID] = counts.get(RV_RID, 0) + 1
            cache.reg_use_counts = counts
        return counts

    def _combine_in_block(
        self, block, flat, target, legal, counts, cache
    ) -> bool:
        # The scan reads only this block's instructions and each
        # candidate register's total use count, so the decision is
        # cached per (block id, use-count vector).
        counts_get = counts.get
        totals = tuple(
            counts_get(DEF_RID[iid], 0) for iid in block if DEF_RID[iid] >= 0
        )
        key = (block_id(tuple(block)), totals)
        action = cache.get(key, _MISSING)
        if action is _MISSING:
            action = self._find_combine_action(block, target, legal, counts)
            if len(cache) >= _FOLDED_MAX:
                cache.clear()
            cache[key] = action
        if action is None:
            return False
        i, j, combined = action
        block[j] = combined
        del block[i]
        flat.invalidate_analyses()
        return True

    def _find_combine_action(
        self, block, target, legal, counts
    ) -> Optional[Tuple[int, int, int]]:
        for i, iid in enumerate(block):
            t = DEF_RID[iid]
            if t < 0:
                continue
            if USE_MASK[iid] >> t & 1:
                continue  # t appears in its own defining expression
            total_uses = counts.get(t, 0)
            if total_uses == 0:
                continue
            j = self._find_combinable_use(block, i, t, iid, total_uses)
            if j is None:
                continue
            combined = _combined(iid, block[j])
            if combined < 0:
                continue
            if not is_legal_iid(combined, target, legal):
                continue
            return (i, j, combined)
        return None

    @staticmethod
    def _find_combinable_use(
        block, i: int, t: int, def_iid: int, total_uses: int
    ) -> Optional[int]:
        """Index of the single use of *t* that the def at *i* may merge into."""
        t_bit = 1 << t
        expr_regs = USE_MASK[def_iid]
        reads_mem = FLAGS[def_iid] & F_READS_MEM
        for j in range(i + 1, len(block)):
            candidate = block[j]
            if USE_MASK[candidate] & t_bit:
                kind = KIND[candidate]
                if kind == K_CALL or kind == K_RET:
                    return None  # implicit uses cannot absorb the def
                if _count_in(candidate, t) != total_uses:
                    return None  # used again elsewhere
                return j
            # Crossing this instruction: it must not disturb the
            # substituted expression's inputs.
            defs = DEF_MASK[candidate]
            if defs & t_bit:
                return None
            if defs & expr_regs:
                return None
            if reads_mem and (
                FLAGS[candidate] & F_WRITES_MEM or KIND[candidate] == K_CALL
            ):
                return None
        return None
