"""Flat phase kernels: the enumeration inner loop over interned ids.

Thirteen of the fifteen candidate phases have *kernels* — ports of the
object phase onto :class:`~repro.ir.flat.FlatFunction` that make
bit-identical decisions (same active/dormant verdict, same resulting
code) while operating on integer instruction ids and register
bitmasks.  The two loop-restructuring phases (g and l) transparently
round-trip through the object IR via :func:`repro.ir.flat.from_flat` /
:func:`~repro.ir.flat.to_flat`; porting them buys little because they
fire rarely and mutate heavily when they do.

:func:`attempt_phase_on_flat` is the flat mirror of
:func:`repro.opt.base.attempt_phase_on_clone` — at most one clone per
attempt, none for an illegal phase, dormant returns ``None`` with the
input untouched — including the implicit cleanup fixpoint and the
legality-flag updates, so a flat-engine DAG node carries exactly the
state its object-engine twin would.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.flat import flat_loops_of
from repro.ir.flat import FlatFunction, from_flat, to_flat
from repro.machine.target import DEFAULT_TARGET, Target
from repro.observability import tracer as _obs
from repro.opt.base import Phase, attempt_phase_on_clone
from repro.opt.flat.abstraction import CodeAbstractionKernel
from repro.opt.flat.assign import flat_assign_registers
from repro.opt.flat.cflow import (
    BlockReorderingKernel,
    BranchChainingKernel,
    RemoveUnreachableCodeKernel,
    RemoveUselessJumpsKernel,
    ReverseBranchesKernel,
)
from repro.opt.flat.cleanup import flat_implicit_cleanup
from repro.opt.flat.cse import CommonSubexpressionEliminationKernel
from repro.opt.flat.deadassign import DeadAssignmentEliminationKernel
from repro.opt.flat.evalorder import EvaluationOrderDeterminationKernel
from repro.opt.flat.loopjumps import MinimizeLoopJumpsKernel
from repro.opt.flat.regalloc import RegisterAllocationKernel
from repro.opt.flat.selection import InstructionSelectionKernel
from repro.opt.flat.strength import StrengthReductionKernel
from repro.opt.flat.support import FlatKernel, reset_support_caches

#: phase id -> kernel instance; phases absent here use the object fallback
FLAT_KERNELS: Dict[str, FlatKernel] = {
    kernel.id: kernel
    for kernel in (
        BranchChainingKernel(),
        CommonSubexpressionEliminationKernel(),
        RemoveUnreachableCodeKernel(),
        DeadAssignmentEliminationKernel(),
        BlockReorderingKernel(),
        MinimizeLoopJumpsKernel(),
        RegisterAllocationKernel(),
        CodeAbstractionKernel(),
        EvaluationOrderDeterminationKernel(),
        StrengthReductionKernel(),
        ReverseBranchesKernel(),
        InstructionSelectionKernel(),
        RemoveUselessJumpsKernel(),
    )
}


def _note_outcome(phase_id: str, active: bool) -> None:
    tr = _obs.ACTIVE
    if tr is not None:
        tr.phase_outcome(phase_id, "active" if active else "dormant")


def flat_cleanup_fixpoint(
    flat: FlatFunction, kernel: FlatKernel, target: Target
) -> None:
    """Implicit cleanup + re-run to a joint fixpoint (mirror of base)."""
    flat_implicit_cleanup(flat)
    for _ in range(100):
        if not kernel.run(flat, target):
            return
        flat_implicit_cleanup(flat)
    raise RuntimeError(
        f"{flat.name}: phase {kernel.id} did not reach a fixpoint with cleanup"
    )


def attempt_phase_on_flat(
    flat: FlatFunction,
    phase: Phase,
    target: Optional[Target] = None,
    view_cache: Optional[dict] = None,
) -> Optional[FlatFunction]:
    """Attempt *phase* on a clone of *flat*; ``None`` when dormant.

    *view_cache*, when given, is a per-node scratch dict the fallback
    path stores its materialized object view in, so a caller attempting
    several fallback phases on one node converts once.  The cached view
    is never mutated (``attempt_phase_on_clone`` works on a clone).
    """
    if target is None:
        target = DEFAULT_TARGET
    kernel = FLAT_KERNELS.get(phase.id)
    if kernel is None:
        # The fallback phases gate on legality flags only, which
        # FlatFunction carries — check before paying the conversion.
        if not phase.applicable(flat):
            _note_outcome(phase.id, False)
            return None
        # Both fallback phases (g, l) restructure natural loops; on a
        # loop-free function they are dormant without ever mutating, so
        # the (content-cached) flat loop analysis settles the verdict
        # before any object-IR view is materialized.
        if phase.id in ("g", "l") and not flat_loops_of(flat):
            _note_outcome(phase.id, False)
            return None
        func = view_cache.get("view") if view_cache is not None else None
        if func is None:
            func = from_flat(flat)
            if view_cache is not None:
                view_cache["view"] = func
        candidate = attempt_phase_on_clone(func, phase, target)
        return None if candidate is None else to_flat(candidate)

    if not kernel.applicable(flat):
        _note_outcome(phase.id, False)
        return None
    candidate = flat.clone()
    if kernel.requires_assignment and not candidate.reg_assigned:
        flat_assign_registers(candidate, target)
        candidate.reg_assigned = True
    if not kernel.run(candidate, target):
        _note_outcome(phase.id, False)
        return None
    flat_cleanup_fixpoint(candidate, kernel, target)
    if phase.id == "s":
        candidate.sel_applied = True
    elif phase.id == "k":
        candidate.alloc_applied = True
    _note_outcome(phase.id, True)
    return candidate


def reset_flat_kernel_caches() -> None:
    """Drop every module-level kernel cache (tests / leak hygiene)."""
    from repro.opt.flat import (
        cse,
        deadassign,
        evalorder,
        regalloc,
        selection,
        strength,
    )

    reset_support_caches()
    selection._COMBINED.clear()
    selection._SELF_MOVE.clear()
    selection._FOLDED.clear()
    selection._DECISIONS.clear()
    evalorder._SCHEDULES.clear()
    strength._EXPANSIONS.clear()
    strength._BLOCKS.clear()
    cse._COPIES.clear()
    cse._LVN.clear()
    deadassign._CC_FLAGS.clear()
    regalloc._LOAD_REWRITES.clear()
    regalloc._STORE_REWRITES.clear()
