"""Flat kernel for phase n — code abstraction (cross-jump + hoist).

Instruction equality is id equality under hash-consing, so the common
suffix scan and the hoist comparison are integer compares.
"""

from __future__ import annotations

from typing import List

from repro.analysis.flat import flat_cfg_of
from repro.ir.flat import (
    FLAGS,
    F_TRANSFER,
    KIND,
    K_COMPARE,
    K_CONDBR,
    FlatFunction,
)
from repro.machine.target import Target
from repro.opt.flat.support import FlatKernel, terminator_iid


def _body(block: List[int]) -> List[int]:
    term = terminator_iid(block)
    return block[:-1] if term >= 0 else list(block)


class CodeAbstractionKernel(FlatKernel):
    id = "n"

    def run(self, flat: FlatFunction, target: Target) -> bool:
        changed = False
        while self._cross_jump_once(flat) or self._hoist_once(flat):
            changed = True
        return changed

    # ------------------------------------------------------------------
    # Cross-jumping
    # ------------------------------------------------------------------

    def _cross_jump_once(self, flat: FlatFunction) -> bool:
        cfg = flat_cfg_of(flat)
        for bi in range(len(flat.blocks)):
            preds = cfg.preds[bi]
            if len(preds) < 2 or bi == 0:
                continue
            if bi in preds:
                continue
            if any(
                not self._unconditionally_reaches(flat, p, bi, cfg)
                for p in preds
            ):
                continue
            bodies = [_body(flat.blocks[p]) for p in preds]
            suffix_len = self._common_suffix_length(bodies)
            if suffix_len == 0:
                continue
            suffix = bodies[0][-suffix_len:]
            for p, body in zip(preds, bodies):
                term = terminator_iid(flat.blocks[p])
                keep = body[:-suffix_len]
                flat.blocks[p] = keep + ([term] if term >= 0 else [])
            flat.blocks[bi][0:0] = suffix
            flat.invalidate_analyses()
            return True
        return False

    @staticmethod
    def _unconditionally_reaches(flat, pred_bi: int, bi: int, cfg) -> bool:
        term = terminator_iid(flat.blocks[pred_bi])
        if term >= 0 and KIND[term] == K_CONDBR:
            return False
        return cfg.succs[pred_bi] == [bi]

    @staticmethod
    def _common_suffix_length(bodies: List[List[int]]) -> int:
        limit = min(len(body) for body in bodies)
        length = 0
        while length < limit:
            candidate = bodies[0][-(length + 1)]
            if FLAGS[candidate] & F_TRANSFER:
                break
            if all(body[-(length + 1)] == candidate for body in bodies[1:]):
                length += 1
            else:
                break
        return length

    # ------------------------------------------------------------------
    # Code hoisting
    # ------------------------------------------------------------------

    def _hoist_once(self, flat: FlatFunction) -> bool:
        cfg = flat_cfg_of(flat)
        for bi, block in enumerate(flat.blocks):
            term = terminator_iid(block)
            if term < 0 or KIND[term] != K_CONDBR:
                continue
            succs = cfg.succs[bi]
            if len(succs) != 2:
                continue
            taken_bi, fallthrough_bi = succs
            if cfg.preds[taken_bi] != [bi]:
                continue
            if cfg.preds[fallthrough_bi] != [bi]:
                continue
            taken = flat.blocks[taken_bi]
            fallthrough = flat.blocks[fallthrough_bi]
            hoisted = False
            while taken and fallthrough:
                first = taken[0]
                if first != fallthrough[0]:
                    break
                if FLAGS[first] & F_TRANSFER or KIND[first] == K_COMPARE:
                    break
                # Insert just before the conditional branch: the branch
                # reads the already-computed condition code.
                block.insert(len(block) - 1, first)
                taken.pop(0)
                fallthrough.pop(0)
                hoisted = True
            if hoisted:
                flat.invalidate_analyses()
                return True
        return False
