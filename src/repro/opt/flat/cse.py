"""Flat kernel for phase c — common subexpression elimination.

The hottest phase of the enumeration (nearly a third of cold expansion
time in the object engine).  The three cooperating parts of
:mod:`repro.opt.cse` are mirrored over register-id masks: the local
value table keys constants/copies by rid and expression holders by the
interned source expression; global propagation and CSE use the flat
dominator tree over block indices.  Rewrites, legalization, and slot
classification all go through the shared per-instruction caches, so
each distinct (instruction, substitution) pair is built once per
process rather than once per attempt.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import weakref

from repro.analysis.flat import (
    flat_cfg_of,
    flat_dominators_of,
    flat_single_defs_of,
)
from repro.ir.flat import (
    DEF_MASK,
    DEF_RID,
    FLAGS,
    F_READS_MEM,
    KIND,
    K_ASSIGN,
    K_CALL,
    K_STORE,
    REG_OBJS,
    USE_MASK,
    FlatFunction,
    block_id,
    intern_inst,
    iter_rids,
)
from repro.ir.instructions import Assign
from repro.ir.operands import Expr, Reg
from repro.machine.target import Target
from repro.opt.flat.support import (
    FP_BIT,
    FP_RID,
    FlatKernel,
    SRC_CONST,
    SRC_COPY,
    SRC_EXPR,
    SRC_LOAD,
    expr_mem_slots,
    legalize_iid,
    rewrite_uses_iid,
    src_info,
    store_slot,
)

#: (dst rid, src rid) -> interned ``dst = src`` copy instruction
_COPIES: Dict[Tuple[int, int], int] = {}


def _copy_iid(dst_rid: int, src_rid: int) -> int:
    key = (dst_rid, src_rid)
    iid = _COPIES.get(key)
    if iid is None:
        iid = intern_inst(Assign(REG_OBJS[dst_rid], REG_OBJS[src_rid]))
        _COPIES[key] = iid
    return iid


#: per-target cache of whole-block local value numbering: the table
#: starts empty at each block head, so the outcome is a pure function
#: of (block content, target) — ``False`` marks an unchanged block
_LVN: "weakref.WeakKeyDictionary[Target, Dict[int, object]]" = (
    weakref.WeakKeyDictionary()
)
_LVN_MAX = 1 << 18
_MISSING = object()


def _lvn_cache(target: Target) -> Dict[int, object]:
    cache = _LVN.get(target)
    if cache is None:
        cache = {}
        _LVN[target] = cache
    return cache


class _ValueTable:
    """Running value state for local value numbering (rid-keyed)."""

    __slots__ = ("const_of", "copy_of", "holder_of", "holder_mask")

    def __init__(self):
        self.const_of: Dict[int, Expr] = {}
        self.copy_of: Dict[int, int] = {}
        self.holder_of: Dict[Expr, int] = {}
        self.holder_mask: Dict[Expr, int] = {}

    def substitution(self, iid: int) -> Tuple:
        pairs: List = []
        for rid in iter_rids(USE_MASK[iid]):
            constant = self.const_of.get(rid)
            if constant is not None:
                pairs.append((rid, constant))
                continue
            origin = self.copy_of.get(rid)
            if origin is not None:
                pairs.append((rid, REG_OBJS[origin]))
        return tuple(pairs)

    def invalidate(self, rid: int) -> None:
        self.const_of.pop(rid, None)
        self.copy_of.pop(rid, None)
        copy_of = self.copy_of
        for key in [k for k, origin in copy_of.items() if origin == rid]:
            del copy_of[key]
        holder_of = self.holder_of
        holder_mask = self.holder_mask
        for expr in [
            e
            for e, holder in holder_of.items()
            if holder == rid or holder_mask[e] >> rid & 1
        ]:
            del holder_of[expr]
            del holder_mask[expr]

    def invalidate_memory(self, slot: Optional[int]) -> None:
        """A store (to *slot*, when literal) or call happened."""
        doomed = []
        for expr in self.holder_of:
            mem_slots = expr_mem_slots(expr)
            if mem_slots is None:
                continue
            if slot is not None and all(
                s not in (None, slot) for s in mem_slots
            ):
                continue  # distinct known slots cannot alias
            doomed.append(expr)
        for expr in doomed:
            del self.holder_of[expr]
            del self.holder_mask[expr]

    def record(self, iid: int) -> None:
        dst = DEF_RID[iid]
        if dst < 0:
            for rid in iter_rids(DEF_MASK[iid]):  # calls clobber regs
                self.invalidate(rid)
            return
        self.invalidate(dst)
        cat, payload = src_info(iid)
        if cat == SRC_CONST:
            self.const_of[dst] = payload
        elif cat == SRC_COPY:
            if payload != dst:
                self.copy_of[dst] = self.copy_of.get(payload, payload)
        elif not USE_MASK[iid] >> dst & 1:
            # A self-referencing RTL (r1 = r1 + 4) computes a value the
            # expression text no longer denotes; never table it.
            if payload not in self.holder_of:
                self.holder_of[payload] = dst
                self.holder_mask[payload] = USE_MASK[iid]


class CommonSubexpressionEliminationKernel(FlatKernel):
    id = "c"
    requires_assignment = True

    def run(self, flat: FlatFunction, target: Target) -> bool:
        changed = False
        while True:
            step = self._local_value_numbering(flat, target)
            step |= self._global_propagation(flat, target)
            step |= self._global_cse(flat, target)
            if not step:
                return changed
            changed = True

    # ------------------------------------------------------------------
    # Part 1: local value numbering
    # ------------------------------------------------------------------

    def _local_value_numbering(self, flat: FlatFunction, target: Target) -> bool:
        changed = False
        cache = _lvn_cache(target)
        for bi, block in enumerate(flat.blocks):
            bid = block_id(tuple(block))
            result = cache.get(bid, _MISSING)
            if result is _MISSING:
                new_block = self._lvn_block(block, target)
                result = tuple(new_block) if new_block is not None else False
                if len(cache) >= _LVN_MAX:
                    cache.clear()
                cache[bid] = result
            if result is not False:
                flat.blocks[bi] = list(result)
                changed = True
        if changed:
            flat.invalidate_analyses()
        return changed

    @staticmethod
    def _lvn_block(block, target: Target):
        """LVN one block; the new instruction list, or None if unchanged."""
        block = list(block)
        changed = False
        table = _ValueTable()
        for i in range(len(block)):
            iid = block[i]
            pairs = table.substitution(iid)
            if pairs:
                rewritten = rewrite_uses_iid(iid, pairs)
                if rewritten != iid:
                    legal = legalize_iid(rewritten, target)
                    if legal < 0:
                        # Try copies only (constants may be the
                        # illegal part).
                        copy_pairs = tuple(
                            (rid, value)
                            for rid, value in pairs
                            if isinstance(value, Reg)
                        )
                        if copy_pairs:
                            rewritten = rewrite_uses_iid(iid, copy_pairs)
                            legal = legalize_iid(rewritten, target)
                    if legal >= 0 and legal != iid:
                        block[i] = legal
                        iid = legal
                        changed = True
            # Redundant computation -> copy from the holder.
            dst = DEF_RID[iid]
            if dst >= 0:
                cat, src = src_info(iid)
                if cat == SRC_EXPR or cat == SRC_LOAD:
                    holder = table.holder_of.get(src)
                    if holder is not None and holder != dst:
                        replacement = _copy_iid(dst, holder)
                        block[i] = replacement
                        iid = replacement
                        changed = True
            # Effects on the table.
            kind = KIND[iid]
            if kind == K_CALL:
                table.invalidate_memory(None)
            elif kind == K_STORE:
                table.invalidate_memory(store_slot(iid))
            table.record(iid)
        return block if changed else None

    # ------------------------------------------------------------------
    # Part 2: global constant / copy propagation (single-def registers)
    # ------------------------------------------------------------------

    def _global_propagation(self, flat: FlatFunction, target: Target) -> bool:
        single_defs = flat_single_defs_of(flat)
        values: Dict[int, Expr] = {}
        for rid, iid in single_defs.items():
            cat, payload = src_info(iid)
            if cat == SRC_CONST:
                values[rid] = payload
            elif cat == SRC_COPY:
                if payload in single_defs or payload == FP_RID:
                    values[rid] = REG_OBJS[payload]
        if not values:
            return False
        return self._replace_dominated_uses(flat, target, values)

    # ------------------------------------------------------------------
    # Part 3: global CSE over single-def registers
    # ------------------------------------------------------------------

    def _global_cse(self, flat: FlatFunction, target: Target) -> bool:
        single_defs = flat_single_defs_of(flat)
        single_mask = 0
        for rid in single_defs:
            single_mask |= 1 << rid

        # Every candidate is a single-def register, so the existence of
        # a redundant pair is decidable from the def table alone: bail
        # before the whole-function scan unless two stable candidates
        # compute the same expression.
        sources: Dict[Expr, int] = {}
        duplicated = False
        for rid, iid in single_defs.items():
            cat, src = src_info(iid)
            if cat != SRC_EXPR:
                continue
            if FLAGS[iid] & F_READS_MEM:
                continue
            if USE_MASK[iid] & ~(single_mask | FP_BIT):
                continue
            if USE_MASK[iid] >> rid & 1:
                continue
            if src in sources:
                duplicated = True
                break
            sources[src] = rid
        if not duplicated:
            return False

        cfg = flat_cfg_of(flat)
        dom = flat_dominators_of(flat)
        reachable = set(dom.idom)
        position: Dict[int, Tuple[int, int]] = {}
        for bi, block in enumerate(flat.blocks):
            for i, iid in enumerate(block):
                dst = DEF_RID[iid]
                if dst >= 0 and dst in single_defs:
                    position[dst] = (bi, i)

        first_holder: Dict[Expr, int] = {}
        changed = False
        # Visit in a dominance-compatible order: reverse postorder.
        for bi in cfg.reverse_postorder(0):
            block = flat.blocks[bi]
            for i in range(len(block)):
                iid = block[i]
                dst = DEF_RID[iid]
                if dst < 0 or dst not in single_defs:
                    continue
                cat, src = src_info(iid)
                if cat != SRC_EXPR:
                    continue  # BinOp/UnOp/Sym sources only, never loads
                # stable: no memory reads, operands single-def or fp
                if FLAGS[iid] & F_READS_MEM:
                    continue
                if USE_MASK[iid] & ~(single_mask | FP_BIT):
                    continue
                if USE_MASK[iid] >> dst & 1:
                    continue  # self-referencing RTL: text != value
                holder = first_holder.get(src)
                if holder is None:
                    first_holder[src] = dst
                    continue
                holder_bi, holder_index = position[holder]
                dominated = (holder_bi == bi and holder_index < i) or (
                    holder_bi != bi
                    and holder_bi in reachable
                    and bi in reachable
                    and dom.strictly_dominates(holder_bi, bi)
                )
                if dominated and holder != dst:
                    block[i] = _copy_iid(dst, holder)
                    changed = True
        if changed:
            flat.invalidate_analyses()
        return changed

    # ------------------------------------------------------------------

    def _replace_dominated_uses(
        self, flat: FlatFunction, target: Target, values: Dict[int, Expr]
    ) -> bool:
        dom = flat_dominators_of(flat)
        reachable = set(dom.idom)
        position: Dict[int, Tuple[int, int]] = {}
        for bi, block in enumerate(flat.blocks):
            for i, iid in enumerate(block):
                dst = DEF_RID[iid]
                if dst >= 0 and dst in values:
                    position[dst] = (bi, i)
        values_mask = 0
        for rid in values:
            values_mask |= 1 << rid

        changed = False
        for bi, block in enumerate(flat.blocks):
            if bi not in reachable:
                continue
            for i in range(len(block)):
                iid = block[i]
                used = USE_MASK[iid] & values_mask
                if not used:
                    continue
                pairs: List = []
                for rid in iter_rids(used):
                    pos = position.get(rid)
                    if pos is None:
                        continue
                    def_bi, def_index = pos
                    if def_bi == bi:
                        if def_index >= i:
                            continue
                    elif not dom.strictly_dominates(def_bi, bi):
                        continue
                    pairs.append((rid, values[rid]))
                if not pairs:
                    continue
                pairs = tuple(pairs)
                rewritten = rewrite_uses_iid(iid, pairs)
                if rewritten == iid:
                    continue
                legal = legalize_iid(rewritten, target)
                if legal < 0:
                    copy_pairs = tuple(
                        (rid, value)
                        for rid, value in pairs
                        if isinstance(value, Reg)
                    )
                    if not copy_pairs:
                        continue
                    rewritten = rewrite_uses_iid(iid, copy_pairs)
                    legal = legalize_iid(rewritten, target)
                if legal >= 0 and legal != iid:
                    block[i] = legal
                    changed = True
        if changed:
            flat.invalidate_analyses()
        return changed
