"""Flat kernel for phase j — minimize loop jumps (loop inversion).

Latches are visited in the lexicographic order of their *label
strings*, matching the object phase's ``sorted(loop.latches)`` over
labels, so both engines invert the same latch first.
"""

from __future__ import annotations

from typing import List

from repro.analysis.flat import flat_loops_of
from repro.ir.flat import (
    FLAGS,
    F_TRANSFER,
    KIND,
    K_CONDBR,
    K_JUMP,
    LABEL_STRS,
    RELOP,
    TARGET_LID,
    FlatFunction,
)
from repro.ir.instructions import INVERTED_RELOP
from repro.machine.target import Target
from repro.opt.flat.support import FlatKernel, condbr_iid, jump_iid, terminator_iid
from repro.opt.loop_jumps import MAX_DUPLICATED_INSTS


class MinimizeLoopJumpsKernel(FlatKernel):
    id = "j"

    def run(self, flat: FlatFunction, target: Target) -> bool:
        changed = False
        while self._apply_once(flat):
            changed = True
        return changed

    def _apply_once(self, flat: FlatFunction) -> bool:
        for loop in flat_loops_of(flat):
            header_bi = loop.header
            header = flat.blocks[header_bi]
            term = terminator_iid(header)
            if term < 0 or KIND[term] != K_CONDBR:
                continue
            if len(header) - 1 > MAX_DUPLICATED_INSTS:
                continue
            if header_bi + 1 >= len(flat.blocks):
                continue
            fallthrough_lid = flat.labels[header_bi + 1]
            target_lid = TARGET_LID[term]
            if fallthrough_lid == target_lid:
                continue
            # Classify the header's two edges.
            target_bi = flat.block_index(target_lid)
            in_target = target_bi in loop.body
            in_fallthrough = header_bi + 1 in loop.body
            if in_target and not in_fallthrough:
                stay_relop, stay_lid, exit_lid = (
                    RELOP[term],
                    target_lid,
                    fallthrough_lid,
                )
            elif not in_target and in_fallthrough:
                stay_relop, stay_lid, exit_lid = (
                    INVERTED_RELOP[RELOP[term]],
                    fallthrough_lid,
                    target_lid,
                )
            else:
                continue
            header_lid = flat.labels[header_bi]
            for latch_bi in sorted(
                loop.latches, key=lambda bi: LABEL_STRS[flat.labels[bi]]
            ):
                if latch_bi == header_bi:
                    continue
                latch = flat.blocks[latch_bi]
                latch_term = terminator_iid(latch)
                if latch_term < 0 or KIND[latch_term] != K_JUMP:
                    continue
                if TARGET_LID[latch_term] != header_lid:
                    continue
                self._invert(
                    flat, latch_bi, header, stay_relop, stay_lid, exit_lid
                )
                return True
        return False

    @staticmethod
    def _invert(
        flat: FlatFunction,
        latch_bi: int,
        header: List[int],
        stay_relop: str,
        stay_lid: int,
        exit_lid: int,
    ) -> None:
        latch = flat.blocks[latch_bi]
        latch.pop()
        latch.extend(header[:-1])  # duplicated header test
        latch.append(condbr_iid(stay_relop, stay_lid))
        # The latch's fallthrough must now reach the loop exit.
        needs_thunk = (
            latch_bi + 1 >= len(flat.blocks)
            or flat.labels[latch_bi + 1] != exit_lid
        )
        if needs_thunk:
            thunk_lid = flat.new_lid()
            flat.labels.insert(latch_bi + 1, thunk_lid)
            flat.blocks.insert(latch_bi + 1, [jump_iid(exit_lid)])
        flat.invalidate_analyses()
