"""Shared per-instruction caches for the flat phase kernels.

Every helper here is a pure function of interned instruction ids (plus
a target for legality questions), so results are cached globally and
amortize across the whole enumeration: the same few thousand distinct
instructions recur across millions of phase attempts, and rewriting,
folding, legalizing, or classifying each one is paid once.

Cache keys never include :class:`FlatFunction` state — anything
function-dependent (liveness, dominators, frame layout) stays in
:mod:`repro.analysis.flat` or in the kernel itself.  Pair-keyed caches
are capped and cleared wholesale on overflow; they refill in one pass.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from repro.analysis.defuse import rewrite_registers, rewrite_uses
from repro.ir.flat import (
    DEF_MASK,
    DEF_RID,
    FLAGS,
    F_TRANSFER,
    INST_OBJS,
    KIND,
    K_ASSIGN,
    K_CALL,
    K_COMPARE,
    K_STORE,
    NUM_SEEDED_HW,
    REG_OBJS,
    USE_MASK,
    intern_inst,
    iter_rids,
    reg_id,
)
from repro.ir.instructions import Assign, Call, Compare, CondBranch, Jump
from repro.ir.operands import Const, Expr, Mem, Reg
from repro.machine.target import ALLOCATABLE, FP, Target
from repro.opt.cse import _legalize, _literal_slot_offset
from repro.opt.instruction_selection import _fold_instruction

HW_MASK = (1 << NUM_SEEDED_HW) - 1
#: AND with this to keep only pseudo-register bits (rid >= NUM_SEEDED_HW)
PSEUDO_CLEAR = ~HW_MASK
ALLOC_MASK = 0
for _c in ALLOCATABLE:
    ALLOC_MASK |= 1 << _c
FP_RID = reg_id(FP)
FP_BIT = 1 << FP_RID

_CACHE_MAX = 1 << 18


class FlatKernel:
    """Base class for a flat port of one candidate phase."""

    id: str = "?"
    requires_assignment: bool = False

    def applicable(self, flat) -> bool:
        return True

    def run(self, flat, target: Target) -> bool:
        raise NotImplementedError

    def __repr__(self):
        return f"<FlatKernel {self.id}>"


def terminator_iid(block: List[int]) -> int:
    """The block's terminator instruction id, or -1 (mirrors
    ``BasicBlock.terminator()`` returning None)."""
    if block and FLAGS[block[-1]] & F_TRANSFER:
        return block[-1]
    return -1


# ----------------------------------------------------------------------
# Interned branch constructors
# ----------------------------------------------------------------------

_JUMPS: Dict[int, int] = {}
_CONDBRS: Dict[Tuple[str, int], int] = {}


def jump_iid(lid: int) -> int:
    iid = _JUMPS.get(lid)
    if iid is None:
        from repro.ir.flat import LABEL_STRS

        iid = intern_inst(Jump(LABEL_STRS[lid]))
        _JUMPS[lid] = iid
    return iid


def condbr_iid(relop: str, lid: int) -> int:
    key = (relop, lid)
    iid = _CONDBRS.get(key)
    if iid is None:
        from repro.ir.flat import LABEL_STRS

        iid = intern_inst(CondBranch(relop, LABEL_STRS[lid]))
        _CONDBRS[key] = iid
    return iid


# ----------------------------------------------------------------------
# Legality and legalization (per target)
# ----------------------------------------------------------------------

_LEGAL: "weakref.WeakKeyDictionary[Target, Dict[int, bool]]" = (
    weakref.WeakKeyDictionary()
)
_LEGALIZE: "weakref.WeakKeyDictionary[Target, Dict[int, int]]" = (
    weakref.WeakKeyDictionary()
)


def legal_cache(target: Target) -> Dict[int, bool]:
    cache = _LEGAL.get(target)
    if cache is None:
        cache = {}
        _LEGAL[target] = cache
    return cache


def is_legal_iid(iid: int, target: Target, cache: Optional[Dict[int, bool]] = None) -> bool:
    if cache is None:
        cache = legal_cache(target)
    legal = cache.get(iid)
    if legal is None:
        legal = target.is_legal(INST_OBJS[iid])
        cache[iid] = legal
    return legal


def legalize_iid(iid: int, target: Target) -> int:
    """``cse._legalize`` over ids: a legal variant's id, or -1."""
    cache = _LEGALIZE.get(target)
    if cache is None:
        cache = {}
        _LEGALIZE[target] = cache
    result = cache.get(iid)
    if result is None:
        legal = _legalize(INST_OBJS[iid], target)
        result = intern_inst(legal) if legal is not None else -1
        cache[iid] = result
    return result


# ----------------------------------------------------------------------
# Rewriting and folding
# ----------------------------------------------------------------------

_REWRITE_USES: Dict[Tuple, int] = {}
_REWRITE_REGS: Dict[Tuple, int] = {}
_FOLD: Dict[int, int] = {}


def rewrite_uses_iid(iid: int, pairs: Tuple) -> int:
    """``rewrite_uses`` over ids; *pairs* is ((rid, expr), ...)."""
    key = (iid, pairs)
    result = _REWRITE_USES.get(key)
    if result is None:
        mapping = {REG_OBJS[rid]: expr for rid, expr in pairs}
        result = intern_inst(rewrite_uses(INST_OBJS[iid], mapping))
        if len(_REWRITE_USES) >= _CACHE_MAX:
            _REWRITE_USES.clear()
        _REWRITE_USES[key] = result
    return result


def rewrite_regs_iid(iid: int, pairs: Tuple) -> int:
    """``rewrite_registers`` over ids; *pairs* is ((rid, hw_index), ...)."""
    if not pairs:
        return iid
    key = (iid, pairs)
    result = _REWRITE_REGS.get(key)
    if result is None:
        mapping = {
            REG_OBJS[rid]: Reg(index, pseudo=False) for rid, index in pairs
        }
        result = intern_inst(rewrite_registers(INST_OBJS[iid], mapping))
        if len(_REWRITE_REGS) >= _CACHE_MAX:
            _REWRITE_REGS.clear()
        _REWRITE_REGS[key] = result
    return result


def fold_iid(iid: int) -> int:
    """``instruction_selection._fold_instruction`` over ids."""
    result = _FOLD.get(iid)
    if result is None:
        result = intern_inst(_fold_instruction(INST_OBJS[iid]))
        _FOLD[iid] = result
    return result


# ----------------------------------------------------------------------
# Source classification (Assign-to-register payloads)
# ----------------------------------------------------------------------

SRC_NONE = 0  # not a register assignment
SRC_CONST = 1  # dst = Const        (payload: the Const)
SRC_COPY = 2  # dst = Reg          (payload: the source rid)
SRC_EXPR = 3  # dst = BinOp/UnOp/Sym (payload: the expression)
SRC_LOAD = 4  # dst = Mem          (payload: the Mem expression)

_SRC_INFO: Dict[int, Tuple[int, object]] = {}


def src_info(iid: int) -> Tuple[int, object]:
    info = _SRC_INFO.get(iid)
    if info is None:
        if KIND[iid] != K_ASSIGN:
            info = (SRC_NONE, None)
        else:
            src = INST_OBJS[iid].src
            if isinstance(src, Const):
                info = (SRC_CONST, src)
            elif isinstance(src, Reg):
                info = (SRC_COPY, reg_id(src))
            elif isinstance(src, Mem):
                info = (SRC_LOAD, src)
            else:
                info = (SRC_EXPR, src)
        _SRC_INFO[iid] = info
    return info


# ----------------------------------------------------------------------
# Memory shape facts
# ----------------------------------------------------------------------

#: store iid -> literal fp-relative slot offset or None
_STORE_SLOT: Dict[int, Optional[int]] = {}
#: expression -> None (no memory) or tuple of per-Mem literal offsets
_EXPR_MEM_SLOTS: Dict[Expr, Optional[Tuple]] = {}


def store_slot(iid: int) -> Optional[int]:
    """``cse._literal_slot_offset`` of a store's destination."""
    if iid in _STORE_SLOT:
        return _STORE_SLOT[iid]
    slot = _literal_slot_offset(INST_OBJS[iid].dst)
    _STORE_SLOT[iid] = slot
    return slot


def expr_mem_slots(expr: Expr) -> Optional[Tuple]:
    """Literal slot offsets of every Mem in *expr*; None when memory-free."""
    if expr in _EXPR_MEM_SLOTS:
        return _EXPR_MEM_SLOTS[expr]
    mems = [node for node in expr.walk() if isinstance(node, Mem)]
    slots = tuple(_literal_slot_offset(mem) for mem in mems) if mems else None
    if len(_EXPR_MEM_SLOTS) >= _CACHE_MAX:
        _EXPR_MEM_SLOTS.clear()
    _EXPR_MEM_SLOTS[expr] = slots
    return slots


# ----------------------------------------------------------------------
# Textual register use counts (instruction selection)
# ----------------------------------------------------------------------

#: iid -> ((rid, textual use count), ...)
_USE_COUNTS: Dict[int, Tuple] = {}


def use_counts(iid: int) -> Tuple:
    counts = _USE_COUNTS.get(iid)
    if counts is not None:
        return counts
    inst = INST_OBJS[iid]
    tally: Dict[int, int] = {}

    def scan(expr: Expr) -> None:
        for node in expr.walk():
            if isinstance(node, Reg):
                rid = reg_id(node)
                tally[rid] = tally.get(rid, 0) + 1

    if isinstance(inst, Assign):
        scan(inst.src)
        if isinstance(inst.dst, Mem):
            scan(inst.dst.addr)
    elif isinstance(inst, Compare):
        scan(inst.left)
        scan(inst.right)
    elif isinstance(inst, Call):
        for reg in inst.uses():
            rid = reg_id(reg)
            tally[rid] = tally.get(rid, 0) + 1
    counts = tuple(sorted(tally.items()))
    _USE_COUNTS[iid] = counts
    return counts


def reset_support_caches() -> None:
    """Drop every derived cache (tests / long-lived worker recycling)."""
    _JUMPS.clear()
    _CONDBRS.clear()
    _REWRITE_USES.clear()
    _REWRITE_REGS.clear()
    _FOLD.clear()
    _SRC_INFO.clear()
    _STORE_SLOT.clear()
    _EXPR_MEM_SLOTS.clear()
    _USE_COUNTS.clear()
    for cache in list(_LEGAL.values()):
        cache.clear()
    for cache in list(_LEGALIZE.values()):
        cache.clear()
