"""Flat kernel for phase h — dead assignment elimination."""

from __future__ import annotations

from typing import List

from typing import Dict

from repro.analysis.flat import flat_liveness_of, flat_slot_liveness_of
from repro.ir.flat import (
    DEF_RID,
    KIND,
    K_ASSIGN,
    K_COMPARE,
    K_CONDBR,
    K_STORE,
    FlatFunction,
    block_id,
)
from repro.machine.target import Target
from repro.opt.flat.support import FlatKernel

#: block id -> per-instruction "condition code read later" flags
#: (purely local to the block)
_CC_FLAGS: Dict[int, List[bool]] = {}
_CC_FLAGS_MAX = 1 << 18


class DeadAssignmentEliminationKernel(FlatKernel):
    id = "h"

    def run(self, flat: FlatFunction, target: Target) -> bool:
        changed = False
        while self._sweep(flat):
            changed = True
        return changed

    def _sweep(self, flat: FlatFunction) -> bool:
        liveness = flat_liveness_of(flat)
        slot_liveness = flat_slot_liveness_of(flat)
        frame_refs = slot_liveness.frame_refs
        removed = False
        for bi, block in enumerate(flat.blocks):
            live_after = liveness.live_after_each(bi)
            slots_after = slot_liveness.live_after_each(bi)
            refs = frame_refs.refs[bi]
            cc_read_later = self._cc_read_flags(block)
            # Detection first, without building a replacement list —
            # on most sweeps most blocks have nothing to remove.
            first_dead = -1
            for i, iid in enumerate(block):
                kind = KIND[iid]
                if kind == K_COMPARE:
                    if not cc_read_later[i]:
                        first_dead = i
                        break
                elif kind == K_ASSIGN:
                    if not live_after[i] >> DEF_RID[iid] & 1:
                        first_dead = i
                        break
                elif kind == K_STORE:
                    ref = refs[i]
                    if (
                        not ref.wild_write
                        and len(ref.writes) == 1
                        and not (set(ref.writes) & slots_after[i])
                    ):
                        first_dead = i
                        break
            if first_dead < 0:
                continue
            removed = True
            kept: List[int] = block[:first_dead]
            for i in range(first_dead + 1, len(block)):
                iid = block[i]
                kind = KIND[iid]
                if kind == K_COMPARE and not cc_read_later[i]:
                    continue
                if kind == K_ASSIGN:
                    if not live_after[i] >> DEF_RID[iid] & 1:
                        continue
                elif kind == K_STORE:
                    ref = refs[i]
                    if (
                        not ref.wild_write
                        and len(ref.writes) == 1
                        and not (set(ref.writes) & slots_after[i])
                    ):
                        continue
                kept.append(iid)
            flat.blocks[bi] = kept
            flat.invalidate_analyses()
        return removed

    @staticmethod
    def _cc_read_flags(block: List[int]) -> List[bool]:
        """For each instruction, is the condition code it sets read later?"""
        bid = block_id(tuple(block))
        flags = _CC_FLAGS.get(bid)
        if flags is not None:
            return flags
        flags = [False] * len(block)
        needed = False
        for i in range(len(block) - 1, -1, -1):
            kind = KIND[block[i]]
            if kind == K_CONDBR:
                needed = True
            elif kind == K_COMPARE:
                flags[i] = needed
                needed = False
        if len(_CC_FLAGS) >= _CC_FLAGS_MAX:
            _CC_FLAGS.clear()
        _CC_FLAGS[bid] = flags
        return flags
