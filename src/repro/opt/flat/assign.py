"""Flat mirror of the compulsory register assignment.

Identical Chaitin-Briggs coloring to
:mod:`repro.opt.register_assignment` — same interference edges, same
simplify order, same tie-breaks, same spill fallback — computed over
register-id bitmasks instead of object sets, so the result (and hence
the fingerprint of everything downstream) is bit-identical.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.defuse import rewrite_uses
from repro.analysis.flat import flat_liveness_of
from repro.ir.flat import (
    DEF_MASK,
    INST_OBJS,
    NUM_SEEDED_HW,
    REG_OBJS,
    USE_MASK,
    FlatFunction,
    intern_inst,
    iter_rids,
)
from repro.ir.function import LocalSlot
from repro.ir.instructions import Assign
from repro.ir.operands import BinOp, Const, Mem
from repro.machine.target import ALLOCATABLE, FP, Target
from repro.opt.flat.support import ALLOC_MASK, HW_MASK, PSEUDO_CLEAR, rewrite_regs_iid

_MAX_SPILL_ROUNDS = 25


def flat_assign_registers(flat: FlatFunction, target: Target) -> None:
    """Replace every pseudo register in *flat* with a hardware register."""
    for _ in range(_MAX_SPILL_ROUNDS):
        coloring, spilled = _try_color(flat)
        if not spilled:
            _rewrite(flat, coloring)
            flat.reg_assigned = True
            return
        for pseudo in spilled:
            _spill(flat, pseudo)
    raise RuntimeError(f"{flat.name}: register assignment did not converge")


def _try_color(flat: FlatFunction) -> Tuple[Dict[int, int], List[int]]:
    """One coloring attempt: (pseudo rid -> hw index, rids to spill)."""
    all_regs = 0
    for block in flat.blocks:
        for iid in block:
            all_regs |= DEF_MASK[iid] | USE_MASK[iid]
    pseudos = list(iter_rids(all_regs & PSEUDO_CLEAR))

    interference: Dict[int, int] = {p: 0 for p in pseudos}
    forbidden: Dict[int, int] = {p: 0 for p in pseudos}

    liveness = flat_liveness_of(flat)
    for bi, block in enumerate(flat.blocks):
        live_after = liveness.live_after_each(bi)
        for i, iid in enumerate(block):
            def_mask = DEF_MASK[iid]
            if not def_mask:
                continue
            live = live_after[i]
            for defined in iter_rids(def_mask):
                others = live & ~(1 << defined)
                if defined >= NUM_SEEDED_HW:
                    pseudo_others = others & PSEUDO_CLEAR
                    interference[defined] |= pseudo_others
                    forbidden[defined] |= others & HW_MASK
                    bit = 1 << defined
                    for other in iter_rids(pseudo_others):
                        interference[other] |= bit
                else:
                    bit = 1 << defined
                    for other in iter_rids(others & PSEUDO_CLEAR):
                        forbidden[other] |= bit

    # Chaitin-Briggs simplify/select with optimistic spilling, ordered
    # by the pseudo's own numeric index exactly as the object engine.
    colors = list(ALLOCATABLE)
    k = len(colors)
    index_of = {p: REG_OBJS[p].index for p in pseudos}
    degree = {
        p: interference[p].bit_count() + forbidden[p].bit_count() for p in pseudos
    }
    stack: List[int] = []
    remaining = set(pseudos)
    removed: set = set()
    while remaining:
        candidates = sorted(
            (p for p in remaining if degree[p] < k), key=lambda p: index_of[p]
        )
        if candidates:
            chosen = candidates[0]
        else:
            chosen = max(remaining, key=lambda p: (degree[p], index_of[p]))
        stack.append(chosen)
        remaining.discard(chosen)
        removed.add(chosen)
        for neighbor in iter_rids(interference[chosen]):
            if neighbor not in removed:
                degree[neighbor] -= 1

    # Prefer lightly used colors (see register_assignment.py): hardware
    # registers already in the code count once per defs set and once
    # per uses set of each instruction, exactly like the object tally.
    usage: Dict[int, int] = {c: 0 for c in colors}
    for block in flat.blocks:
        for iid in block:
            for rid in iter_rids(DEF_MASK[iid] & ALLOC_MASK):
                usage[rid] += 1
            for rid in iter_rids(USE_MASK[iid] & ALLOC_MASK):
                usage[rid] += 1

    coloring: Dict[int, int] = {}
    spilled: List[int] = []
    while stack:
        pseudo = stack.pop()
        taken = forbidden[pseudo]
        for neighbor in iter_rids(interference[pseudo]):
            assigned = coloring.get(neighbor)
            if assigned is not None:
                taken |= 1 << assigned
        free = [c for c in colors if not taken >> c & 1]
        if free:
            best = min(free, key=lambda c: (usage[c], c))
            coloring[pseudo] = best
            usage[best] += 1
        else:
            spilled.append(pseudo)
    return coloring, spilled


def _rewrite(flat: FlatFunction, coloring: Dict[int, int]) -> None:
    for bi, block in enumerate(flat.blocks):
        flat.blocks[bi] = [
            rewrite_regs_iid(
                iid,
                tuple(
                    (rid, coloring[rid])
                    for rid in iter_rids(
                        (DEF_MASK[iid] | USE_MASK[iid]) & PSEUDO_CLEAR
                    )
                ),
            )
            for iid in block
        ]
    flat.invalidate_analyses()


def _spill_slot_name(flat: FlatFunction) -> str:
    index = 0
    while f"_spill{index}" in flat.frame:
        index += 1
    return f"_spill{index}"


def _spill(flat: FlatFunction, pseudo_rid: int) -> None:
    """Rewrite the pseudo to live in a new stack slot (rare path)."""
    name = _spill_slot_name(flat)
    slot = LocalSlot(name, flat.frame_size, 1, "int", False)
    flat.frame = dict(flat.frame)  # clones share the dict (COW)
    flat.frame[name] = slot
    flat.frame_size += 4
    flat._scalar_slots = None  # new scalar slot: refresh the memo
    addr = BinOp("add", FP, Const(slot.offset)) if slot.offset else FP
    pseudo = REG_OBJS[pseudo_rid]
    bit = 1 << pseudo_rid

    for bi, block in enumerate(flat.blocks):
        new_block: List[int] = []
        for iid in block:
            uses_pseudo = USE_MASK[iid] & bit
            defines_pseudo = DEF_MASK[iid] & bit
            inst = INST_OBJS[iid]
            if uses_pseudo:
                load_temp = REG_OBJS[flat.new_rid()]
                new_block.append(intern_inst(Assign(load_temp, Mem(addr))))
                inst = rewrite_uses(inst, {pseudo: load_temp})
            if defines_pseudo:
                store_temp = REG_OBJS[flat.new_rid()]
                assert isinstance(inst, Assign) and inst.dst == pseudo
                new_block.append(intern_inst(Assign(store_temp, inst.src)))
                new_block.append(intern_inst(Assign(Mem(addr), store_temp)))
            else:
                new_block.append(intern_inst(inst))
        flat.blocks[bi] = new_block
    flat.invalidate_analyses()
