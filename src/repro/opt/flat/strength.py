"""Flat kernel for phase q — strength reduction.

The multiply expansion itself is the object implementation's
``expand_multiply``; what the kernel adds is a per-(instruction,
target) cache of the expansion result as interned ids, so the pattern
match and sequence construction happen once per distinct multiply.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from repro.ir.flat import (
    INST_OBJS,
    KIND,
    K_ASSIGN,
    FlatFunction,
    block_id,
    intern_inst,
)
from repro.ir.operands import BinOp, Const, Reg
from repro.machine.target import Target
from repro.opt.flat.support import FlatKernel
from repro.opt.strength_reduction import expand_multiply

_EXPANSIONS: "weakref.WeakKeyDictionary[Target, Dict[int, Optional[Tuple[int, ...]]]]" = (
    weakref.WeakKeyDictionary()
)

#: per-target whole-block expansion: block id -> expanded tuple, or
#: ``False`` when no instruction in the block is an expandable multiply
_BLOCKS: "weakref.WeakKeyDictionary[Target, Dict[int, object]]" = (
    weakref.WeakKeyDictionary()
)
_BLOCKS_MAX = 1 << 18
_MISSING = object()


def _expansion(iid: int, target: Target) -> Optional[Tuple[int, ...]]:
    cache = _EXPANSIONS.get(target)
    if cache is None:
        cache = {}
        _EXPANSIONS[target] = cache
    if iid in cache:
        return cache[iid]
    result: Optional[Tuple[int, ...]] = None
    if KIND[iid] == K_ASSIGN:
        inst = INST_OBJS[iid]
        src = inst.src
        if (
            isinstance(src, BinOp)
            and src.op == "mul"
            and isinstance(src.left, Reg)
            and isinstance(src.right, Const)
            and isinstance(src.right.value, int)
        ):
            expanded = expand_multiply(inst.dst, src.left, src.right.value, target)
            if expanded is not None:
                result = tuple(intern_inst(new) for new in expanded)
    cache[iid] = result
    return result


class StrengthReductionKernel(FlatKernel):
    id = "q"

    def run(self, flat: FlatFunction, target: Target) -> bool:
        cache = _BLOCKS.get(target)
        if cache is None:
            cache = {}
            _BLOCKS[target] = cache
        changed = False
        for bi, block in enumerate(flat.blocks):
            bid = block_id(tuple(block))
            result = cache.get(bid, _MISSING)
            if result is _MISSING:
                expanded_any = False
                new_block: List[int] = []
                for iid in block:
                    expansion = _expansion(iid, target)
                    if expansion is None:
                        new_block.append(iid)
                    else:
                        new_block.extend(expansion)
                        expanded_any = True
                result = tuple(new_block) if expanded_any else False
                if len(cache) >= _BLOCKS_MAX:
                    cache.clear()
                cache[bid] = result
            if result is not False:
                flat.blocks[bi] = list(result)
                changed = True
        if changed:
            flat.invalidate_analyses()
        return changed
