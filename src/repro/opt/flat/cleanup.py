"""Flat mirror of the implicit control-flow canonicalization.

Same fixpoint as :mod:`repro.opt.cleanup`, over parallel label/block
int lists.  The ``labels`` list must stay in lockstep with ``blocks``
through every structural edit — that is the one invariant the object IR
gets for free (labels live inside the block) and the flat IR must
maintain by hand.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.flat import flat_cfg_of
from repro.ir.flat import (
    FLAGS,
    F_TRANSFER,
    KIND,
    K_CONDBR,
    K_JUMP,
    RELOP,
    TARGET_LID,
    FlatFunction,
)
from repro.opt.flat.support import condbr_iid, jump_iid


def _retarget(flat: FlatFunction, mapping: Dict[int, int]) -> None:
    """Rewrite all branch targets through *mapping* (applied once)."""
    if not mapping:
        return
    for block in flat.blocks:
        if not block:
            continue
        last = block[-1]
        kind = KIND[last]
        if kind == K_JUMP:
            target = TARGET_LID[last]
            if target in mapping:
                block[-1] = jump_iid(mapping[target])
        elif kind == K_CONDBR:
            target = TARGET_LID[last]
            if target in mapping:
                block[-1] = condbr_iid(RELOP[last], mapping[target])


def flat_remove_empty_blocks(flat: FlatFunction) -> bool:
    changed = False
    while True:
        blocks = flat.blocks
        labels = flat.labels
        mapping: Dict[int, int] = {}
        for i in range(len(blocks) - 1):
            if i == 0 or blocks[i]:
                continue
            mapping[labels[i]] = labels[i + 1]
        if not mapping:
            return changed
        # Resolve chains of empty blocks to their final target.
        resolved: Dict[int, int] = {}
        for label in mapping:
            target = mapping[label]
            seen = {label}
            while target in mapping and target not in seen:
                seen.add(target)
                target = mapping[target]
            resolved[label] = target
        _retarget(flat, resolved)
        n = len(blocks)
        keep = [i for i in range(n) if i == 0 or blocks[i] or i == n - 1]
        flat.blocks = [blocks[i] for i in keep]
        flat.labels = [labels[i] for i in keep]
        flat.invalidate_analyses()
        changed = True


def flat_merge_fallthrough_blocks(flat: FlatFunction) -> bool:
    changed = False
    while True:
        cfg = flat_cfg_of(flat)
        merged = False
        for i in range(len(flat.blocks) - 1):
            upper = flat.blocks[i]
            if upper and FLAGS[upper[-1]] & F_TRANSFER:
                continue
            if len(cfg.preds[i + 1]) != 1:
                continue
            upper.extend(flat.blocks[i + 1])
            del flat.blocks[i + 1]
            del flat.labels[i + 1]
            flat.invalidate_analyses()
            merged = True
            changed = True
            break
        if not merged:
            return changed


def flat_implicit_cleanup(flat: FlatFunction) -> bool:
    """Run both canonicalizations to a fixpoint."""
    changed = False
    while True:
        step = flat_remove_empty_blocks(flat)
        step |= flat_merge_fallthrough_blocks(flat)
        if not step:
            return changed
        changed = True
