"""Flat kernel for phase o — evaluation order determination.

The per-block schedule is a pure function of (block content, pseudo
live-out mask), so results are cached globally by interned block id —
independent phase orders reaching the same block pay the O(n^2)
dependence construction once.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.flat import flat_liveness_of
from repro.ir.flat import (
    DEF_MASK,
    FLAGS,
    F_READS_MEM,
    F_SETS_CC,
    F_TRANSFER,
    F_USES_CC,
    F_WRITES_MEM,
    KIND,
    K_CALL,
    USE_MASK,
    FlatFunction,
    block_id,
    iter_rids,
)
from repro.machine.target import Target
from repro.opt.flat.support import FlatKernel, PSEUDO_CLEAR

#: (block id, pseudo live-out mask) -> schedule (tuple of indices)
_SCHEDULES: Dict[Tuple[int, int], Tuple[int, ...]] = {}
_SCHEDULES_MAX = 1 << 16


def _build_dependencies(block: List[int]) -> List[Set[int]]:
    """preds[j] = indices that must be scheduled before j."""
    n = len(block)
    preds: List[Set[int]] = [set() for _ in range(n)]
    for j in range(n):
        later = block[j]
        later_flags = FLAGS[later]
        later_call = KIND[later] == K_CALL
        later_reads = bool(later_flags & F_READS_MEM) or later_call
        later_writes = bool(later_flags & F_WRITES_MEM) or later_call
        for i in range(j):
            earlier = block[i]
            earlier_flags = FLAGS[earlier]
            ordered = bool(
                (DEF_MASK[earlier] & USE_MASK[later])
                or (USE_MASK[earlier] & DEF_MASK[later])
                or (DEF_MASK[earlier] & DEF_MASK[later])
            )
            if not ordered:
                earlier_call = KIND[earlier] == K_CALL
                earlier_writes = bool(earlier_flags & F_WRITES_MEM) or earlier_call
                if earlier_writes and (later_reads or later_writes):
                    ordered = True
                else:
                    earlier_reads = bool(earlier_flags & F_READS_MEM) or earlier_call
                    if earlier_reads and later_writes:
                        ordered = True
            if not ordered:
                # Condition-code ordering.
                if earlier_flags & F_SETS_CC and later_flags & (F_SETS_CC | F_USES_CC):
                    ordered = True
                elif earlier_flags & F_USES_CC and later_flags & F_SETS_CC:
                    ordered = True
            if not ordered and later_flags & F_TRANSFER:
                ordered = True  # the transfer stays last
            if ordered:
                preds[j].add(i)
    return preds


def _schedule(block: List[int], live_out: int) -> Tuple[int, ...]:
    n = len(block)
    preds = _build_dependencies(block)
    succs: List[Set[int]] = [set() for _ in range(n)]
    for j, deps in enumerate(preds):
        for i in deps:
            succs[i].add(j)
    remaining_preds = [len(deps) for deps in preds]

    # For each pseudo register: the set of unscheduled instructions
    # using it (to detect when scheduling one ends a live range).
    users: Dict[int, Set[int]] = {}
    for i, iid in enumerate(block):
        for rid in iter_rids(USE_MASK[iid] & PSEUDO_CLEAR):
            users.setdefault(rid, set()).add(i)

    empty: Set[int] = set()
    ready = sorted(i for i in range(n) if remaining_preds[i] == 0)
    order: List[int] = []
    scheduled: Set[int] = set()
    while ready:
        best = None
        best_score = None
        for i in ready:
            iid = block[i]
            frees = 0
            for rid in iter_rids(USE_MASK[iid] & PSEUDO_CLEAR):
                if live_out >> rid & 1:
                    continue
                if users.get(rid, empty) <= {i} | scheduled:
                    frees += 1
            starts = 0
            for rid in iter_rids(DEF_MASK[iid] & PSEUDO_CLEAR):
                if users.get(rid, empty) - scheduled - {i}:
                    starts += 1
            score = (frees - starts, -i)
            if best_score is None or score > best_score:
                best, best_score = i, score
        ready.remove(best)
        scheduled.add(best)
        order.append(best)
        for j in sorted(succs[best]):
            remaining_preds[j] -= 1
            if remaining_preds[j] == 0:
                ready.append(j)
        ready.sort()
    return tuple(order)


class EvaluationOrderDeterminationKernel(FlatKernel):
    id = "o"

    def applicable(self, flat: FlatFunction) -> bool:
        return not flat.reg_assigned

    def run(self, flat: FlatFunction, target: Target) -> bool:
        liveness = flat_liveness_of(flat)
        changed = False
        for bi, block in enumerate(flat.blocks):
            if len(block) < 3:
                continue
            key = (block_id(tuple(block)), liveness.live_out[bi] & PSEUDO_CLEAR)
            order = _SCHEDULES.get(key)
            if order is None:
                order = _schedule(block, liveness.live_out[bi])
                if len(_SCHEDULES) >= _SCHEDULES_MAX:
                    _SCHEDULES.clear()
                _SCHEDULES[key] = order
            if order != tuple(range(len(block))):
                flat.blocks[bi] = [block[i] for i in order]
                flat.invalidate_analyses()
                changed = True
        return changed
