"""Flat kernels for the pure control-flow phases: b, d, i, r, u.

Each mirrors its object phase decision-for-decision (same scan order,
same guards, same single-change-per-pass structure) over label ids and
block indices.  Branch retargeting goes through the interned
constructors in :mod:`repro.opt.flat.support`, so rewritten
terminators hash-cons to the same ids everywhere.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.flat import flat_cfg_of
from repro.ir.flat import (
    FLAGS,
    F_TRANSFER,
    KIND,
    K_CONDBR,
    K_JUMP,
    RELOP,
    TARGET_LID,
    FlatFunction,
)
from repro.ir.instructions import INVERTED_RELOP
from repro.machine.target import Target
from repro.opt.flat.support import FlatKernel, condbr_iid, jump_iid, terminator_iid


def _final_target(start: int, trivial: Dict[int, int]) -> int:
    """Follow a chain of jump-only blocks; stop on a cycle."""
    seen = {start}
    current = start
    while current in trivial:
        following = trivial[current]
        if following in seen:
            break
        seen.add(following)
        current = following
    return current


class BranchChainingKernel(FlatKernel):
    id = "b"

    def run(self, flat: FlatFunction, target: Target) -> bool:
        trivial: Dict[int, int] = {}
        for lid, block in zip(flat.labels, flat.blocks):
            if len(block) == 1 and KIND[block[0]] == K_JUMP:
                trivial[lid] = TARGET_LID[block[0]]

        changed = False
        for block in flat.blocks:
            term = terminator_iid(block)
            if term < 0:
                continue
            kind = KIND[term]
            if kind == K_JUMP:
                final = _final_target(TARGET_LID[term], trivial)
                if final != TARGET_LID[term]:
                    block[-1] = jump_iid(final)
                    changed = True
            elif kind == K_CONDBR:
                final = _final_target(TARGET_LID[term], trivial)
                if final != TARGET_LID[term]:
                    block[-1] = condbr_iid(RELOP[term], final)
                    changed = True

        if changed:
            flat.invalidate_analyses()
            cfg = flat_cfg_of(flat)
            reachable = cfg.reachable(0)
            flat.blocks = [
                block for i, block in enumerate(flat.blocks) if i in reachable
            ]
            flat.labels = [
                lid for i, lid in enumerate(flat.labels) if i in reachable
            ]
            flat.invalidate_analyses()
        return changed


class RemoveUnreachableCodeKernel(FlatKernel):
    id = "d"

    def run(self, flat: FlatFunction, target: Target) -> bool:
        cfg = flat_cfg_of(flat)
        reachable = cfg.reachable(0)
        if len(reachable) == len(flat.blocks):
            return False
        flat.blocks = [
            block for i, block in enumerate(flat.blocks) if i in reachable
        ]
        flat.labels = [lid for i, lid in enumerate(flat.labels) if i in reachable]
        flat.invalidate_analyses()
        return True


class BlockReorderingKernel(FlatKernel):
    id = "i"

    def run(self, flat: FlatFunction, target: Target) -> bool:
        changed = False
        while self._apply_once(flat):
            changed = True
        return changed

    @staticmethod
    def _apply_once(flat: FlatFunction) -> bool:
        cfg = flat_cfg_of(flat)
        n = len(flat.blocks)
        for i, block in enumerate(flat.blocks):
            term = terminator_iid(block)
            if term < 0 or KIND[term] != K_JUMP:
                continue
            target_lid = TARGET_LID[term]
            if i + 1 < n and flat.labels[i + 1] == target_lid:
                # Jump to the next positional block: delete it.
                block.pop()
                flat.invalidate_analyses()
                return True
            if target_lid == flat.labels[0]:
                continue
            j = flat.block_index(target_lid)
            if len(cfg.preds[j]) != 1:
                continue
            if target_lid == flat.labels[i]:
                continue
            moved = flat.blocks[j]
            moved_term = terminator_iid(moved)
            if moved_term >= 0 and KIND[moved_term] == K_CONDBR:
                continue  # cannot carry its fallthrough along
            if moved_term < 0:
                if j + 1 >= n:
                    continue
                moved.append(jump_iid(flat.labels[j + 1]))
            # Move the target block to just after the jumping block and
            # delete the jump.
            block.pop()
            source_lid = flat.labels[i]
            del flat.blocks[j]
            del flat.labels[j]
            insert_at = flat.block_index(source_lid) + 1
            flat.blocks.insert(insert_at, moved)
            flat.labels.insert(insert_at, target_lid)
            flat.invalidate_analyses()
            return True
        return False


class ReverseBranchesKernel(FlatKernel):
    id = "r"

    def run(self, flat: FlatFunction, target: Target) -> bool:
        changed = False
        while True:
            cfg = flat_cfg_of(flat)
            applied = False
            for i in range(len(flat.blocks) - 2):
                upper = flat.blocks[i]
                middle = flat.blocks[i + 1]
                term = terminator_iid(upper)
                if term < 0 or KIND[term] != K_CONDBR:
                    continue
                if TARGET_LID[term] != flat.labels[i + 2]:
                    continue
                if len(middle) != 1 or KIND[middle[0]] != K_JUMP:
                    continue
                if cfg.preds[i + 1] != [i]:
                    continue
                jump_target = TARGET_LID[middle[0]]
                if jump_target == flat.labels[i + 1]:
                    continue  # degenerate self-loop
                upper[-1] = condbr_iid(INVERTED_RELOP[RELOP[term]], jump_target)
                del flat.blocks[i + 1]
                del flat.labels[i + 1]
                flat.invalidate_analyses()
                applied = True
                changed = True
                break
            if not applied:
                return changed


class RemoveUselessJumpsKernel(FlatKernel):
    id = "u"

    def run(self, flat: FlatFunction, target: Target) -> bool:
        changed = False
        for i in range(len(flat.blocks) - 1):
            block = flat.blocks[i]
            term = terminator_iid(block)
            if term < 0:
                continue
            kind = KIND[term]
            if kind in (K_JUMP, K_CONDBR) and TARGET_LID[term] == flat.labels[i + 1]:
                block.pop()
                changed = True
        if changed:
            flat.invalidate_analyses()
        return changed
