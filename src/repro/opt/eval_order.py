"""Phase o — evaluation order determination.

Table 1: "Reorders instructions within a single basic block in an
attempt to use fewer registers."

This phase is only legal before the compulsory register assignment (it
exists to reduce the number of simultaneously live pseudo registers
that assignment must later color).  Within each block a dependence DAG
is built (register RAW/WAR/WAW, memory ordering, condition-code
ordering) and instructions are re-scheduled greedily, preferring at
each step the ready instruction that ends the most pseudo live ranges
while starting the fewest.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analysis.cache import liveness_of
from repro.ir.function import Function
from repro.ir.instructions import Call, Compare, CondBranch, Instruction
from repro.ir.operands import Reg
from repro.machine.target import Target
from repro.opt.base import Phase


def _touches_memory(inst: Instruction) -> Dict[str, bool]:
    return {
        "reads": inst.reads_memory() or isinstance(inst, Call),
        "writes": inst.writes_memory() or isinstance(inst, Call),
    }


def _build_dependencies(insts: List[Instruction]) -> List[Set[int]]:
    """preds[j] = indices that must be scheduled before j."""
    n = len(insts)
    preds: List[Set[int]] = [set() for _ in range(n)]
    for j in range(n):
        later = insts[j]
        later_mem = _touches_memory(later)
        for i in range(j):
            earlier = insts[i]
            earlier_mem = _touches_memory(earlier)
            ordered = bool(
                (earlier.defs() & later.uses())
                or (earlier.uses() & later.defs())
                or (earlier.defs() & later.defs())
            )
            if not ordered:
                if earlier_mem["writes"] and (later_mem["reads"] or later_mem["writes"]):
                    ordered = True
                elif earlier_mem["reads"] and later_mem["writes"]:
                    ordered = True
            if not ordered:
                # Condition-code ordering.
                if earlier.sets_cc() and (later.sets_cc() or later.uses_cc()):
                    ordered = True
                elif earlier.uses_cc() and later.sets_cc():
                    ordered = True
            if not ordered and later.is_transfer:
                ordered = True  # the transfer stays last
            if ordered:
                preds[j].add(i)
    return preds


class EvaluationOrderDetermination(Phase):
    id = "o"
    name = "evaluation order determination"
    #: contract: illegal once registers are assigned (mirrors applicable)
    contract_requires = ('pre-assignment',)
    contract_establishes = ()
    contract_breaks = ()

    def applicable(self, func: Function) -> bool:
        return not func.reg_assigned

    def run(self, func: Function, target: Target) -> bool:
        liveness = liveness_of(func)
        changed = False
        for block in func.blocks:
            if len(block.insts) < 3:
                continue
            new_order = self._schedule(block.insts, liveness.live_out[block.label])
            if new_order != list(range(len(block.insts))):
                block.insts = [block.insts[i] for i in new_order]
                func.invalidate_analyses()
                changed = True
        return changed

    @staticmethod
    def _schedule(insts: List[Instruction], live_out) -> List[int]:
        n = len(insts)
        preds = _build_dependencies(insts)
        succs: List[Set[int]] = [set() for _ in range(n)]
        for j, deps in enumerate(preds):
            for i in deps:
                succs[i].add(j)
        remaining_preds = [len(deps) for deps in preds]

        # For each pseudo register: the set of unscheduled instructions
        # using it (to detect when scheduling one ends a live range).
        users: Dict[Reg, Set[int]] = {}
        for i, inst in enumerate(insts):
            for reg in inst.uses():
                if reg.pseudo:
                    users.setdefault(reg, set()).add(i)

        ready = sorted(i for i in range(n) if remaining_preds[i] == 0)
        order: List[int] = []
        scheduled: Set[int] = set()
        while ready:
            best = None
            best_score = None
            for i in ready:
                inst = insts[i]
                frees = 0
                for reg in inst.uses():
                    if not reg.pseudo or reg in live_out:
                        continue
                    if users.get(reg, set()) <= {i} | scheduled:
                        frees += 1
                starts = 0
                for reg in inst.defs():
                    if reg.pseudo and (users.get(reg, set()) - scheduled - {i}):
                        starts += 1
                score = (frees - starts, -i)
                if best_score is None or score > best_score:
                    best, best_score = i, score
            ready.remove(best)
            scheduled.add(best)
            order.append(best)
            for j in sorted(succs[best]):
                remaining_preds[j] -= 1
                if remaining_preds[j] == 0:
                    ready.append(j)
            ready.sort()
        return order
