"""Implicit control-flow canonicalization.

VPO performs *merge basic blocks* and *eliminate empty blocks*
implicitly after any transformation that may enable them; they are not
candidate phases because they only change the compiler's internal
control-flow representation (paper section 3).  We run them after each
active phase and once on frontend output.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.cache import cfg_of
from repro.ir.function import Function
from repro.ir.instructions import CondBranch, Jump

#: phase contract (one of the two implicit phases): cleanup requires
#: nothing, establishes nothing, and must preserve every monotone
#: invariant — it only canonicalizes the block structure
CONTRACT = {
    "requires": (),
    "establishes": (),
    "breaks": (),
}


def _retarget(func: Function, mapping: Dict[str, str]) -> None:
    """Rewrite all branch targets through *mapping* (applied once)."""
    if not mapping:
        return
    for block in func.blocks:
        if not block.insts:
            continue
        last = block.insts[-1]
        if isinstance(last, Jump) and last.target in mapping:
            block.insts[-1] = Jump(mapping[last.target])
        elif isinstance(last, CondBranch) and last.target in mapping:
            block.insts[-1] = CondBranch(last.relop, mapping[last.target])


def remove_empty_blocks(func: Function) -> bool:
    """Delete blocks with no instructions, retargeting branches to them.

    An empty block simply falls through; every reference to it can be
    redirected to its positional successor.  The entry block is kept
    even when empty (it anchors the function).
    """
    changed = False
    while True:
        mapping: Dict[str, str] = {}
        for i, block in enumerate(func.blocks[:-1]):
            if i == 0 or block.insts:
                continue
            mapping[block.label] = func.blocks[i + 1].label
        if not mapping:
            return changed
        # Resolve chains of empty blocks to their final target.
        resolved: Dict[str, str] = {}
        for label in mapping:
            target = mapping[label]
            seen = {label}
            while target in mapping and target not in seen:
                seen.add(target)
                target = mapping[target]
            resolved[label] = target
        _retarget(func, resolved)
        func.blocks = [
            block
            for i, block in enumerate(func.blocks)
            if i == 0 or block.insts or i == len(func.blocks) - 1
        ]
        func.invalidate_analyses()
        changed = True


def merge_fallthrough_blocks(func: Function) -> bool:
    """Merge a block into its fallthrough-only single predecessor."""
    changed = False
    while True:
        cfg = cfg_of(func)
        merged = False
        for i in range(len(func.blocks) - 1):
            upper = func.blocks[i]
            lower = func.blocks[i + 1]
            if upper.terminator() is not None:
                continue
            if len(cfg.preds.get(lower.label, ())) != 1:
                continue
            upper.insts.extend(lower.insts)
            del func.blocks[i + 1]
            func.invalidate_analyses()
            merged = True
            changed = True
            break
        if not merged:
            return changed


def implicit_cleanup(func: Function) -> bool:
    """Run both canonicalizations to a fixpoint."""
    changed = False
    while True:
        step = remove_empty_blocks(func)
        step |= merge_fallthrough_blocks(func)
        if not step:
            return changed
        changed = True
