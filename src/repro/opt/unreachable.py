"""Phase d — remove unreachable code.

Table 1: "Removes basic blocks that cannot be reached from the function
entry block."
"""

from __future__ import annotations

from repro.analysis.cache import cfg_of
from repro.ir.function import Function
from repro.machine.target import Target
from repro.opt.base import Phase


class RemoveUnreachableCode(Phase):
    id = "d"
    name = "remove unreachable code"
    #: contract: requires nothing, establishes nothing, preserves
    #: every monotone invariant (see staticanalysis/contracts.py)
    contract_requires = ()
    contract_establishes = ()
    contract_breaks = ()

    def run(self, func: Function, target: Target) -> bool:
        cfg = cfg_of(func)
        reachable = cfg.reachable(func.entry.label)
        if all(block.label in reachable for block in func.blocks):
            return False
        func.blocks = [block for block in func.blocks if block.label in reachable]
        func.invalidate_analyses()
        return True
