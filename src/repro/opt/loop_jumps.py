"""Phase j — minimize loop jumps.

Table 1: "Removes a jump associated with a loop by duplicating a
portion of the loop."

This is loop inversion: a back edge that is an unconditional jump to a
loop header whose only job is to test the exit condition is replaced by
a duplicated copy of the header's test that branches back into the loop
body directly.  The loop then pays one conditional branch per
iteration instead of a jump plus a branch.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.cache import cfg_of, loops_of
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import CondBranch, INVERTED_RELOP, Jump
from repro.machine.target import Target
from repro.opt.base import Phase

#: headers with more instructions than this are not duplicated
MAX_DUPLICATED_INSTS = 12


class MinimizeLoopJumps(Phase):
    id = "j"
    name = "minimize loop jumps"
    #: contract: requires nothing, establishes nothing, preserves
    #: every monotone invariant (see staticanalysis/contracts.py)
    contract_requires = ()
    contract_establishes = ()
    contract_breaks = ()

    def run(self, func: Function, target: Target) -> bool:
        changed = False
        while self._apply_once(func):
            changed = True
        return changed

    def _apply_once(self, func: Function) -> bool:
        loops = loops_of(func)
        for loop in loops:
            header = func.block(loop.header)
            term = header.terminator()
            if not isinstance(term, CondBranch):
                continue
            if len(header.body()) > MAX_DUPLICATED_INSTS:
                continue
            header_index = func.block_index(header.label)
            if header_index + 1 >= len(func.blocks):
                continue
            fallthrough = func.blocks[header_index + 1].label
            if fallthrough == term.target:
                continue
            # Classify the header's two edges.
            if term.target in loop.body and fallthrough not in loop.body:
                stay_relop, stay_target, exit_label = (
                    term.relop,
                    term.target,
                    fallthrough,
                )
            elif term.target not in loop.body and fallthrough in loop.body:
                stay_relop, stay_target, exit_label = (
                    INVERTED_RELOP[term.relop],
                    fallthrough,
                    term.target,
                )
            else:
                continue
            for latch_label in sorted(loop.latches):
                if latch_label == header.label:
                    continue
                latch = func.block(latch_label)
                latch_term = latch.terminator()
                if not isinstance(latch_term, Jump):
                    continue
                if latch_term.target != header.label:
                    continue
                self._invert(func, latch, header, stay_relop, stay_target, exit_label)
                return True
        return False

    @staticmethod
    def _invert(
        func: Function,
        latch: BasicBlock,
        header: BasicBlock,
        stay_relop: str,
        stay_target: str,
        exit_label: str,
    ) -> None:
        # Replace the latch's jump with a duplicated copy of the header
        # test that branches back into the loop body directly.
        latch.insts.pop()
        latch.insts.extend(header.body())
        latch.insts.append(CondBranch(stay_relop, stay_target))
        # The latch's fallthrough must now reach the loop exit.
        latch_index = func.block_index(latch.label)
        needs_thunk = (
            latch_index + 1 >= len(func.blocks)
            or func.blocks[latch_index + 1].label != exit_label
        )
        if needs_thunk:
            thunk = BasicBlock(func.new_label(), [Jump(exit_label)])
            func.blocks.insert(latch_index + 1, thunk)
        func.invalidate_analyses()
