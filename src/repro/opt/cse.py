"""Phase c — common subexpression elimination.

Table 1: "Performs global analysis to eliminate fully redundant
calculations, which also includes global constant and copy
propagation."

Like VPO's, this phase requires register assignment to have been
performed (section 5.2 of the paper notes c and k always disable o for
this reason).

Three cooperating parts, iterated to a fixpoint:

1. *Local value numbering* per block: constant and copy propagation
   through a running value table, plus replacement of recomputed
   expressions (including slot loads) with a copy from the register
   already holding the value.  Replacements are committed only when the
   rewritten RTL stays a legal machine instruction (commutative
   operands are swapped when that legalizes a constant).
2. *Global constant/copy propagation* over single-definition registers,
   guarded by dominance.
3. *Global CSE* over single-definition registers: a computation
   ``rB = e`` dominated by an identical ``rA = e`` (pure register
   expression, operands single-definition) becomes ``rB = rA``.

Note constant *folding* is not done here — that belongs to instruction
selection (s), exactly as in VPO; the division of labour is what makes
c and s overlap on cases like Figure 3 of the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.cache import cfg_of, dominators_of
from repro.analysis.defuse import defined_reg, rewrite_uses, single_def_registers
from repro.ir.function import Function
from repro.ir.instructions import Assign, Call, Compare, Instruction
from repro.ir.operands import (
    BinOp,
    COMMUTATIVE_OPS,
    Const,
    Expr,
    Mem,
    Reg,
    Sym,
    UnOp,
)
from repro.machine.target import FP, Target
from repro.opt.base import Phase


def _legalize(inst: Instruction, target: Target) -> Optional[Instruction]:
    """Return a legal variant of *inst*, swapping commutative operands
    if that helps, or None when no legal form exists."""
    if target.is_legal(inst):
        return inst
    if (
        isinstance(inst, Assign)
        and isinstance(inst.src, BinOp)
        and inst.src.op in COMMUTATIVE_OPS
    ):
        swapped = Assign(inst.dst, BinOp(inst.src.op, inst.src.right, inst.src.left))
        if target.is_legal(swapped):
            return swapped
    return None


def _literal_slot_offset(mem: Mem) -> Optional[int]:
    """fp-relative offset when the address is literally fp(+const)."""
    addr = mem.addr
    if addr == FP:
        return 0
    if (
        isinstance(addr, BinOp)
        and addr.op == "add"
        and addr.left == FP
        and isinstance(addr.right, Const)
        and isinstance(addr.right.value, int)
    ):
        return addr.right.value
    return None


class _ValueTable:
    """Running value state for local value numbering."""

    def __init__(self):
        self.const_of: Dict[Reg, Const] = {}
        self.copy_of: Dict[Reg, Reg] = {}
        self.holder_of: Dict[Expr, Reg] = {}

    def substitution(self, inst: Instruction) -> Dict[Expr, Expr]:
        mapping: Dict[Expr, Expr] = {}
        for reg in inst.uses():
            constant = self.const_of.get(reg)
            if constant is not None:
                mapping[reg] = constant
                continue
            origin = self.copy_of.get(reg)
            if origin is not None:
                mapping[reg] = origin
        return mapping

    def invalidate(self, reg: Reg) -> None:
        self.const_of.pop(reg, None)
        self.copy_of.pop(reg, None)
        for key in [k for k, origin in self.copy_of.items() if origin == reg]:
            del self.copy_of[key]
        for expr in [
            e
            for e, holder in self.holder_of.items()
            if holder == reg or reg in e.registers()
        ]:
            del self.holder_of[expr]

    def invalidate_memory(self, store: Optional[Mem]) -> None:
        """A store (or call) happened; drop affected load values."""
        store_slot = _literal_slot_offset(store) if store is not None else None
        doomed = []
        for expr in self.holder_of:
            mems = [node for node in expr.walk() if isinstance(node, Mem)]
            if not mems:
                continue
            if store_slot is not None and all(
                _literal_slot_offset(mem) not in (None, store_slot) for mem in mems
            ):
                continue  # distinct known slots cannot alias
            doomed.append(expr)
        for expr in doomed:
            del self.holder_of[expr]

    def record(self, inst: Instruction) -> None:
        dst = defined_reg(inst)
        if dst is None:
            for reg in inst.defs():  # calls clobber caller-saved regs
                self.invalidate(reg)
            return
        self.invalidate(dst)
        src = inst.src
        if isinstance(src, Const):
            self.const_of[dst] = src
        elif isinstance(src, Reg):
            if src != dst:
                self.copy_of[dst] = self.copy_of.get(src, src)
        elif dst not in src.registers():
            # A self-referencing RTL (r1 = r1 + 4) computes a value the
            # expression text no longer denotes; never table it.
            self.holder_of.setdefault(src, dst)


class CommonSubexpressionElimination(Phase):
    id = "c"
    name = "common subexpression elimination"
    #: contract: triggers compulsory register assignment when needed
    contract_requires = ()
    contract_establishes = ('registers-assigned', 'no-pseudo-registers')
    contract_breaks = ()
    requires_assignment = True

    def run(self, func: Function, target: Target) -> bool:
        changed = False
        while True:
            step = self._local_value_numbering(func, target)
            step |= self._global_propagation(func, target)
            step |= self._global_cse(func, target)
            if not step:
                return changed
            changed = True

    # ------------------------------------------------------------------
    # Part 1: local value numbering
    # ------------------------------------------------------------------

    def _local_value_numbering(self, func: Function, target: Target) -> bool:
        changed = False
        for block in func.blocks:
            table = _ValueTable()
            for i, inst in enumerate(block.insts):
                mapping = table.substitution(inst)
                if mapping:
                    rewritten = rewrite_uses(inst, mapping)
                    if rewritten != inst:
                        legal = _legalize(rewritten, target)
                        if legal is None:
                            # Try copies only (constants may be the
                            # illegal part).
                            copy_only = {
                                k: v
                                for k, v in mapping.items()
                                if isinstance(v, Reg)
                            }
                            if copy_only:
                                rewritten = rewrite_uses(inst, copy_only)
                                legal = _legalize(rewritten, target)
                        if legal is not None and legal != inst:
                            block.insts[i] = legal
                            inst = legal
                            changed = True
                # Redundant computation -> copy from the holder.
                dst = defined_reg(inst)
                if (
                    dst is not None
                    and isinstance(inst.src, (BinOp, UnOp, Mem, Sym))
                ):
                    holder = table.holder_of.get(inst.src)
                    if holder is not None and holder != dst:
                        replacement = Assign(dst, holder)
                        block.insts[i] = replacement
                        inst = replacement
                        changed = True
                # Effects on the table.
                if isinstance(inst, Call):
                    table.invalidate_memory(None)
                elif isinstance(inst, Assign) and isinstance(inst.dst, Mem):
                    table.invalidate_memory(inst.dst)
                table.record(inst)
        if changed:
            func.invalidate_analyses()
        return changed

    # ------------------------------------------------------------------
    # Part 2: global constant / copy propagation (single-def registers)
    # ------------------------------------------------------------------

    def _global_propagation(self, func: Function, target: Target) -> bool:
        single_defs = single_def_registers(func)
        values: Dict[Reg, Expr] = {}
        for reg, inst in single_defs.items():
            if isinstance(inst.src, Const):
                values[reg] = inst.src
            elif isinstance(inst.src, Reg):
                origin = inst.src
                if origin in single_defs or origin == FP:
                    values[reg] = origin
        if not values:
            return False
        return self._replace_dominated_uses(func, target, single_defs, values)

    # ------------------------------------------------------------------
    # Part 3: global CSE over single-def registers
    # ------------------------------------------------------------------

    def _global_cse(self, func: Function, target: Target) -> bool:
        single_defs = single_def_registers(func)

        def stable(expr: Expr) -> bool:
            if expr.reads_memory():
                return False
            return all(
                reg in single_defs or reg == FP for reg in expr.registers()
            )

        cfg = cfg_of(func)
        dom = dominators_of(func)
        reachable = set(dom.idom)
        position: Dict[Reg, Tuple[str, int]] = {}
        for block in func.blocks:
            for i, inst in enumerate(block.insts):
                dst = defined_reg(inst)
                if dst is not None and dst in single_defs:
                    position[dst] = (block.label, i)

        first_holder: Dict[Expr, Reg] = {}
        changed = False
        # Visit in a dominance-compatible order: reverse postorder.
        order = [label for label in cfg.reverse_postorder(func.entry.label)]
        block_map = func.block_map()
        for label in order:
            block = block_map[label]
            for i, inst in enumerate(block.insts):
                dst = defined_reg(inst)
                if dst is None or dst not in single_defs:
                    continue
                src = inst.src
                if not isinstance(src, (BinOp, UnOp, Sym)) or not stable(src):
                    continue
                if dst in src.registers():
                    continue  # self-referencing RTL: text != value
                holder = first_holder.get(src)
                if holder is None:
                    first_holder[src] = dst
                    continue
                holder_label, holder_index = position[holder]
                dominated = (
                    holder_label == label and holder_index < i
                ) or (
                    holder_label != label
                    and holder_label in reachable
                    and label in reachable
                    and dom.strictly_dominates(holder_label, label)
                )
                if dominated and holder != dst:
                    block.insts[i] = Assign(dst, holder)
                    changed = True
        if changed:
            func.invalidate_analyses()
        return changed

    # ------------------------------------------------------------------

    def _replace_dominated_uses(
        self,
        func: Function,
        target: Target,
        single_defs: Dict[Reg, Instruction],
        values: Dict[Reg, Expr],
    ) -> bool:
        cfg = cfg_of(func)
        dom = dominators_of(func)
        reachable = set(dom.idom)
        position: Dict[Reg, Tuple[str, int]] = {}
        for block in func.blocks:
            for i, inst in enumerate(block.insts):
                dst = defined_reg(inst)
                if dst is not None and dst in values:
                    position[dst] = (block.label, i)

        changed = False
        for block in func.blocks:
            if block.label not in reachable:
                continue
            for i, inst in enumerate(block.insts):
                mapping: Dict[Expr, Expr] = {}
                for reg in inst.uses():
                    value = values.get(reg)
                    if value is None or reg not in position:
                        continue
                    def_label, def_index = position[reg]
                    if def_label == block.label:
                        if def_index >= i:
                            continue
                    elif not dom.strictly_dominates(def_label, block.label):
                        continue
                    mapping[reg] = value
                if not mapping:
                    continue
                rewritten = rewrite_uses(inst, mapping)
                if rewritten == inst:
                    continue
                legal = _legalize(rewritten, target)
                if legal is None:
                    copy_only = {
                        k: v for k, v in mapping.items() if isinstance(v, Reg)
                    }
                    if not copy_only:
                        continue
                    rewritten = rewrite_uses(inst, copy_only)
                    legal = _legalize(rewritten, target)
                if legal is not None and legal != inst:
                    block.insts[i] = legal
                    changed = True
        if changed:
            func.invalidate_analyses()
        return changed
