"""Phase s — instruction selection.

Table 1: "Combines pairs or triples of instructions together where the
instructions are linked by set/use dependencies.  After combining the
effects of the instructions, it also performs constant folding and
checks if the resulting effect is a legal instruction before committing
to the transformation."

A definition ``t = e`` is forward-substituted into the single
instruction that uses ``t`` (in the same block, with nothing in between
disturbing ``e``'s operands or, for loads, memory), the result is
constant-folded, and the combination is committed only when the target
accepts the combined RTL as one legal instruction.  Triples fall out of
repeating the pass to a fixpoint.  Standalone constant folding of a
single RTL (e.g. left behind by constant propagation) is also part of
this phase.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.defuse import defined_reg, rewrite_uses
from repro.ir.function import Function
from repro.ir.instructions import (
    Assign,
    Call,
    Compare,
    Instruction,
    Return,
)
from repro.ir.operands import Expr, Mem, Reg, fold
from repro.machine.target import RV, Target
from repro.opt.base import Phase


def count_register_uses(func: Function) -> Dict[Reg, int]:
    """Textual use counts of every register, including implicit uses."""
    counts: Dict[Reg, int] = {}

    def scan(expr: Expr) -> None:
        for node in expr.walk():
            if isinstance(node, Reg):
                counts[node] = counts.get(node, 0) + 1

    for inst in func.instructions():
        if isinstance(inst, Assign):
            scan(inst.src)
            if isinstance(inst.dst, Mem):
                scan(inst.dst.addr)
        elif isinstance(inst, Compare):
            scan(inst.left)
            scan(inst.right)
        elif isinstance(inst, Call):
            for reg in inst.uses():
                counts[reg] = counts.get(reg, 0) + 1
        elif isinstance(inst, Return) and func.returns_value:
            counts[RV] = counts.get(RV, 0) + 1
    return counts


def _count_in_instruction(inst: Instruction, reg: Reg) -> int:
    count = 0

    def scan(expr: Expr) -> None:
        nonlocal count
        for node in expr.walk():
            if node == reg:
                count += 1

    if isinstance(inst, Assign):
        scan(inst.src)
        if isinstance(inst.dst, Mem):
            scan(inst.dst.addr)
    elif isinstance(inst, Compare):
        scan(inst.left)
        scan(inst.right)
    return count


def _fold_instruction(inst: Instruction) -> Instruction:
    if isinstance(inst, Assign):
        src = fold(inst.src)
        dst = inst.dst
        if isinstance(dst, Mem):
            addr = fold(dst.addr)
            if addr is not dst.addr:
                dst = Mem(addr)
        if src is inst.src and dst is inst.dst:
            return inst
        return Assign(dst, src)
    if isinstance(inst, Compare):
        left = fold(inst.left)
        right = fold(inst.right)
        if left is inst.left and right is inst.right:
            return inst
        return Compare(left, right)
    return inst


class InstructionSelection(Phase):
    id = "s"
    name = "instruction selection"
    #: contract: an active application flips the sel_applied legality flag
    contract_requires = ()
    contract_establishes = ('selection-done',)
    contract_breaks = ()

    def run(self, func: Function, target: Target) -> bool:
        changed = False
        while self._pass(func, target):
            changed = True
        return changed

    def _pass(self, func: Function, target: Target) -> bool:
        # Standalone folding first (cheap, enables combinations), and
        # removal of no-op self-moves left behind by collapsed copies.
        folded_any = False
        for block in func.blocks:
            kept = [
                inst
                for inst in block.insts
                if not (
                    isinstance(inst, Assign)
                    and isinstance(inst.dst, Reg)
                    and inst.src == inst.dst
                )
            ]
            if len(kept) != len(block.insts):
                block.insts = kept
                folded_any = True
            for i, inst in enumerate(block.insts):
                folded = _fold_instruction(inst)
                if folded is not inst and folded != inst and target.is_legal(folded):
                    block.insts[i] = folded
                    folded_any = True
        if folded_any:
            func.invalidate_analyses()

        use_counts = count_register_uses(func)
        for block in func.blocks:
            if self._combine_in_block(block, func, target, use_counts):
                return True
        return folded_any

    def _combine_in_block(self, block, func, target, use_counts) -> bool:
        insts = block.insts
        for i, inst in enumerate(insts):
            t = defined_reg(inst)
            if t is None:
                continue
            expr = inst.src
            if t in expr.registers():
                continue
            total_uses = use_counts.get(t, 0)
            if total_uses == 0:
                continue
            j = self._find_combinable_use(insts, i, t, expr, total_uses)
            if j is None:
                continue
            combined = rewrite_uses(insts[j], {t: expr})
            if combined == insts[j]:
                continue
            combined = _fold_instruction(combined)
            if not target.is_legal(combined):
                continue
            insts[j] = combined
            del insts[i]
            func.invalidate_analyses()
            return True
        return False

    @staticmethod
    def _find_combinable_use(insts, i, t: Reg, expr: Expr, total_uses: int) -> Optional[int]:
        """Index of the single use of *t* that the def at *i* may merge into."""
        expr_regs = set(expr.registers())
        reads_mem = expr.reads_memory()
        for j in range(i + 1, len(insts)):
            candidate = insts[j]
            if t in candidate.uses():
                if isinstance(candidate, (Call, Return)):
                    return None  # implicit uses cannot absorb the def
                if _count_in_instruction(candidate, t) != total_uses:
                    return None  # used again elsewhere
                return j
            # Crossing this instruction: it must not disturb the
            # substituted expression's inputs.
            defs = candidate.defs()
            if t in defs:
                return None
            if defs & expr_regs:
                return None
            if reads_mem and (candidate.writes_memory() or isinstance(candidate, Call)):
                return None
        return None
