"""Phase q — strength reduction.

Table 1: "Replaces an expensive instruction with one or more cheaper
ones.  For this version of the compiler, this means changing a multiply
by a constant into a series of shift, adds, and subtracts."

A multiply ``t = a * c`` is rewritten when ``c`` has at most three set
bits (so the replacement sequence of shifts and shifted adds is cheaper
than the target's multiply cost); a negative constant additionally
pays one negate.  The ARM barrel shifter makes ``t = t + (a << k)`` a
single legal instruction.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.function import Function
from repro.ir.instructions import Assign, Instruction
from repro.ir.operands import BinOp, Const, Reg, UnOp
from repro.machine.target import Target
from repro.opt.base import Phase


def _set_bits(value: int) -> List[int]:
    bits = []
    position = 0
    while value:
        if value & 1:
            bits.append(position)
        value >>= 1
        position += 1
    bits.reverse()  # most significant first
    return bits


def expand_multiply(dst: Reg, src: Reg, constant: int, target: Target) -> Optional[List[Instruction]]:
    """Shift/add sequence computing ``dst = src * constant``, or None.

    Requires ``dst != src`` (the destination doubles as accumulator).
    """
    if dst == src:
        return None
    if constant == 0:
        return [Assign(dst, Const(0))]
    negative = constant < 0
    magnitude = -constant if negative else constant
    bits = _set_bits(magnitude)
    cost = len(bits) + (1 if negative else 0)
    if cost >= target.MUL_COST:
        return None
    first, rest = bits[0], bits[1:]
    insts: List[Instruction] = []
    if first == 0:
        insts.append(Assign(dst, src))
    else:
        insts.append(Assign(dst, BinOp("lsl", src, Const(first))))
    for bit in rest:
        if bit == 0:
            insts.append(Assign(dst, BinOp("add", dst, src)))
        else:
            insts.append(
                Assign(dst, BinOp("add", dst, BinOp("lsl", src, Const(bit))))
            )
    if negative:
        insts.append(Assign(dst, UnOp("neg", dst)))
    return insts


class StrengthReduction(Phase):
    id = "q"
    name = "strength reduction"
    #: contract: requires nothing, establishes nothing, preserves
    #: every monotone invariant (see staticanalysis/contracts.py)
    contract_requires = ()
    contract_establishes = ()
    contract_breaks = ()

    def run(self, func: Function, target: Target) -> bool:
        changed = False
        for block in func.blocks:
            new_insts: List[Instruction] = []
            for inst in block.insts:
                expansion = self._try_expand(inst, target)
                if expansion is None:
                    new_insts.append(inst)
                else:
                    new_insts.extend(expansion)
                    changed = True
            block.insts = new_insts
        if changed:
            func.invalidate_analyses()
        return changed

    @staticmethod
    def _try_expand(inst: Instruction, target: Target) -> Optional[List[Instruction]]:
        if not isinstance(inst, Assign) or not isinstance(inst.dst, Reg):
            return None
        src = inst.src
        if (
            isinstance(src, BinOp)
            and src.op == "mul"
            and isinstance(src.left, Reg)
            and isinstance(src.right, Const)
            and isinstance(src.right.value, int)
        ):
            return expand_multiply(inst.dst, src.left, src.right.value, target)
        return None
