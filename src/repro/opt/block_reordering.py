"""Phase i — block reordering.

Table 1: "Removes a jump by reordering blocks when the target of the
jump has only a single predecessor."

Two cases:

- the jump target is already the next positional block: the jump is
  simply deleted;
- otherwise the target block is moved to just after the jumping block
  and the jump deleted.  The moved block must end in an explicit
  transfer (or fall through, in which case an explicit jump to its old
  positional successor is appended first).  Blocks ending in a
  conditional branch are not moved, since their fallthrough successor
  cannot move with them.
"""

from __future__ import annotations

from repro.analysis.cache import cfg_of
from repro.ir.function import Function
from repro.ir.instructions import CondBranch, Jump, Return
from repro.machine.target import Target
from repro.opt.base import Phase


class BlockReordering(Phase):
    id = "i"
    name = "block reordering"
    #: contract: requires nothing, establishes nothing, preserves
    #: every monotone invariant (see staticanalysis/contracts.py)
    contract_requires = ()
    contract_establishes = ()
    contract_breaks = ()

    def run(self, func: Function, target: Target) -> bool:
        changed = False
        while self._apply_once(func):
            changed = True
        return changed

    def _apply_once(self, func: Function) -> bool:
        cfg = cfg_of(func)
        for i, block in enumerate(func.blocks):
            term = block.terminator()
            if not isinstance(term, Jump):
                continue
            target_label = term.target
            if i + 1 < len(func.blocks) and func.blocks[i + 1].label == target_label:
                # Jump to the next positional block: delete it.
                block.insts.pop()
                func.invalidate_analyses()
                return True
            if target_label == func.entry.label:
                continue
            if len(cfg.preds.get(target_label, ())) != 1:
                continue
            if target_label == block.label:
                continue
            j = func.block_index(target_label)
            moved = func.blocks[j]
            moved_term = moved.terminator()
            if isinstance(moved_term, CondBranch):
                continue  # cannot carry its fallthrough along
            if moved_term is None:
                if j + 1 >= len(func.blocks):
                    continue
                moved.insts.append(Jump(func.blocks[j + 1].label))
            # Move the target block to just after the jumping block and
            # delete the jump.
            block.insts.pop()
            del func.blocks[j]
            insert_at = func.block_index(block.label) + 1
            func.blocks.insert(insert_at, moved)
            func.invalidate_analyses()
            return True
        return False
