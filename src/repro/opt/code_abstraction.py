"""Phase n — code abstraction.

Table 1: "Performs cross-jumping and code-hoisting to move identical
instructions from basic blocks to their common predecessor or
successor."

Cross-jumping: when every predecessor of a block reaches it
unconditionally (by jump or fallthrough) and all predecessors end with
the same instruction suffix, the suffix is moved into the successor.

Code hoisting: when both successors of a conditional branch have the
branching block as their only predecessor and begin with the same
instruction, that instruction is moved up into the branching block
(after its compare — a moved compare would clobber the condition code,
so compares are never hoisted).
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.cache import cfg_of
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Compare, CondBranch, Instruction, Jump
from repro.machine.target import Target
from repro.opt.base import Phase


class CodeAbstraction(Phase):
    id = "n"
    name = "code abstraction"
    #: contract: requires nothing, establishes nothing, preserves
    #: every monotone invariant (see staticanalysis/contracts.py)
    contract_requires = ()
    contract_establishes = ()
    contract_breaks = ()

    def run(self, func: Function, target: Target) -> bool:
        changed = False
        while self._cross_jump_once(func) or self._hoist_once(func):
            changed = True
        return changed

    # ------------------------------------------------------------------
    # Cross-jumping
    # ------------------------------------------------------------------

    def _cross_jump_once(self, func: Function) -> bool:
        cfg = cfg_of(func)
        for join in func.blocks:
            preds = cfg.preds.get(join.label, [])
            if len(preds) < 2 or join.label == func.entry.label:
                continue
            if join.label in preds:
                continue
            pred_blocks = [func.block(label) for label in preds]
            if any(not self._unconditionally_reaches(p, join.label, cfg) for p in pred_blocks):
                continue
            suffix_len = self._common_suffix_length(pred_blocks)
            if suffix_len == 0:
                continue
            model = pred_blocks[0]
            suffix = model.body()[-suffix_len:]
            for pred in pred_blocks:
                term = pred.terminator()
                keep = pred.body()[:-suffix_len]
                pred.insts = keep + ([term] if term is not None else [])
            join.insts[0:0] = suffix
            func.invalidate_analyses()
            return True
        return False

    @staticmethod
    def _unconditionally_reaches(pred: BasicBlock, label: str, cfg) -> bool:
        """True when *pred*'s only successor is *label* via jump/fallthrough."""
        term = pred.terminator()
        if isinstance(term, CondBranch):
            return False
        return cfg.succs.get(pred.label) == [label]

    @staticmethod
    def _common_suffix_length(preds: List[BasicBlock]) -> int:
        bodies = [p.body() for p in preds]
        limit = min(len(body) for body in bodies)
        length = 0
        while length < limit:
            candidate = bodies[0][-(length + 1)]
            if candidate.is_transfer:
                break
            if all(body[-(length + 1)] == candidate for body in bodies[1:]):
                length += 1
            else:
                break
        return length

    # ------------------------------------------------------------------
    # Code hoisting
    # ------------------------------------------------------------------

    def _hoist_once(self, func: Function) -> bool:
        cfg = cfg_of(func)
        for i, block in enumerate(func.blocks):
            term = block.terminator()
            if not isinstance(term, CondBranch):
                continue
            succs = cfg.succs.get(block.label, [])
            if len(succs) != 2:
                continue
            taken, fallthrough = func.block(succs[0]), func.block(succs[1])
            if cfg.preds.get(taken.label) != [block.label]:
                continue
            if cfg.preds.get(fallthrough.label) != [block.label]:
                continue
            hoisted = False
            while taken.insts and fallthrough.insts:
                first = taken.insts[0]
                if first != fallthrough.insts[0]:
                    break
                if first.is_transfer or isinstance(first, Compare):
                    break
                # Insert just before the conditional branch: the branch
                # reads the already-computed condition code, so the
                # instruction's effects are the same on both paths.
                block.insts.insert(len(block.insts) - 1, first)
                taken.insts.pop(0)
                fallthrough.insts.pop(0)
                hoisted = True
            if hoisted:
                func.invalidate_analyses()
                return True
        return False
