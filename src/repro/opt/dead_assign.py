"""Phase h — dead assignment elimination.

Table 1: "Uses global analysis to remove assignments when the assigned
value is never used."

Three kinds of dead assignments are removed:

- register assignments whose destination is not live afterwards;
- compares whose condition code is never read (the condition code is
  never live across a block boundary in this IR);
- stores to scalar frame slots that are never subsequently loaded
  (resolved through the frame-reference analysis, so stores made via
  address registers are handled).

Loads have no side effects on this target, so a dead load is removed
like any other dead assignment.
"""

from __future__ import annotations

from typing import List

from repro.analysis.cache import liveness_of, slot_liveness_of
from repro.ir.function import Function
from repro.ir.instructions import Assign, Compare, CondBranch, Instruction
from repro.ir.operands import Mem, Reg
from repro.machine.target import Target
from repro.opt.base import Phase


class DeadAssignmentElimination(Phase):
    id = "h"
    name = "dead assignment elimination"
    #: contract: requires nothing, establishes nothing, preserves
    #: every monotone invariant (see staticanalysis/contracts.py)
    contract_requires = ()
    contract_establishes = ()
    contract_breaks = ()

    def run(self, func: Function, target: Target) -> bool:
        changed = False
        while self._sweep(func):
            changed = True
        return changed

    def _sweep(self, func: Function) -> bool:
        liveness = liveness_of(func)
        slot_liveness = slot_liveness_of(func)
        frame_refs = slot_liveness.frame_refs
        removed = False
        for block in func.blocks:
            live_after = liveness.live_after_each(block.label)
            slots_after = slot_liveness.live_after_each(block.label)
            refs = frame_refs.refs[block.label]
            cc_read_later = self._cc_read_flags(block.insts)
            kept: List[Instruction] = []
            for i, inst in enumerate(block.insts):
                if isinstance(inst, Compare) and not cc_read_later[i]:
                    removed = True
                    continue
                if isinstance(inst, Assign):
                    if isinstance(inst.dst, Reg):
                        if inst.dst not in live_after[i]:
                            removed = True
                            continue
                    else:
                        ref = refs[i]
                        if (
                            not ref.wild_write
                            and len(ref.writes) == 1
                            and not (set(ref.writes) & slots_after[i])
                        ):
                            removed = True
                            continue
                kept.append(inst)
            if len(kept) != len(block.insts):
                block.insts = kept
                func.invalidate_analyses()
        return removed

    @staticmethod
    def _cc_read_flags(insts) -> List[bool]:
        """For each instruction, is the condition code it sets read later?"""
        flags = [False] * len(insts)
        needed = False
        for i in range(len(insts) - 1, -1, -1):
            inst = insts[i]
            if isinstance(inst, CondBranch):
                needed = True
            elif isinstance(inst, Compare):
                flags[i] = needed
                needed = False
        return flags
