"""Tests for switch statement support in mini-C."""

import pytest

from repro.frontend import compile_source
from repro.frontend.errors import CompileError
from repro.opt import apply_phase, phase_by_id
from repro.vm import Interpreter

CLASSIFY = """
int classify(int x) {
    int kind = 0;
    switch (x) {
    case 0:
    case 1:
        kind = 10;
        break;
    case 2:
        kind = 20;      /* falls through into case 3 */
    case 3:
        kind += 1;
        break;
    case -4:
        return 99;
    default:
        kind = -1;
    }
    return kind;
}
"""

EXPECTED = {0: 10, 1: 10, 2: 21, 3: 1, -4: 99, 7: -1, 100: -1}


def run(source, entry, args):
    return Interpreter(compile_source(source)).run(entry, args).value


class TestSemantics:
    @pytest.mark.parametrize("x,expected", sorted(EXPECTED.items()))
    def test_dispatch_fallthrough_and_default(self, x, expected):
        assert run(CLASSIFY, "classify", (x,)) == expected

    def test_switch_without_default_falls_out(self):
        src = """
        int f(int x) {
            int r = 7;
            switch (x) { case 1: r = 1; break; }
            return r;
        }
        """
        assert run(src, "f", (1,)) == 1
        assert run(src, "f", (2,)) == 7

    def test_empty_switch(self):
        src = "int f(int x) { switch (x) { } return 5; }"
        assert run(src, "f", (0,)) == 5

    def test_selector_evaluated_once(self):
        src = """
        int calls;
        int bump(void) { calls++; return 2; }
        int f(void) {
            calls = 0;
            switch (bump()) {
            case 1: return 100;
            case 2: return calls;
            default: return -1;
            }
        }
        """
        assert run(src, "f", ()) == 1

    def test_break_targets_switch_not_loop(self):
        src = """
        int f(int n) {
            int total = 0;
            int i;
            for (i = 0; i < n; i++) {
                switch (i % 3) {
                case 0: total += 100; break;
                case 1: break;
                default: total += 1;
                }
            }
            return total;
        }
        """
        # i = 0..5 -> +100, 0, +1, +100, 0, +1
        assert run(src, "f", (6,)) == 202

    def test_continue_inside_switch_targets_loop(self):
        src = """
        int f(int n) {
            int total = 0;
            int i;
            for (i = 0; i < n; i++) {
                switch (i & 1) {
                case 1: continue;
                }
                total += i;
            }
            return total;
        }
        """
        assert run(src, "f", (6,)) == 0 + 2 + 4

    def test_nested_switch(self):
        src = """
        int f(int a, int b) {
            switch (a) {
            case 1:
                switch (b) {
                case 1: return 11;
                default: return 10;
                }
            default:
                return 0;
            }
        }
        """
        assert run(src, "f", (1, 1)) == 11
        assert run(src, "f", (1, 5)) == 10
        assert run(src, "f", (2, 1)) == 0


class TestErrors:
    def test_duplicate_case(self):
        with pytest.raises(CompileError, match="duplicate case"):
            compile_source(
                "int f(int x) { switch (x) { case 1: break; case 1: break; } return 0; }"
            )

    def test_duplicate_default(self):
        with pytest.raises(CompileError, match="duplicate default"):
            compile_source(
                "int f(int x) { switch (x) { default: break; default: break; } return 0; }"
            )

    def test_stray_statement_in_switch(self):
        with pytest.raises(CompileError, match="expected 'case'"):
            compile_source("int f(int x) { switch (x) { x = 1; } return 0; }")

    def test_float_selector_rejected(self):
        with pytest.raises(CompileError, match="must be int"):
            compile_source(
                "int f(float x) { switch (x) { case 1: break; } return 0; }"
            )


class TestOptimizationInteraction:
    def test_phase_orders_preserve_switch_semantics(self):
        import random

        random.seed(20060325)
        for _trial in range(8):
            program = compile_source(CLASSIFY)
            func = program.function("classify")
            for phase_id in (random.choice("bcdghijklnoqrsu") for _ in range(10)):
                apply_phase(func, phase_by_id(phase_id))
            for x, expected in EXPECTED.items():
                assert Interpreter(program).run("classify", (x,)).value == expected
