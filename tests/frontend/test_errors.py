"""Regression tests for frontend error reporting and span rendering."""

import pytest

from repro.frontend import compile_source, parse
from repro.frontend.errors import CompileError, format_error, render_span


class TestRenderSpan:
    def test_caret_under_the_column(self):
        out = render_span("int x = oops;", 1, 9)
        line, marker = out.split("\n")
        assert line == "  int x = oops;"
        assert marker == "  " + " " * 8 + "^"

    def test_width_extends_with_tildes(self):
        out = render_span("return value;", 1, 8, width=5)
        assert out.endswith("^~~~~")

    def test_tabs_are_mirrored_in_the_marker_line(self):
        # The pad must reproduce tabs so the caret lands under the
        # token at any terminal tab width.
        source = "\tint\tx = y;"
        out = render_span(source, 1, 10)
        line, marker = out.split("\n")
        assert line == "  \tint\tx = y;"
        prefix = marker[: marker.index("^")]
        assert prefix.count("\t") == 2
        assert set(prefix) <= {" ", "\t"}

    def test_tab_after_caret_does_not_pad(self):
        out = render_span("x\t= 1;", 1, 1)
        __, marker = out.split("\n")
        assert marker == "  ^"

    def test_out_of_range_locations_render_nothing(self):
        assert render_span("one line", 0, 1) == ""
        assert render_span("one line", 2, 1) == ""
        assert render_span("one line", 99, 5) == ""

    def test_column_zero_clamps_to_first_column(self):
        out = render_span("abc", 1, 0)
        assert out.endswith("\n  ^")


class TestCompileErrorLocations:
    def test_line_and_column_in_message(self):
        error = CompileError("boom", 3, 7)
        assert str(error) == "boom at 3:7"

    def test_column_only_location_is_not_suppressed(self):
        # Regression: a zero line with a real column used to drop the
        # location entirely.
        error = CompileError("boom", 0, 7)
        assert "0:7" in str(error)

    def test_no_location(self):
        assert str(CompileError("boom")) == "boom"

    def test_format_error_includes_span(self):
        source = "int f() { return }"
        with pytest.raises(CompileError) as excinfo:
            parse(source)
        out = format_error(excinfo.value, source, "demo.c")
        assert out.startswith("demo.c:1:")
        assert "^" in out


class TestParserEofPositions:
    def test_unterminated_block_blames_the_opening_brace(self):
        source = "int f() { return 1;"
        with pytest.raises(CompileError) as excinfo:
            parse(source)
        error = excinfo.value
        # Anchored at the "{" that was never closed — a real source
        # position, not the zero-width end-of-file marker.
        assert (error.line, error.column) == (1, source.index("{") + 1)

    def test_expect_at_eof_blames_the_last_real_token(self):
        source = "int f(int a"
        with pytest.raises(CompileError) as excinfo:
            parse(source)
        error = excinfo.value
        assert error.line == 1
        assert error.column == len(source)  # the "a", not EOF
        assert "end of input" in error.message

    def test_eof_mid_expression(self):
        source = "int f() {\n    return 1 +"
        with pytest.raises(CompileError) as excinfo:
            parse(source)
        assert excinfo.value.line == 2
        assert excinfo.value.column == len("    return 1 +")

    def test_empty_source_still_has_a_position(self):
        with pytest.raises(CompileError):
            parse("int")


class TestEveryErrorCarriesAPosition:
    @pytest.mark.parametrize(
        "source",
        [
            "int f( { return 0; }",
            "int f() { int 3; }",
            "int f() { return 0 }",
            "int f() { @ }",
            "int f() { return y; }",
            "struct S; int f() { return 0; }",
        ],
    )
    def test_nonzero_line_and_column(self, source):
        with pytest.raises(CompileError) as excinfo:
            compile_source(source)
        assert excinfo.value.line > 0
        assert excinfo.value.column > 0
