"""Golden corpus for the semantic analyzer's diagnostic catalogue.

Every ``TYP0xx``/``SEM0xx`` code in the catalogue is pinned to at
least one minimal program that triggers it, with its reported
position.  The corpus is the compatibility contract: codes never
change meaning, so a refactor of the analyzer that shifts a code (or
loses a position) fails here, not in a user's build log.
"""

import pytest

from repro.frontend import compile_source, parse
from repro.frontend.errors import CompileError
from repro.frontend.sema import CATALOG, analyze
from repro.programs import PROGRAMS

#: (code, source, line, column) — one golden program per diagnostic.
#: Positions are 1-based and part of the contract.
GOLDEN = [
    (
        "TYP001",
        "int f() { int x; x = 1; int *p; p = &x; x = p + 0; return x; }",
        1, 43,
    ),
    (
        "TYP001",
        "int g; int f(float a) { int *p; p = &g; return p * 2; }",
        1, 50,
    ),
    (
        "TYP002",
        "int h(int a) { return a; } int f() { return h(1, 2); }",
        1, 45,
    ),
    (
        "TYP003",
        "int h(int *a) { return *a; } int f() { return h(3); }",
        1, 49,
    ),
    ("TYP004", "int f() { int x; x = 1; return *(&(x + 1)); }", 1, 34),
    ("TYP005", "int f() { int x; x = 1; return x[0]; }", 1, 32),
    ("TYP006", "int f() { struct Nope *p; return 0; }", 1, 11),
    (
        "TYP006",
        "struct S { int a; }; int f() { struct S s; s.a = 1; return s.b; }",
        1, 62,
    ),
    ("TYP007", "int f() { return y; }", 1, 18),
    ("TYP007", "int f() { return nosuch(1); }", 1, 18),
    ("TYP008", "int f() { int x; int x; return 0; }", 1, 18),
    ("TYP009", "void v() { } int f() { int x; x = v(); return x; }", 1, 35),
    ("TYP010", "void v() { return 3; }", 1, 12),
    (
        "TYP011",
        "struct S { int a; }; "
        "int f() { struct S s; s.a = 0; if (s) { return 1; } return 0; }",
        1, 57,
    ),
    (
        "TYP012",
        "struct S { int a; }; int f(struct S s) { return 0; }",
        1, 37,
    ),
    ("SEM001", "int f() { int x; return x; }", 1, 25),
    (
        "SEM002",
        "int f(int n) { int x; if (n) { x = 1; } return x; }",
        1, 48,
    ),
    ("SEM003", "int f(int n) { if (n) { return 1; } }", 1, 5),
]


class TestGoldenCorpus:
    @pytest.mark.parametrize(
        "code,source,line,column",
        GOLDEN,
        ids=[f"{row[0]}@{index}" for index, row in enumerate(GOLDEN)],
    )
    def test_code_and_position(self, code, source, line, column):
        result = analyze(parse(source))
        assert not result.ok
        first = result.errors[0]
        assert first.code == code
        assert (first.line, first.column) == (line, column)

    def test_every_catalogue_code_is_exercised(self):
        covered = {row[0] for row in GOLDEN}
        assert covered == set(CATALOG), (
            "catalogue codes without a golden program: "
            f"{sorted(set(CATALOG) - covered)}"
        )

    @pytest.mark.parametrize("code,source,line,column", GOLDEN[:1])
    def test_compile_source_raises_with_diagnostics(
        self, code, source, line, column
    ):
        with pytest.raises(CompileError) as excinfo:
            compile_source(source)
        error = excinfo.value
        assert error.line == line and error.column == column
        assert str(error).startswith(code)
        assert error.diagnostics[0].code == code

    def test_positions_are_always_nonzero(self):
        for __, source, __, __ in GOLDEN:
            for diagnostic in analyze(parse(source)).diagnostics:
                assert diagnostic.line > 0, diagnostic
                assert diagnostic.column > 0, diagnostic


class TestSeedsPassTheGate:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_zero_diagnostics(self, name):
        result = analyze(parse(PROGRAMS[name].source))
        assert result.diagnostics == []


class TestAnalyzeNeverRaises:
    @pytest.mark.parametrize(
        "source",
        [
            "int f() { return g(h(1), *3, s.x); }",
            "struct S { int a; }; int f() { struct S s; return s; }",
            "int f() { int *p; return **p; }",
            "void v() { } int f() { return v() + v(); }",
        ],
    )
    def test_cascading_errors_accumulate(self, source):
        result = analyze(parse(source))
        assert not result.ok  # reported, not raised
