"""Unit tests for the mini-C lexer."""

import pytest

from repro.frontend.errors import CompileError
from repro.frontend.lexer import Token, tokenize


def kinds_and_values(source):
    return [(t.kind, t.value) for t in tokenize(source) if t.kind != "eof"]


class TestNumbers:
    def test_decimal_and_hex(self):
        assert kinds_and_values("42 0x2A 0XFF") == [
            ("int", 42),
            ("int", 42),
            ("int", 255),
        ]

    def test_floats(self):
        assert kinds_and_values("1.5 2. 3e2 1.5e-1") == [
            ("float", 1.5),
            ("float", 2.0),
            ("float", 300.0),
            ("float", 0.15),
        ]

    def test_float_f_suffix(self):
        assert kinds_and_values("1.5f") == [("float", 1.5)]

    def test_char_literals(self):
        assert kinds_and_values(r"'a' '\n' '\\' '\0'") == [
            ("int", 97),
            ("int", 10),
            ("int", 92),
            ("int", 0),
        ]

    def test_unterminated_char_rejected(self):
        with pytest.raises(CompileError):
            tokenize("'ab'")


class TestIdentifiersAndKeywords:
    def test_keywords_recognized(self):
        assert kinds_and_values("int while forx") == [
            ("keyword", "int"),
            ("keyword", "while"),
            ("ident", "forx"),
        ]

    def test_underscores(self):
        assert kinds_and_values("_a a_b2") == [("ident", "_a"), ("ident", "a_b2")]


class TestOperators:
    def test_maximal_munch(self):
        assert [v for _, v in kinds_and_values("a<<=b")] == ["a", "<<=", "b"]
        assert [v for _, v in kinds_and_values("a<<b")] == ["a", "<<", "b"]
        assert [v for _, v in kinds_and_values("a<b")] == ["a", "<", "b"]
        assert [v for _, v in kinds_and_values("a++ +b")] == ["a", "++", "+", "b"]

    def test_unknown_character_rejected(self):
        with pytest.raises(CompileError, match="unexpected character"):
            tokenize("a $ b")


class TestCommentsAndPositions:
    def test_line_comments_skipped(self):
        assert kinds_and_values("a // comment\n b") == [
            ("ident", "a"),
            ("ident", "b"),
        ]

    def test_block_comments_skipped(self):
        assert kinds_and_values("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment_rejected(self):
        with pytest.raises(CompileError, match="unterminated comment"):
            tokenize("a /* oops")

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nbb\n  c")
        positions = [(t.value, t.line, t.column) for t in tokens if t.kind == "ident"]
        assert positions == [("a", 1, 1), ("bb", 2, 1), ("c", 3, 3)]

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "eof"
