"""Tests for the property-based program generator and its shrinker."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frontend import CompileError, compile_source
from repro.frontend.fuzz import fuzz_source, generate_source, minimize_lines
from repro.ir.flat import from_flat, to_flat
from repro.ir.printer import format_function
from repro.staticanalysis import sanitize_program
from repro.vm import Interpreter


class TestDeterminism:
    def test_same_seed_and_index_is_byte_identical(self):
        for index in range(10):
            assert fuzz_source(3, index) == fuzz_source(3, index)

    def test_indices_are_independent_of_stream_position(self):
        # Program k never depends on programs 0..k-1 having been
        # generated; failures reproduce in isolation.
        late = fuzz_source(5, 17)
        for index in range(5):
            fuzz_source(5, index)
        assert fuzz_source(5, 17) == late

    def test_streams_differ_across_seeds_and_indices(self):
        sources = {fuzz_source(0, i) for i in range(8)}
        sources |= {fuzz_source(1, i) for i in range(8)}
        assert len(sources) > 8


class TestGeneratedPrograms:
    @pytest.mark.parametrize("index", range(12))
    def test_pipeline_clean(self, index):
        """The generator's whole contract, end to end: zero semantic
        diagnostics, zero sanitizer findings, and a VM run that
        terminates (no UB trips the interpreter's guards)."""
        source = fuzz_source(11, index)
        program = compile_source(source)  # raises on any diagnostic
        assert sanitize_program(program, mode="full") == []
        Interpreter(program, fuel=2_000_000).run("main")

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_round_trip_property(self, seed):
        """Compilation is a pure function of the source text, and the
        flat-IR round trip preserves every function bit-for-bit,
        including the frontend's memory facts."""
        source = fuzz_source(seed, 0)
        first = compile_source(source)
        second = compile_source(source)
        assert list(first.functions) == list(second.functions)
        for name, func in first.functions.items():
            twin = second.functions[name]
            assert format_function(func) == format_function(twin)
            assert func.mem_facts == twin.mem_facts
            rebuilt = from_flat(to_flat(func))
            assert format_function(rebuilt) == format_function(func)
            assert rebuilt.mem_facts == func.mem_facts

    def test_generate_source_uses_only_the_given_rng(self):
        import random

        assert generate_source(random.Random(42)) == generate_source(
            random.Random(42)
        )


class TestMinimizeLines:
    def test_reduces_to_the_failing_lines(self):
        source = "\n".join(f"line{i}" for i in range(40)) + "\n"

        def failing(text):
            return "line7" in text and "line31" in text

        reduced = minimize_lines(source, failing)
        assert reduced == "line7\nline31\n"

    def test_requires_a_failing_input(self):
        with pytest.raises(ValueError):
            minimize_lines("fine\n", lambda text: False)

    def test_single_line_input(self):
        assert minimize_lines("bad\n", lambda text: "bad" in text) == "bad\n"

    def test_shrinks_a_compile_failure(self):
        source = (
            "int g;\n"
            "int f() {\n"
            "    int x;\n"
            "    x = 1;\n"
            "    return x + y;\n"
            "}\n"
        )

        def failing(text):
            try:
                compile_source(text)
            except CompileError as error:
                return "undeclared" in error.message
            return False

        reduced = minimize_lines(source, failing)
        assert "y" in reduced
        assert len(reduced.splitlines()) < len(source.splitlines())

    def test_result_is_one_minimal(self):
        source = "\n".join(f"l{i}" for i in range(16)) + "\n"

        def failing(text):
            return "l3" in text and "l4" in text and "l11" in text

        reduced = minimize_lines(source, failing)
        lines = reduced.splitlines()
        for index in range(len(lines)):
            candidate = "\n".join(
                lines[:index] + lines[index + 1:]
            ) + "\n"
            assert not failing(candidate)
