"""Unit tests for naive code generation (shape and semantics)."""

import pytest

from repro.frontend import compile_source
from repro.frontend.errors import CompileError
from repro.ir.cfg import validate_function
from repro.ir.instructions import Assign, Call, Jump
from repro.ir.operands import Mem, Sym
from repro.vm import Interpreter


def run(source, entry, args=()):
    program = compile_source(source)
    return Interpreter(program).run(entry, args).value


class TestShapes:
    def test_locals_live_on_the_stack(self):
        program = compile_source("int f(int x) { int y = x; return y; }")
        func = program.function("f")
        stores = [
            inst
            for inst in func.instructions()
            if isinstance(inst, Assign) and isinstance(inst.dst, Mem)
        ]
        # one store for the parameter, one for the local
        assert len(stores) == 2

    def test_globals_use_hi_lo_pairs(self):
        program = compile_source("int g; int f(void) { return g; }")
        func = program.function("f")
        syms = [
            node
            for inst in func.instructions()
            if isinstance(inst, Assign)
            for node in inst.src.walk()
            if isinstance(node, Sym)
        ]
        assert {sym.part for sym in syms} == {"hi", "lo"}

    def test_every_function_validates(self):
        program = compile_source(
            """
            int a[4];
            int f(int x) { if (x) return 1; return 2; }
            void g(void) { int i; for (i = 0; i < 4; i++) a[i] = i; }
            """
        )
        for func in program.functions.values():
            validate_function(func)

    def test_no_unreachable_trailing_jump_after_return(self):
        # Phase d should be dormant on straight-line frontend output.
        from repro.opt import phase_by_id, apply_phase, implicit_cleanup

        program = compile_source("int f(int x) { return x; }")
        func = program.function("f")
        implicit_cleanup(func)
        assert not apply_phase(func, phase_by_id("d"))

    def test_large_constants_composed(self):
        program = compile_source("int f(void) { return 0x12345678; }")
        assert Interpreter(program).run("f").value == 0x12345678


class TestSemantics:
    def test_arithmetic(self):
        src = "int f(int a, int b) { return (a + b) * (a - b) / 2 % 7; }"
        assert run(src, "f", (10, 4)) == (14 * 6 // 2) % 7

    def test_division_truncates_toward_zero(self):
        src = "int f(int a, int b) { return a / b; }"
        assert run(src, "f", (-7, 2)) == -3
        assert run(src, "f", (7, -2)) == -3

    def test_comparisons_as_values(self):
        src = "int f(int a, int b) { return (a < b) + (a == a) * 10; }"
        assert run(src, "f", (1, 2)) == 11
        assert run(src, "f", (3, 2)) == 10

    def test_short_circuit_evaluation(self):
        src = """
        int calls;
        int bump(void) { calls = calls + 1; return 1; }
        int f(int x) {
            calls = 0;
            if (x && bump()) return calls;
            return calls + 100;
        }
        """
        assert run(src, "f", (1,)) == 1
        assert run(src, "f", (0,)) == 100  # bump() not evaluated

    def test_logical_not(self):
        src = "int f(int x) { return !x * 10 + !!x; }"
        assert run(src, "f", (0,)) == 10
        assert run(src, "f", (7,)) == 1

    def test_while_and_break_continue(self):
        src = """
        int f(int n) {
            int total = 0;
            int i = 0;
            while (1) {
                i++;
                if (i > n) break;
                if (i % 2) continue;
                total += i;
            }
            return total;
        }
        """
        assert run(src, "f", (10,)) == 2 + 4 + 6 + 8 + 10

    def test_do_while_runs_once(self):
        src = "int f(void) { int n = 0; do n++; while (0); return n; }"
        assert run(src, "f") == 1

    def test_for_loop_with_compound_step(self):
        src = """
        int f(int n) {
            int s = 0;
            int i;
            for (i = 0; i < n; i += 3) s += i;
            return s;
        }
        """
        assert run(src, "f", (10,)) == 0 + 3 + 6 + 9

    def test_incdec_prefix_vs_postfix(self):
        src = """
        int f(void) {
            int x = 5;
            int a = x++;
            int b = ++x;
            return a * 100 + b * 10 + x;
        }
        """
        assert run(src, "f") == 5 * 100 + 7 * 10 + 7

    def test_arrays_and_params(self):
        src = """
        int fill(int xs[], int n) {
            int i;
            for (i = 0; i < n; i++) xs[i] = i * i;
            return 0;
        }
        int buf[8];
        int f(void) {
            int i;
            int s = 0;
            fill(buf, 8);
            for (i = 0; i < 8; i++) s += buf[i];
            return s;
        }
        """
        assert run(src, "f") == sum(i * i for i in range(8))

    def test_local_arrays(self):
        src = """
        int f(int n) {
            int tmp[4];
            int i;
            int s = 0;
            for (i = 0; i < 4; i++) tmp[i] = n + i;
            for (i = 0; i < 4; i++) s += tmp[i];
            return s;
        }
        """
        assert run(src, "f", (10,)) == 10 + 11 + 12 + 13

    def test_recursion(self):
        src = "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }"
        assert run(src, "fact", (6,)) == 720

    def test_float_arithmetic_and_conversion(self):
        src = """
        float half(float x) { return x / 2.0; }
        int f(int n) {
            float r = half(n) + 0.25;
            int out = r * 100.0;
            return out;
        }
        """
        assert run(src, "f", (7,)) == int((7 / 2.0 + 0.25) * 100)

    def test_global_initializers(self):
        src = """
        int scale = 3;
        int table[4] = {10, 20, 30};
        int f(void) { return scale * table[1] + table[3]; }
        """
        assert run(src, "f") == 60

    def test_compound_shift_and_bitwise_assignments(self):
        src = """
        int f(int x) {
            x <<= 2;
            x |= 5;
            x &= 0xff;
            x ^= 3;
            x >>= 1;
            x %= 100;
            return x;
        }
        """
        x = 0x1234
        expected = x
        expected <<= 2
        expected |= 5
        expected &= 0xFF
        expected ^= 3
        expected >>= 1
        expected %= 100
        assert run(src, "f", (x,)) == expected

    def test_bitwise_and_shifts(self):
        src = "int f(int x) { return ((x << 3) | 5) & ~(x >> 1) ^ 9; }"
        x = 0x1234
        assert run(src, "f", (x,)) == (((x << 3) | 5) & ~(x >> 1)) ^ 9


class TestSemanticErrors:
    def test_undeclared_identifier(self):
        with pytest.raises(CompileError, match="undeclared"):
            compile_source("int f(void) { return nope; }")

    def test_undeclared_function(self):
        with pytest.raises(CompileError, match="undeclared function"):
            compile_source("int f(void) { return g(); }")

    def test_wrong_arity(self):
        with pytest.raises(CompileError, match="expects"):
            compile_source("int g(int x) { return x; } int f(void) { return g(); }")

    def test_return_value_from_void(self):
        with pytest.raises(CompileError):
            compile_source("void f(void) { return 1; }")

    def test_missing_return_value(self):
        with pytest.raises(CompileError):
            compile_source("int f(void) { return; }")

    def test_float_modulo_rejected(self):
        with pytest.raises(CompileError):
            compile_source("int f(float x) { return x % 2; }")

    def test_assign_to_array_rejected(self):
        with pytest.raises(CompileError):
            compile_source("int a[4]; void f(void) { a = 1; }")

    def test_index_of_scalar_rejected(self):
        with pytest.raises(CompileError, match="not an array"):
            compile_source("int x; int f(void) { return x[0]; }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="break outside"):
            compile_source("void f(void) { break; }")

    def test_too_many_parameters(self):
        with pytest.raises(CompileError, match="at most 4"):
            compile_source("int f(int a, int b, int c, int d, int e) { return a; }")

    def test_redeclaration(self):
        with pytest.raises(CompileError, match="redeclaration"):
            compile_source("int f(void) { int x; int x; return 0; }")
