"""Unit tests for the mini-C parser."""

import pytest

from repro.frontend import ast
from repro.frontend.errors import CompileError
from repro.frontend.parser import parse


class TestTopLevel:
    def test_function_and_global(self):
        unit = parse("int g = 5; int f(int x) { return x; }")
        assert [d.name for d in unit.globals] == ["g"]
        assert unit.globals[0].init == [5]
        assert [f.name for f in unit.functions] == ["f"]

    def test_global_array_with_initializer(self):
        unit = parse("int a[3] = {1, -2, 3};")
        decl = unit.globals[0]
        assert decl.array_size == 3
        assert decl.init == [1, -2, 3]

    def test_void_parameter_list(self):
        unit = parse("void f(void) { }")
        assert unit.functions[0].params == []

    def test_array_parameter(self):
        unit = parse("int f(int xs[], int n) { return xs[n]; }")
        params = unit.functions[0].params
        assert params[0].is_array and not params[1].is_array

    def test_void_global_rejected(self):
        with pytest.raises(CompileError):
            parse("void g;")

    def test_bad_array_size_rejected(self):
        with pytest.raises(CompileError):
            parse("int a[0];")


class TestStatements:
    def _body(self, text):
        return parse("void f(void) { %s }" % text).functions[0].body.stmts

    def test_if_else(self):
        (stmt,) = self._body("if (1) ; else ;")
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.else_body is not None

    def test_dangling_else_binds_inner(self):
        (stmt,) = self._body("if (1) if (2) ; else ;")
        assert stmt.else_body is None
        assert stmt.then_body.else_body is not None

    def test_loops(self):
        stmts = self._body("while (1) ; do ; while (0); for (;;) break;")
        assert isinstance(stmts[0], ast.WhileStmt)
        assert isinstance(stmts[1], ast.DoWhileStmt)
        assert isinstance(stmts[2], ast.ForStmt)
        assert stmts[2].cond is None

    def test_local_decl_with_init(self):
        (stmt,) = self._body("int x = 1 + 2;")
        assert isinstance(stmt, ast.DeclStmt)
        assert isinstance(stmt.init, ast.Binary)

    def test_unterminated_block_rejected(self):
        with pytest.raises(CompileError, match="unterminated block"):
            parse("void f(void) { if (1) {")


class TestExpressions:
    def _expr(self, text):
        body = parse("void f(void) { %s; }" % text).functions[0].body.stmts
        return body[0].expr

    def test_precedence(self):
        expr = self._expr("x = 1 + 2 * 3")
        assert isinstance(expr, ast.AssignExpr)
        add = expr.value
        assert add.op == "+" and add.right.op == "*"

    def test_left_associativity(self):
        expr = self._expr("x = 10 - 3 - 2")
        assert expr.value.op == "-"
        assert expr.value.left.op == "-"

    def test_logical_operators_loosest(self):
        expr = self._expr("x = a < b && c < d || e")
        assert expr.value.op == "||"
        assert expr.value.left.op == "&&"

    def test_unary_chains(self):
        expr = self._expr("x = -~y")
        assert expr.value.op == "-" and expr.value.operand.op == "~"

    def test_compound_assignment(self):
        expr = self._expr("x += 2")
        assert isinstance(expr, ast.AssignExpr) and expr.op == "+="

    def test_incdec_forms(self):
        pre = self._expr("++x")
        post = self._expr("x++")
        assert pre.prefix and not post.prefix

    def test_call_with_args(self):
        expr = self._expr("g(1, x, h())")
        assert isinstance(expr, ast.CallExpr)
        assert len(expr.args) == 3

    def test_assignment_to_rvalue_rejected(self):
        with pytest.raises(CompileError, match="non-lvalue"):
            parse("void f(void) { 1 = 2; }")

    def test_incdec_on_rvalue_rejected(self):
        with pytest.raises(CompileError):
            parse("void f(void) { ++1; }")

    def test_assignment_right_associative(self):
        expr = self._expr("x = y = 1")
        assert isinstance(expr.value, ast.AssignExpr)
