"""Smoke checks on the example scripts.

The examples take minutes to run in full, so the suite verifies that
every example parses, imports against the current API, and exposes a
``main``; one fast example is executed end-to-end.
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert {
        "quickstart.py",
        "remapping_demo.py",
        "interaction_analysis.py",
        "probabilistic_compiler.py",
        "explore_benchmark.py",
        "dynamic_inference.py",
        "genetic_search.py",
        "no_universal_order.py",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), path.name


def test_fast_example_runs_end_to_end(tmp_path):
    # remapping_demo is the quickest example with a real result.
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "remapping_demo.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert "distinct instances" in result.stdout
