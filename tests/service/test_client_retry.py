"""Retry-After parsing must never kill the retry loop.

Regression: the body's ``retry_after`` is attacker/proxy-shaped data —
an HTTP-date or garbage string used to escape ``float()`` and raise
``ValueError`` out of :meth:`ServiceClient.request`, turning a polite
backoff hint into a crash on the first transient response.
"""

from __future__ import annotations

import pytest

from repro.robustness.retry import RetryError, RetryPolicy
from repro.service.client import (
    ServiceClient,
    TransientServiceError,
    parse_retry_after,
)


class TestParseRetryAfter:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (3, 3.0),
            (0, 0.0),
            (1.5, 1.5),
            ("3", 3.0),
            (" 2.5 ", 2.5),
            ("0", 0.0),
        ],
    )
    def test_numeric_hints_parse(self, value, expected):
        assert parse_retry_after(value) == expected

    @pytest.mark.parametrize(
        "value",
        [
            None,
            "Wed, 21 Oct 2015 07:28:00 GMT",  # HTTP-date form
            "soon",
            "",
            "-5",
            -1,
            "inf",
            "nan",
            float("inf"),
            float("nan"),
            True,
            ["3"],
            {"seconds": 3},
        ],
    )
    def test_unusable_hints_fall_back_to_none(self, value):
        assert parse_retry_after(value) is None


def _client(**kwargs):
    return ServiceClient(
        "localhost",
        0,
        policy=RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.02),
        sleep=lambda _delay: None,
        **kwargs,
    )


def test_http_date_retry_after_does_not_crash_the_retry_loop(monkeypatch):
    client = _client()
    attempts = []

    def fake_once(method, path, payload):
        attempts.append(1)
        raise TransientServiceError(
            503,
            {
                "error": "draining",
                "retry_after": "Wed, 21 Oct 2015 07:28:00 GMT",
            },
        )

    monkeypatch.setattr(client, "_once", fake_once)
    with pytest.raises(RetryError):
        client.request("POST", "/enumerate", {"function": "f"})
    # Before the fix a ValueError escaped on the FIRST attempt; the
    # loop must instead run the policy dry.
    assert len(attempts) == 3


def test_numeric_string_retry_after_stretches_the_delay(monkeypatch):
    delays = []
    client = ServiceClient(
        "localhost",
        0,
        policy=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.02),
        sleep=delays.append,
    )

    def fake_once(method, path, payload):
        raise TransientServiceError(
            429, {"error": "shed", "retry_after": "7"}
        )

    monkeypatch.setattr(client, "_once", fake_once)
    with pytest.raises(RetryError):
        client.request("POST", "/enumerate", {"function": "f"})
    assert delays == [7.0]


def test_error_attribute_is_normalized_at_construction():
    error = TransientServiceError(503, {"retry_after": "garbage"})
    assert error.retry_after is None
    error = TransientServiceError(503, {"retry_after": "2"})
    assert error.retry_after == 2.0
