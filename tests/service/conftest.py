"""Shared fixture: a real ``repro serve`` instance in a subprocess.

Each test that needs a live server calls the ``service`` factory with
whatever :class:`~repro.service.server.ServiceConfig` overrides it
wants and gets back a handle (port, run dir, client maker, process).
Servers run as genuine subprocesses so signal handling, drain, and
executor lifecycle are exercised for real — the chaos tests kill
actual processes.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service.client import ServiceClient

_DRIVER = """\
import json, sys
from repro.service.server import ServiceConfig, serve_main
sys.exit(serve_main(ServiceConfig(**json.loads(sys.argv[1]))))
"""

#: fast settling for tests: retry quickly, drain quickly
FAST = {
    "read_timeout": 5.0,
    "exec_grace": 3.0,
    "drain_grace": 10.0,
}


class ServerHandle:
    def __init__(self, proc, run_dir, port):
        self.proc = proc
        self.run_dir = run_dir
        self.port = port

    def client(self, **kwargs) -> ServiceClient:
        kwargs.setdefault("timeout", 60.0)
        return ServiceClient("127.0.0.1", self.port, **kwargs)

    def status(self) -> dict:
        return self.client().status()

    def signal(self, signum=signal.SIGTERM) -> None:
        self.proc.send_signal(signum)

    def wait(self, timeout=30.0) -> int:
        return self.proc.wait(timeout=timeout)

    def stop(self, timeout=30.0) -> int:
        """Graceful drain; escalates to SIGKILL if the grace fails."""
        if self.proc.poll() is not None:
            return self.proc.returncode
        self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return self.proc.wait(timeout=10.0)

    def journal_path(self) -> str:
        return os.path.join(self.run_dir, "events.jsonl")

    def journal(self):
        with open(self.journal_path(), encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]


def _start(run_dir: str, **overrides) -> ServerHandle:
    config = {"run_dir": run_dir, "port": 0, **FAST, **overrides}
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")])
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _DRIVER, json.dumps(config)],
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    # The server writes service.json after binding; poll for it rather
    # than parse stdout (no pipe-deadlock risk).
    service_file = os.path.join(run_dir, "service.json")
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"server died at startup (rc={proc.returncode}):\n"
                f"{proc.stderr.read()}"
            )
        if os.path.exists(service_file):
            try:
                with open(service_file, encoding="utf-8") as handle:
                    facts = json.load(handle)
                # a restarted run dir still holds the previous server's
                # announce file; only trust one naming *this* process
                if facts.get("pid") == proc.pid:
                    return ServerHandle(proc, run_dir, facts["port"])
            except (ValueError, KeyError):
                pass  # mid-write; retry
        time.sleep(0.02)
    proc.kill()
    raise RuntimeError("server did not announce within 30s")


@pytest.fixture
def service(tmp_path):
    """Factory: ``service(**config_overrides) -> ServerHandle``."""
    handles = []
    counter = [0]

    def start(run_dir=None, **overrides):
        counter[0] += 1
        if run_dir is None:
            run_dir = str(tmp_path / f"svc{counter[0]}")
        handle = _start(run_dir, **overrides)
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        if handle.proc.poll() is None:
            handle.proc.kill()
            handle.proc.wait(timeout=10.0)
        if handle.proc.stderr:
            handle.proc.stderr.close()


def wait_for(predicate, timeout=20.0, interval=0.05, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")
