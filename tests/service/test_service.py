"""Live-server integration tests: request kinds, admission, coalescing.

Each test drives a real ``repro serve`` subprocess through the bundled
:class:`~repro.service.client.ServiceClient`.  The structural claims —
shed requests carry Retry-After, coalesced requests share one
execution and one store write, service DAGs are bit-identical to
serial enumeration — are all asserted against observable state: HTTP
responses, the run dir's journal, and the store directory.
"""

import os
import threading

import pytest

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.robustness.retry import RetryError, RetryPolicy
from repro.service.client import ServiceError, TransientServiceError
from repro.service.executor import _dag_fingerprint
from tests.parallel.conftest import bench_function
from tests.service.conftest import wait_for

SOURCE = "int add3(int x) { return x + 3; }"


def serial_fingerprint(bench, name, **config):
    result = enumerate_space(
        bench_function(bench, name), EnumerationConfig(**config)
    )
    return _dag_fingerprint(result.dag), result


class TestRequestKinds:
    def test_enumerate_matches_serial_bit_identically(self, service):
        server = service()
        response = server.client().enumerate(
            benchmark="sha", function="rol", config={"max_nodes": 2000}
        )
        assert response["completed"] is True
        expected, reference = serial_fingerprint("sha", "rol", max_nodes=2000)
        assert response["instances"] == len(reference.dag)
        assert response["dag_fingerprint"] == expected
        assert response["request_id"].startswith("r")

    def test_include_dag_returns_the_space(self, service):
        server = service()
        response = server.client().enumerate(
            benchmark="fft",
            function="fcos",
            include_dag=True,
            config={"max_nodes": 2000},
        )
        assert response["dag"]["nodes"]
        assert len(response["dag"]["nodes"]) == response["instances"]

    def test_compile(self, service):
        server = service()
        response = server.client().compile(
            benchmark="sha", function="rol", sequence="sck"
        )
        row = response["functions"]["rol"]
        assert row["instructions"] > 0
        assert set(row["active"]) <= set("sck")
        assert row["rtl"].strip().splitlines()[0].endswith(":")

    def test_interactions(self, service):
        server = service()
        response = server.client().interactions(
            source=SOURCE, config={"max_nodes": 500}
        )
        assert "add3" in response["functions"]
        assert "enabl" in response["tables"]["enabling"].lower()

    def test_status_endpoint(self, service):
        server = service()
        status = server.status()
        assert status["status"] == "serving"
        assert status["counters"]["admitted"] == 0
        assert status["port"] == server.port


class TestStructuredErrors:
    def test_compile_error_is_400(self, service):
        server = service()
        with pytest.raises(ServiceError) as info:
            server.client().enumerate(source="int {", function="f")
        assert info.value.status == 400
        assert info.value.error == "compile_error"

    def test_unknown_function_is_400(self, service):
        server = service()
        with pytest.raises(ServiceError) as info:
            server.client().enumerate(source=SOURCE, function="nope")
        assert info.value.status == 400
        assert info.value.error == "unknown_function"
        assert "add3" in info.value.detail

    def test_bad_config_is_400(self, service):
        server = service()
        with pytest.raises(ServiceError) as info:
            server.client().enumerate(
                source=SOURCE, function="add3", config={"bogus": 1}
            )
        assert info.value.status == 400
        assert info.value.error == "bad_request"

    def test_unknown_path_is_404(self, service):
        server = service()
        with pytest.raises(ServiceError) as info:
            server.client().request("POST", "/fry", {"source": SOURCE})
        assert info.value.status == 404


class TestSharedStore:
    def test_second_request_hits_the_store(self, service):
        server = service()
        client = server.client()
        first = client.enumerate(
            benchmark="jpeg", function="descale", config={"max_nodes": 2000}
        )
        second = client.enumerate(
            benchmark="jpeg", function="descale", config={"max_nodes": 2000}
        )
        assert first["store_hit"] is False
        assert second["store_hit"] is True
        assert second["dag_fingerprint"] == first["dag_fingerprint"]

    def test_store_is_shared_with_different_budgets(self, service):
        # Budgets are excluded from the store signature: a completed
        # space under any budget serves every later request.
        server = service()
        client = server.client()
        first = client.enumerate(
            benchmark="fft", function="fcos", config={"max_nodes": 5000}
        )
        second = client.enumerate(
            benchmark="fft", function="fcos", config={"max_nodes": 4999}
        )
        assert second["store_hit"] is True
        assert second["dag_fingerprint"] == first["dag_fingerprint"]


class TestCoalescing:
    def test_identical_concurrent_requests_share_one_execution(self, service):
        """Two simultaneous requests for the same function+config must
        not double-compute or interleave store writes: one executor
        runs, one store entry is written, and both responses are
        bit-identical to a serial enumeration."""
        server = service(workers=4)
        responses = [None, None]
        errors = []

        def fire(index):
            try:
                responses[index] = server.client().enumerate(
                    benchmark="stringsearch",
                    function="set_pattern",
                    config={"max_nodes": 2000},
                )
            except Exception as error:  # surface in the main thread
                errors.append(error)

        threads = [
            threading.Thread(target=fire, args=(index,)) for index in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert all(response is not None for response in responses)

        expected, _ = serial_fingerprint(
            "stringsearch", "set_pattern", max_nodes=2000
        )
        for response in responses:
            assert response["completed"] is True
            assert response["dag_fingerprint"] == expected
        assert [r.get("coalesced", False) for r in responses].count(True) == 1

        # exactly one execution: one admitted + one coalesced in the
        # journal, and a single space entry in the shared store
        events = [record["event"] for record in server.journal()]
        assert events.count("request_admitted") == 1
        assert events.count("request_coalesced") == 1
        store_dir = os.path.join(server.run_dir, "store")
        spaces = [
            name
            for name in os.listdir(store_dir)
            if name.endswith(".json") and not name.startswith("memo-")
        ]
        assert len(spaces) == 1
        memos = [
            name
            for name in os.listdir(store_dir)
            if name.startswith("memo-")
        ]
        assert len(memos) <= 1


class TestLoadShedding:
    def test_rate_limit_sheds_with_retry_after(self, service):
        server = service(tenant_rate=0.1, tenant_burst=1.0)
        client = server.client(policy=RetryPolicy(max_attempts=1))
        client.compile(benchmark="sha", function="rol")
        with pytest.raises(RetryError) as info:
            client.compile(benchmark="sha", function="rol")
        shed = info.value.last_error
        assert isinstance(shed, TransientServiceError)
        assert shed.status == 429
        assert shed.error == "rate_limited"
        assert shed.retry_after is not None and shed.retry_after > 0

    def test_tenants_are_isolated(self, service):
        server = service(tenant_rate=0.1, tenant_burst=1.0)
        noisy = server.client(
            tenant="noisy", policy=RetryPolicy(max_attempts=1)
        )
        polite = server.client(
            tenant="polite", policy=RetryPolicy(max_attempts=1)
        )
        noisy.compile(benchmark="sha", function="rol")
        with pytest.raises(RetryError):
            noisy.compile(benchmark="sha", function="rol")
        # the other tenant's bucket is untouched
        polite.compile(benchmark="sha", function="rol")

    def test_memory_watermark_sheds_503(self, service):
        # Any real process is over a 1 MB watermark, so everything sheds.
        server = service(memory_watermark_mb=1.0)
        client = server.client(policy=RetryPolicy(max_attempts=1))
        with pytest.raises(RetryError) as info:
            client.compile(benchmark="sha", function="rol")
        shed = info.value.last_error
        assert isinstance(shed, TransientServiceError)
        assert shed.status == 503
        assert shed.error == "memory_pressure"

    def test_retrying_client_rides_through_shedding(self, service):
        # The bundled client + Retry-After turn a shed into a delay,
        # not a failure.
        server = service(tenant_rate=2.0, tenant_burst=1.0)
        client = server.client(
            policy=RetryPolicy(max_attempts=6, base_delay=0.2, max_delay=2.0)
        )
        for _ in range(3):
            response = client.compile(benchmark="sha", function="rol")
            assert response["functions"]


class TestJournal:
    def test_request_ids_thread_into_the_journal(self, service):
        server = service()
        client = server.client()
        response = client.enumerate(
            benchmark="fft", function="fcos", config={"max_nodes": 1000}
        )
        request_id = response["request_id"]
        assert request_id in client.request_ids
        journal = server.journal()
        admitted = [
            record
            for record in journal
            if record["event"] == "request_admitted"
            and record["request"] == request_id
        ]
        done = [
            record
            for record in journal
            if record["event"] == "request_done"
            and record["request"] == request_id
        ]
        assert len(admitted) == 1
        assert len(done) == 1 and done[0]["status"] == 200

    def test_drained_run_dir_reports_cleanly(self, service):
        server = service()
        server.client().compile(benchmark="sha", function="rol")
        assert server.stop() == 0
        from repro.observability.report import summarize_run

        summary = summarize_run(server.run_dir)
        assert summary["totals"]["schema_errors"] == 0
        assert summary["service"]["admitted"] == 1
        assert summary["service"]["done"] == {"200": 1}
