"""Chaos suite: the service under crashes, kills, drains, and storms.

The resilience contract these tests pin down:

* the server never returns a wrong DAG — every successful response is
  bit-identical to a serial enumeration, no matter how many executors
  were killed along the way;
* failures are structured errors with honest retry hints, never hangs;
* SIGTERM checkpoints in-flight work, and a restarted server on the
  same run dir resumes it bit-identically.

Workloads are chosen by measured timing: ``sha/byte_reverse`` reaches a
``max_nodes`` budget of 1200 in ~5s of steady expansion, which leaves a
wide window to kill or drain mid-flight, while the budget cutoff keeps
the final DAG deterministic.
"""

import os
import signal
import socket
import threading
import time

import pytest

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.robustness.retry import RetryError, RetryPolicy
from repro.service.client import ServiceError, TransientServiceError
from repro.service.executor import _dag_fingerprint
from tests.parallel.conftest import bench_function
from tests.service.conftest import wait_for

#: steady ~5s workload; checkpoints land every 0.2s so a kill or drain
#: at any point loses almost nothing.  Pinned to the object engine:
#: the timing was measured against it, and the flat engine (with warm
#: process caches) finishes too fast to leave a kill window.
SLOW = {
    "benchmark": "sha",
    "function": "byte_reverse",
    "config": {
        "max_nodes": 1200,
        "checkpoint_interval": 0.2,
        "engine": "object",
    },
}

ONCE = RetryPolicy(max_attempts=1)


def serial_slow_fingerprint():
    result = enumerate_space(
        bench_function("sha", "byte_reverse"),
        EnumerationConfig(max_nodes=1200),
    )
    assert result.abort_reason == "max_nodes"
    return _dag_fingerprint(result.dag)


class Request(threading.Thread):
    """A client request running in a thread, capturing its outcome."""

    def __init__(self, client, **kwargs):
        super().__init__(daemon=True)
        self.client = client
        self.kwargs = kwargs
        self.response = None
        self.error = None
        self.start()

    def run(self):
        try:
            self.response = self.client.enumerate(**self.kwargs)
        except Exception as error:
            self.error = error

    def outcome(self, timeout=90.0):
        self.join(timeout=timeout)
        assert not self.is_alive(), "request hung"
        return self.response, self.error


def kill_executor(server, sig=signal.SIGKILL, timeout=20.0):
    """Wait for an executor pid to appear in /status, then signal it."""
    pids = wait_for(
        lambda: server.status()["executors"],
        timeout=timeout,
        message="an executor pid in /status",
    )
    os.kill(pids[0], sig)
    return pids[0]


class TestExecutorCrash:
    def test_kill_midflight_retries_to_a_bit_identical_dag(self, service):
        server = service(executor_retries=2)
        request = Request(server.client(policy=ONCE), **SLOW)
        kill_executor(server)
        response, error = request.outcome()
        assert error is None, error
        assert response["dag_fingerprint"] == serial_slow_fingerprint()
        assert response["instances"] == 1201
        events = [record["event"] for record in server.journal()]
        assert "request_retry" in events
        done = [
            record
            for record in server.journal()
            if record["event"] == "request_done"
        ]
        assert done[-1]["status"] == 200

    def test_crash_storm_is_a_structured_500(self, service):
        server = service(executor_retries=1)
        request = Request(server.client(policy=ONCE), **SLOW)
        for _ in range(2):  # first attempt + its one retry
            kill_executor(server)
            time.sleep(0.3)
        response, error = request.outcome()
        assert response is None
        assert isinstance(error, ServiceError)
        assert error.status == 500
        assert error.error == "executor_failed"
        assert error.body["attempts"] == 2


class TestCircuitBreaker:
    def test_repeated_crashes_quarantine_the_work_key(self, service):
        server = service(
            executor_retries=0, breaker_threshold=2, breaker_cooldown=60.0
        )
        for _ in range(2):
            request = Request(server.client(policy=ONCE), **SLOW)
            kill_executor(server)
            response, error = request.outcome()
            assert isinstance(error, ServiceError) and error.status == 500

        # the key is now circuit-broken: shed before any executor runs
        with pytest.raises(RetryError) as info:
            server.client(policy=ONCE).enumerate(**SLOW)
        shed = info.value.last_error
        assert isinstance(shed, TransientServiceError)
        assert shed.status == 503
        assert shed.error == "quarantined"
        assert shed.retry_after is not None and shed.retry_after > 0

        # quarantine is per work key, not per server: other work runs
        healthy = server.client().enumerate(
            benchmark="sha", function="rol", config={"max_nodes": 2000}
        )
        assert healthy["completed"] is True

        events = [record["event"] for record in server.journal()]
        assert "breaker_open" in events
        assert server.status()["breaker"]["open"]


class TestDeadlines:
    def test_deadline_expires_to_504_with_checkpoint(self, service):
        server = service()
        with pytest.raises(ServiceError) as info:
            server.client().enumerate(deadline=2.0, **SLOW)
        assert info.value.status == 504
        assert info.value.error == "deadline_exceeded"
        assert info.value.body["checkpointed"] is True
        partial = info.value.body.get("partial")
        if partial is not None:
            assert partial["abort_reason"] == "time_limit"

    def test_deadline_work_is_resumable(self, service):
        # A deadline 504 is not wasted work: the checkpoint under the
        # work key lets an identical later request finish the job.
        server = service()
        with pytest.raises(ServiceError) as info:
            server.client().enumerate(deadline=2.5, **SLOW)
        assert info.value.status == 504
        response = server.client().enumerate(**SLOW)
        assert response["resumed_from"]
        assert response["dag_fingerprint"] == serial_slow_fingerprint()


class TestOverload:
    def test_queue_full_storm_sheds_structured_429(self, service):
        server = service(workers=1, queue_depth=1)
        client = server.client(policy=ONCE)
        first = Request(client, deadline=6.0, **SLOW)
        wait_for(
            lambda: server.status()["in_flight"] == 1,
            message="first request executing",
        )
        other = dict(SLOW, config=dict(SLOW["config"], max_nodes=1100))
        second = Request(client, deadline=6.0, **other)
        wait_for(
            lambda: server.status()["queued"] == 1,
            message="second request queued",
        )

        with pytest.raises(RetryError) as info:
            client.compile(benchmark="sha", function="rol")
        shed = info.value.last_error
        assert isinstance(shed, TransientServiceError)
        assert shed.status == 429
        assert shed.error == "queue_full"
        assert shed.retry_after is not None and shed.retry_after > 0

        # the storm drains without hangs: both slow requests terminate
        # (at their deadlines at the latest) with structured outcomes
        for request in (first, second):
            response, error = request.outcome()
            assert response is not None or isinstance(error, ServiceError)

    def test_slow_client_gets_408(self, service):
        server = service(read_timeout=1.0)
        with socket.create_connection(("127.0.0.1", server.port), 5) as sock:
            sock.sendall(
                b"POST /compile HTTP/1.1\r\n"
                b"Content-Length: 100\r\n\r\n"
            )  # ... and never send the body
            sock.settimeout(10.0)
            reply = sock.recv(4096)
        assert b"408" in reply.split(b"\r\n", 1)[0]
        # the server is unharmed
        assert server.status()["status"] == "serving"


class TestFaultInjection:
    def test_injected_faults_surface_as_quarantine_not_errors(self, service):
        server = service()
        response = server.client().enumerate(
            benchmark="sha",
            function="rol",
            config={"max_nodes": 2000, "fault_rate": 1.0, "fault_seed": 7},
        )
        assert response["completed"] is True
        assert response["quarantine"], "every phase faults; none survive"
        # faulted runs are never cached: the store must stay empty
        store_dir = os.path.join(server.run_dir, "store")
        assert not os.path.isdir(store_dir) or not os.listdir(store_dir)


class TestDrainAndRestart:
    def test_sigterm_checkpoints_and_restart_resumes_bit_identically(
        self, service, tmp_path
    ):
        """The headline drain contract: SIGTERM mid-request checkpoints
        the enumeration, the server exits 0, and a restarted server on
        the same run dir serves the repeated request by resuming —
        producing a DAG bit-identical to an uninterrupted serial run."""
        run_dir = str(tmp_path / "drain")
        server = service(run_dir=run_dir)
        request = Request(server.client(policy=ONCE), **SLOW)
        wait_for(
            lambda: server.status()["in_flight"] == 1,
            message="request executing",
        )
        time.sleep(0.6)  # let a couple of checkpoints land
        server.signal(signal.SIGTERM)

        response, error = request.outcome()
        assert response is None
        assert isinstance(error, RetryError)  # 503 is transient; the
        shed = error.last_error  # no-retry policy exhausts immediately
        assert isinstance(shed, TransientServiceError)
        assert shed.status == 503
        assert shed.error == "draining"
        assert shed.body["checkpointed"] is True
        assert server.wait() == 0

        # the work key's checkpoint survived under state/
        state_dir = os.path.join(run_dir, "state")
        assert os.path.isdir(state_dir) and os.listdir(state_dir)

        restarted = service(run_dir=run_dir)
        response = restarted.client().enumerate(**SLOW)
        assert response["resumed_from"]
        assert response["instances"] == 1201
        assert response["dag_fingerprint"] == serial_slow_fingerprint()

        # one journal tells the whole story across both incarnations
        events = [record["event"] for record in restarted.journal()]
        assert events.count("server_start") == 2
        assert "server_drain" in events
        assert events.count("request_admitted") == 2

    def test_second_signal_stops_hard(self, service):
        server = service()
        Request(server.client(policy=ONCE), **SLOW)
        wait_for(
            lambda: server.status()["in_flight"] == 1,
            message="request executing",
        )
        server.signal(signal.SIGTERM)
        time.sleep(0.2)
        server.signal(signal.SIGTERM)
        assert server.wait(timeout=15.0) == 0
