"""Unit tests for the admission-control primitives and the protocol.

Pure-logic tests: fake clocks, no sockets, no subprocesses.
"""

import pytest

from repro.service.admission import CircuitBreaker, Tenant, TokenBucket
from repro.service.protocol import (
    RequestError,
    deadline_of,
    tenant_of,
    validate_request,
    work_key,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.take()[0] for _ in range(3)] == [True, True, True]
        admitted, retry_after = bucket.take()
        assert not admitted
        assert retry_after == pytest.approx(1.0)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        bucket.take()
        bucket.take()
        assert bucket.take()[0] is False
        clock.advance(0.5)  # 2/s * 0.5s = 1 token
        assert bucket.take()[0] is True
        assert bucket.take()[0] is False

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(1000.0)
        bucket.take()
        bucket.take()
        assert bucket.take()[0] is False

    def test_retry_after_is_honest(self):
        # A client that waits exactly retry_after is admitted.
        clock = FakeClock()
        bucket = TokenBucket(rate=0.5, burst=1.0, clock=clock)
        bucket.take()
        admitted, retry_after = bucket.take()
        assert not admitted
        clock.advance(retry_after)
        assert bucket.take()[0] is True

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = FakeClock()
        events = []
        breaker = CircuitBreaker(
            clock=clock,
            on_transition=lambda what, key, failures: events.append(
                (what, key, failures)
            ),
            **kwargs,
        )
        return breaker, clock, events

    def test_opens_at_threshold(self):
        breaker, _clock, events = self._breaker(threshold=3, cooldown=10.0)
        breaker.record_failure("k")
        breaker.record_failure("k")
        assert breaker.allow("k") == (True, 0.0)
        breaker.record_failure("k")
        allowed, retry_after = breaker.allow("k")
        assert not allowed
        assert retry_after == pytest.approx(10.0)
        assert events == [("open", "k", 3)]
        assert breaker.open_keys() == ["k"]

    def test_half_open_probe_then_close(self):
        breaker, clock, events = self._breaker(threshold=1, cooldown=5.0)
        breaker.record_failure("k")
        assert breaker.allow("k")[0] is False
        clock.advance(5.1)
        # exactly one probe is admitted; concurrent requests stay shed
        assert breaker.allow("k")[0] is True
        assert breaker.allow("k")[0] is False
        breaker.record_success("k")
        assert breaker.allow("k") == (True, 0.0)
        assert ("probe", "k", 1) in events
        assert ("close", "k", 1) in events
        assert breaker.open_keys() == []

    def test_failed_probe_reopens(self):
        breaker, clock, _events = self._breaker(threshold=1, cooldown=5.0)
        breaker.record_failure("k")
        clock.advance(5.1)
        assert breaker.allow("k")[0] is True  # the probe
        breaker.record_failure("k")
        allowed, retry_after = breaker.allow("k")
        assert not allowed
        assert retry_after == pytest.approx(5.0)

    def test_keys_are_independent(self):
        breaker, _clock, _events = self._breaker(threshold=1, cooldown=5.0)
        breaker.record_failure("bad")
        assert breaker.allow("bad")[0] is False
        assert breaker.allow("good") == (True, 0.0)

    def test_success_clears_partial_failures(self):
        breaker, _clock, _events = self._breaker(threshold=2, cooldown=5.0)
        breaker.record_failure("k")
        breaker.record_success("k")
        breaker.record_failure("k")
        assert breaker.allow("k")[0] is True  # count restarted at 1


class TestTenant:
    def test_snapshot(self):
        tenant = Tenant(rate=1.0, burst=2.0, concurrency=4, clock=FakeClock())
        tenant.in_flight = 2
        tenant.admitted = 7
        snap = tenant.snapshot()
        assert snap["in_flight"] == 2
        assert snap["admitted"] == 7
        assert snap["tokens"] == pytest.approx(2.0)


SOURCE = "int f(int x) { return x + 1; }"


class TestProtocol:
    def test_enumerate_roundtrip(self):
        normalized = validate_request(
            "enumerate",
            {"source": SOURCE, "function": "f", "config": {"max_nodes": 10}},
        )
        assert normalized["function"] == "f"
        assert normalized["config"] == {"max_nodes": 10}

    def test_benchmark_resolution(self):
        normalized = validate_request(
            "enumerate", {"benchmark": "sha", "function": "rol"}
        )
        assert "sha_transform" in normalized["source"]

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({"function": "f"}, "source"),
            ({"source": SOURCE}, "'function' is required"),
            ({"source": SOURCE, "benchmark": "sha", "function": "f"}, "not both"),
            ({"benchmark": "nope", "function": "f"}, "unknown benchmark"),
            (
                {"source": SOURCE, "function": "f", "config": {"bogus": 1}},
                "unknown config field",
            ),
            (
                {"source": SOURCE, "function": "f", "config": {"max_nodes": "x"}},
                "must be int",
            ),
            (
                {"source": SOURCE, "function": "f", "config": {"exact": 1}},
                "must be bool",
            ),
            (
                {"source": SOURCE, "function": "f", "config": {"max_nodes": -1}},
                "must be positive",
            ),
            (
                {
                    "source": SOURCE,
                    "function": "f",
                    "config": {"fault_rate": 2.0},
                },
                "fault_rate",
            ),
            (
                {"source": SOURCE, "function": "f", "config": {"sanitize": "x"}},
                "sanitize",
            ),
        ],
    )
    def test_enumerate_rejections(self, payload, match):
        with pytest.raises(RequestError, match=match):
            validate_request("enumerate", payload)

    def test_compile_sequence_validated(self):
        with pytest.raises(RequestError, match="unknown phase"):
            validate_request(
                "compile", {"source": SOURCE, "sequence": "zz"}
            )

    def test_unknown_kind(self):
        with pytest.raises(RequestError, match="unknown request kind"):
            validate_request("destroy", {"source": SOURCE})

    def test_tenant_validation(self):
        assert tenant_of({}) == "default"
        assert tenant_of({"tenant": "team-a"}) == "team-a"
        with pytest.raises(RequestError):
            tenant_of({"tenant": "bad tenant!"})
        with pytest.raises(RequestError):
            tenant_of({"tenant": "x" * 65})

    def test_deadline_validation(self):
        assert deadline_of({}) is None
        assert deadline_of({"deadline": 2}) == 2.0
        with pytest.raises(RequestError):
            deadline_of({"deadline": -1})
        with pytest.raises(RequestError):
            deadline_of({"deadline": True})

    def test_work_key_identity(self):
        a = validate_request(
            "enumerate", {"source": SOURCE, "function": "f"}
        )
        b = validate_request(
            "enumerate",
            {
                "source": SOURCE,
                "function": "f",
                "tenant": "other",
                "deadline": 5,
            },
        )
        # tenant and deadline shape delivery, not the computation
        assert work_key(a) == work_key(b)
        c = validate_request(
            "enumerate",
            {"source": SOURCE, "function": "f", "config": {"exact": True}},
        )
        assert work_key(a) != work_key(c)
        assert work_key(a).startswith("enumerate-")
