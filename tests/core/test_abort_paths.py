"""Every enumeration abort path must leave a consistent partial DAG."""

import pytest

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.opt import PHASE_IDS
from tests.conftest import GCD_SRC, compile_fn


def assert_consistent_partial_dag(dag):
    """The invariants any truncated space must still satisfy."""
    # Node ids are dense in creation order.
    assert set(dag.nodes) == set(range(len(dag)))
    assert dag.root_id == 0
    for node in dag.nodes.values():
        # Every edge points at an existing node and is mirrored in the
        # child's parent list.
        for phase_id, child_id in node.active.items():
            assert child_id in dag.nodes
            assert (node.node_id, phase_id) in dag.nodes[child_id].parents
        for parent_id, phase_id in node.parents:
            assert parent_id in dag.nodes
            assert dag.nodes[parent_id].active.get(phase_id) == node.node_id
        # Active and dormant never overlap; expanded nodes account for
        # every phase one way or the other.
        assert not (set(node.active) & node.dormant)
        if node.expanded:
            assert set(node.active) | node.dormant == set(PHASE_IDS)
    # The key index matches the node table.
    assert len(dag.by_key) == len(dag.nodes)
    for key, node_id in dag.by_key.items():
        assert dag.nodes[node_id].key == key
    # Weights can be computed (no cycles, no dangling children).
    weights = dag.weights()
    assert set(weights) == set(dag.nodes)


@pytest.fixture
def gcd_func_fresh():
    return compile_fn(GCD_SRC, "gcd")


class TestMaxNodes:
    def test_abort(self, gcd_func_fresh):
        config = EnumerationConfig(max_nodes=25)
        result = enumerate_space(gcd_func_fresh, config)
        assert not result.completed
        assert result.abort_reason == "max_nodes"
        # The cap can only be overshot by one node expansion.
        assert len(result.dag) <= 25 + len(PHASE_IDS)
        assert_consistent_partial_dag(result.dag)

    def test_function_refs_released(self, gcd_func_fresh):
        result = enumerate_space(gcd_func_fresh, EnumerationConfig(max_nodes=25))
        assert all(
            node.function is None for node in result.dag.nodes.values()
        )


class TestMaxLevels:
    def test_abort(self, gcd_func_fresh):
        result = enumerate_space(
            gcd_func_fresh, EnumerationConfig(max_levels=2)
        )
        assert not result.completed
        assert result.abort_reason == "max_levels"
        assert result.dag.depth() <= 2
        assert result.levels_completed == 2
        assert_consistent_partial_dag(result.dag)


class TestTimeLimit:
    def test_abort(self, gcd_func_fresh):
        result = enumerate_space(
            gcd_func_fresh, EnumerationConfig(time_limit=0.0)
        )
        assert not result.completed
        assert result.abort_reason == "time_limit"
        assert_consistent_partial_dag(result.dag)

    def test_checked_per_phase_attempt(self, gcd_func_fresh):
        # With a zero budget the very first phase attempt must stop the
        # run: only the root can exist, and nothing was attempted.
        result = enumerate_space(
            gcd_func_fresh, EnumerationConfig(time_limit=0.0)
        )
        assert len(result.dag) == 1
        assert result.attempted_phases == 0


class TestMaxLevelSequences:
    def test_abort(self, gcd_func_fresh):
        result = enumerate_space(
            gcd_func_fresh, EnumerationConfig(max_level_sequences=5)
        )
        assert not result.completed
        assert result.abort_reason == "max_level_sequences"
        assert_consistent_partial_dag(result.dag)


class TestCompletedRuns:
    def test_completed_run_reports_no_abort(self, maxi_func):
        result = enumerate_space(maxi_func, EnumerationConfig())
        assert result.completed
        assert result.abort_reason is None
        assert result.levels_completed == result.dag.depth() + 1
        assert_consistent_partial_dag(result.dag)
