"""SIGINT/SIGTERM parity: both signals request the same graceful stop.

An orchestrator shutdown (SIGTERM) must behave exactly like ^C: the
first signal lets the enumerator finish the current phase attempt,
write a checkpoint at an instance boundary, and report an
``interrupted`` abort; a second signal kills.  A later resume must
reach a DAG bit-identical to an uninterrupted run.
"""

import os
import signal

import pytest

from repro.core.enumeration import (
    EnumerationConfig,
    SpaceEnumerator,
    enumerate_space,
)
from repro.opt import PHASES, Phase
from repro.parallel.coordinator import ParallelEnumerator
from tests.conftest import GCD_SRC, compile_fn
from tests.core.test_abort_paths import assert_consistent_partial_dag
from tests.parallel.conftest import bench_function, dag_snapshot

GRACEFUL = (signal.SIGINT, signal.SIGTERM)


class _KillSwitch:
    """Fires one signal at this process after N phase executions."""

    def __init__(self, signum: int, after: int):
        self.signum = signum
        self.remaining = after

    def tick(self) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            os.kill(os.getpid(), self.signum)


class _SignalingPhase(Phase):
    """Delegating wrapper that trips a kill switch on each execution.

    Same ``id`` as the wrapped phase, so the enumeration signature (and
    therefore checkpoint compatibility) is unchanged.
    """

    def __init__(self, wrapped: Phase, switch: _KillSwitch):
        self.wrapped = wrapped
        self.switch = switch
        self.id = wrapped.id
        self.name = wrapped.name
        self.requires_assignment = wrapped.requires_assignment
        self.contract_requires = wrapped.contract_requires
        self.contract_establishes = wrapped.contract_establishes
        self.contract_breaks = wrapped.contract_breaks

    def applicable(self, func):
        return self.wrapped.applicable(func)

    def run(self, func, target):
        self.switch.tick()
        return self.wrapped.run(func, target)


@pytest.fixture
def gcd_func():
    return compile_fn(GCD_SRC, "gcd")


def _restore(saved):
    for signum, previous in saved:
        signal.signal(signum, previous)


class TestHandlerInstallation:
    def test_both_signals_share_the_graceful_handler(self, gcd_func, tmp_path):
        config = EnumerationConfig(checkpoint_path=str(tmp_path / "c.json"))
        enum = SpaceEnumerator(gcd_func, config)
        saved = enum._install_signals()
        try:
            assert {signum for signum, _ in saved} == set(GRACEFUL)
            handler = signal.getsignal(signal.SIGINT)
            assert signal.getsignal(signal.SIGTERM) is handler
            assert callable(handler)
        finally:
            _restore(saved)

    def test_no_checkpoint_means_no_handlers(self, gcd_func):
        before = {signum: signal.getsignal(signum) for signum in GRACEFUL}
        enum = SpaceEnumerator(gcd_func, EnumerationConfig())
        assert enum._install_signals() == []
        for signum in GRACEFUL:
            assert signal.getsignal(signum) is before[signum]

    @pytest.mark.parametrize("signum", GRACEFUL)
    def test_first_signal_flags_second_signal_kills(
        self, gcd_func, tmp_path, signum
    ):
        config = EnumerationConfig(checkpoint_path=str(tmp_path / "c.json"))
        enum = SpaceEnumerator(gcd_func, config)
        saved = enum._install_signals()
        try:
            os.kill(os.getpid(), signum)
            assert enum._interrupted  # graceful: flag only, no raise
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signum)
        finally:
            _restore(saved)

    def test_handlers_restored_after_run(self, gcd_func, tmp_path):
        before = {signum: signal.getsignal(signum) for signum in GRACEFUL}
        config = EnumerationConfig(
            checkpoint_path=str(tmp_path / "c.json"), max_levels=1
        )
        enumerate_space(gcd_func, config)
        for signum in GRACEFUL:
            assert signal.getsignal(signum) is before[signum]


class TestGracefulStopParity:
    @pytest.mark.parametrize("signum", GRACEFUL)
    def test_signal_checkpoints_and_resume_is_bit_identical(
        self, tmp_path, signum
    ):
        func = bench_function("sha", "rol")
        reference = enumerate_space(func, EnumerationConfig())
        assert reference.completed

        path = str(tmp_path / f"sig{signum}.ckpt.json")
        switch = _KillSwitch(signum, after=40)
        phases = tuple(_SignalingPhase(phase, switch) for phase in PHASES)
        interrupted = enumerate_space(
            func,
            EnumerationConfig(phases=phases, checkpoint_path=path),
        )
        assert switch.remaining <= 0, "enumeration ended before the signal"
        assert not interrupted.completed
        assert interrupted.abort_reason == "interrupted"
        assert_consistent_partial_dag(interrupted.dag)
        assert os.path.exists(path)

        resumed = enumerate_space(
            func,
            EnumerationConfig(checkpoint_path=path, resume=True),
        )
        assert resumed.completed
        assert resumed.resumed_from == path
        assert dag_snapshot(resumed.dag) == dag_snapshot(reference.dag)
        assert not os.path.exists(path)  # completed runs clean up


class TestCoordinatorSigterm:
    def test_sigterm_raises_keyboard_interrupt(self):
        enumerator = ParallelEnumerator()
        previous = enumerator._install_sigterm()
        assert previous is not None
        try:
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGTERM)
        finally:
            signal.signal(signal.SIGTERM, previous)
