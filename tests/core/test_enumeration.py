"""Unit and integration tests for the exhaustive space enumeration."""

import pytest

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.fingerprint import fingerprint_function
from repro.opt import PHASE_IDS, apply_phase, phase_by_id
from tests.conftest import (
    GCD_SRC,
    MAXI_SRC,
    SQUARE_SRC,
    compile_fn,
)


@pytest.fixture(scope="module")
def square_result():
    return enumerate_space(
        compile_fn(SQUARE_SRC, "square"), EnumerationConfig(exact=True)
    )


@pytest.fixture(scope="module")
def maxi_result():
    return enumerate_space(
        compile_fn(MAXI_SRC, "maxi"), EnumerationConfig(exact=True)
    )


class TestCompleteness:
    def test_small_functions_enumerate_completely(self, square_result, maxi_result):
        assert square_result.completed
        assert maxi_result.completed

    def test_space_is_nontrivial(self, square_result):
        dag = square_result.dag
        assert len(dag) > 5
        assert dag.depth() >= 3

    def test_every_node_expanded(self, square_result):
        assert all(node.expanded for node in square_result.dag.nodes.values())

    def test_input_function_unmodified(self):
        func = compile_fn(SQUARE_SRC, "square")
        before = fingerprint_function(func).key
        enumerate_space(func, EnumerationConfig())
        assert fingerprint_function(func).key == before

    def test_attempted_exceeds_instances(self, square_result):
        # Dormancy detection requires attempting phases that do nothing.
        assert square_result.attempted_phases > len(square_result.dag)

    def test_leaves_have_no_active_phases(self, square_result):
        for leaf in square_result.dag.leaves():
            assert not leaf.active
            # and every phase is accounted for
            assert set(leaf.dormant) == set(PHASE_IDS)

    def test_phase_status_partition(self, square_result):
        for node in square_result.dag.nodes.values():
            assert not (set(node.active) & node.dormant)
            assert set(node.active) | node.dormant == set(PHASE_IDS)


class TestDagInvariants:
    def test_edges_match_reapplication(self, maxi_result):
        """Replaying any root path ends at an instance whose fingerprint
        matches the node reached in the DAG."""
        dag = maxi_result.dag
        # longest path: walk greedily
        node = dag.root
        path = []
        while node.active:
            phase_id, child_id = sorted(node.active.items())[0]
            path.append(phase_id)
            node = dag.nodes[child_id]
        func = compile_fn(MAXI_SRC, "maxi")
        for phase_id in path:
            assert apply_phase(func, phase_by_id(phase_id))
        assert fingerprint_function(func).key == node.key[0]

    def test_levels_consistent_with_edges(self, maxi_result):
        dag = maxi_result.dag
        for node in dag.nodes.values():
            for child_id in node.active.values():
                assert dag.nodes[child_id].level <= node.level + 1

    def test_root_weight_counts_active_sequences(self, square_result):
        weights = square_result.dag.weights()
        assert weights[square_result.dag.root_id] >= len(square_result.dag.leaves())


class TestBudgets:
    def test_max_nodes_aborts(self):
        result = enumerate_space(
            compile_fn(GCD_SRC, "gcd"), EnumerationConfig(max_nodes=10)
        )
        assert not result.completed
        assert result.abort_reason == "max_nodes"

    def test_max_levels_aborts(self):
        result = enumerate_space(
            compile_fn(GCD_SRC, "gcd"), EnumerationConfig(max_levels=2)
        )
        assert not result.completed
        assert result.abort_reason == "max_levels"
        assert result.dag.depth() <= 2

    def test_level_sequence_cap_marks_too_big(self):
        result = enumerate_space(
            compile_fn(GCD_SRC, "gcd"), EnumerationConfig(max_level_sequences=5)
        )
        assert not result.completed
        assert result.abort_reason == "max_level_sequences"

    def test_time_limit_aborts(self):
        result = enumerate_space(
            compile_fn(GCD_SRC, "gcd"), EnumerationConfig(time_limit=0.0)
        )
        assert not result.completed


class TestPrefixSharing:
    def test_disabling_sharing_gives_same_space(self):
        fast = enumerate_space(
            compile_fn(MAXI_SRC, "maxi"), EnumerationConfig(share_prefixes=True)
        )
        slow = enumerate_space(
            compile_fn(MAXI_SRC, "maxi"), EnumerationConfig(share_prefixes=False)
        )
        assert len(fast.dag) == len(slow.dag)
        assert fast.dag.depth() == slow.dag.depth()
        assert {n.key for n in fast.dag.nodes.values()} == {
            n.key for n in slow.dag.nodes.values()
        }

    def test_sharing_applies_fewer_phases(self):
        # The Figure 6 claim: prefix sharing + in-memory instances cut
        # phase applications by a large factor.
        fast = enumerate_space(
            compile_fn(MAXI_SRC, "maxi"), EnumerationConfig(share_prefixes=True)
        )
        slow = enumerate_space(
            compile_fn(MAXI_SRC, "maxi"), EnumerationConfig(share_prefixes=False)
        )
        assert slow.phases_applied > 2 * fast.phases_applied


class TestRemapAblation:
    def test_no_remap_space_is_never_smaller(self):
        remapped = enumerate_space(
            compile_fn(MAXI_SRC, "maxi"), EnumerationConfig(remap=True)
        )
        raw = enumerate_space(
            compile_fn(MAXI_SRC, "maxi"), EnumerationConfig(remap=False)
        )
        assert len(remapped.dag) <= len(raw.dag)
        assert remapped.completed and raw.completed


class TestExactMode:
    def test_exact_mode_verifies_no_collisions(self, maxi_result):
        # exact=True would have raised on any collision; reaching here
        # plus a completed enumeration is the assertion.
        assert maxi_result.completed
