"""Tests for rebuilding function instances on a bare (keyed-only) DAG."""

import pytest

from repro.core.dag import materialize_instances
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.frontend import compile_source
from tests.conftest import MAXI_SRC, compile_fn

CLAMP_SRC = """
int clamp(int x) {
    if (x < 0) return 0;
    if (x > 255) return 255;
    return x;
}
"""

SOURCES = (
    (MAXI_SRC, "maxi"),
    (CLAMP_SRC, "clamp"),
)


def bare_and_kept(src, name):
    """Enumerate the same function twice: keys only, and with instances."""
    bare = enumerate_space(compile_fn(src, name), EnumerationConfig())
    kept = enumerate_space(
        compile_fn(src, name), EnumerationConfig(keep_functions=True)
    )
    assert bare.completed and kept.completed
    return bare, kept


class TestMaterialize:
    @pytest.mark.parametrize("src,name", SOURCES)
    def test_rebuilds_every_instance(self, src, name):
        bare, kept = bare_and_kept(src, name)
        assert all(node.function is None for node in bare.dag.nodes.values())
        applied = materialize_instances(bare.dag, compile_fn(src, name))
        assert all(
            node.function is not None for node in bare.dag.nodes.values()
        )
        # one phase application per non-root node (a spanning tree of
        # the DAG), even though many nodes have several in-edges
        assert applied == len(bare.dag.nodes) - 1

    @pytest.mark.parametrize("src,name", SOURCES)
    def test_replayed_instances_match_kept_enumeration(self, src, name):
        bare, kept = bare_and_kept(src, name)
        materialize_instances(bare.dag, compile_fn(src, name))
        assert set(bare.dag.nodes) == set(kept.dag.nodes)
        for node_id, node in bare.dag.nodes.items():
            twin = kept.dag.nodes[node_id]
            assert (
                node.function.num_instructions()
                == twin.function.num_instructions()
            ), node_id

    def test_rejects_the_wrong_root(self):
        bare, _kept = bare_and_kept(MAXI_SRC, "maxi")
        stranger = compile_fn(CLAMP_SRC, "clamp")
        with pytest.raises(ValueError, match="root"):
            materialize_instances(bare.dag, stranger)

    def test_rejects_uncleaned_root(self):
        # the enumeration root is the post-cleanup function; handing in
        # the raw frontend output must fail loudly, not silently build
        # a space for a different program
        bare, _kept = bare_and_kept(MAXI_SRC, "maxi")
        raw = compile_source(MAXI_SRC).function("maxi")
        with pytest.raises(ValueError, match="implicit_cleanup"):
            materialize_instances(bare.dag, raw)

    def test_idempotent_on_an_already_kept_dag(self):
        _bare, kept = bare_and_kept(MAXI_SRC, "maxi")
        # nodes already carry functions: nothing to replay
        assert materialize_instances(kept.dag, compile_fn(MAXI_SRC, "maxi")) == 0

    def test_does_not_mutate_the_callers_function(self):
        bare, _kept = bare_and_kept(MAXI_SRC, "maxi")
        root = compile_fn(MAXI_SRC, "maxi")
        before = root.num_instructions()
        materialize_instances(bare.dag, root)
        assert root.num_instructions() == before
