"""Additional SpaceDAG API tests: DOT export and instance lookup."""

from repro.core.dag import SpaceDAG
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.opt import apply_phase, phase_by_id
from tests.conftest import MAXI_SRC, compile_fn


def small_space():
    return enumerate_space(compile_fn(MAXI_SRC, "maxi"), EnumerationConfig())


class TestDotExport:
    def test_valid_digraph(self):
        dag = small_space().dag
        dot = dag.to_dot()
        assert dot.startswith("digraph space {")
        assert dot.rstrip().endswith("}")
        # one node statement per node
        assert dot.count("[shape=") >= len(dag)
        # leaves render as double circles
        assert dot.count("doublecircle") == len(dag.leaves())

    def test_edge_labels_are_phases(self):
        dag = small_space().dag
        dot = dag.to_dot()
        for node in dag.nodes.values():
            for phase_id in node.active:
                assert f'label="{phase_id}"' in dot

    def test_truncation(self):
        dag = small_space().dag
        dot = dag.to_dot(max_nodes=3)
        assert "truncated at 3" in dot


class TestFindInstance:
    def test_finds_replayed_instances(self):
        result = small_space()
        dag = result.dag
        func = compile_fn(MAXI_SRC, "maxi")
        assert dag.find_instance(func) is dag.root
        # follow one edge and find the child
        phase_id, child_id = sorted(dag.root.active.items())[0]
        assert apply_phase(func, phase_by_id(phase_id))
        assert dag.find_instance(func).node_id == child_id

    def test_unknown_instance_returns_none(self):
        dag = small_space().dag
        other = compile_fn("int q(int a) { return a ^ 12345; }", "q")
        assert dag.find_instance(other) is None
