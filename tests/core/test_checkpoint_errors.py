"""Corrupt persisted state must fail typed, diagnosed, and loud.

Every way a checkpoint or store entry can be bad — truncated JSON, a
failed integrity digest, a version from another build, a structurally
gutted payload — must surface as :class:`CheckpointError` (or its
:class:`StoreError` subclass) carrying the ``CKP001`` diagnostic,
never as a raw ``KeyError``/``ValueError`` from half-restored state.
"""

import json

import pytest

from repro.core import checkpoint as ckpt
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.parallel.store import SpaceStore, StoreError
from tests.conftest import GCD_SRC, compile_fn
from tests.parallel.conftest import bench_function


@pytest.fixture
def checkpoint_path(tmp_path):
    """A real aborted-run checkpoint, ripe for corruption."""
    path = str(tmp_path / "ckpt.json")
    result = enumerate_space(
        compile_fn(GCD_SRC, "gcd"),
        EnumerationConfig(max_nodes=10, checkpoint_path=path),
    )
    assert not result.completed
    return path


def _rewrite(path, mutate):
    """Load the raw JSON, apply *mutate*, restamp a valid digest."""
    with open(path) as handle:
        state = json.load(handle)
    mutate(state)
    state.pop("digest", None)
    state["digest"] = ckpt._payload_digest(state)
    with open(path, "w") as handle:
        json.dump(state, handle)


def _resume(path):
    return enumerate_space(
        compile_fn(GCD_SRC, "gcd"),
        EnumerationConfig(checkpoint_path=path, resume=True),
    )


class TestLoadCheckpoint:
    def test_truncated_json(self, checkpoint_path):
        with open(checkpoint_path) as handle:
            text = handle.read()
        with open(checkpoint_path, "w") as handle:
            handle.write(text[: len(text) // 2])
        with pytest.raises(ckpt.CheckpointError, match="CKP001.*malformed"):
            ckpt.load_checkpoint(checkpoint_path)

    def test_bad_digest(self, checkpoint_path):
        with open(checkpoint_path) as handle:
            state = json.load(handle)
        state["attempted"] += 1  # silent in-place corruption
        with open(checkpoint_path, "w") as handle:
            json.dump(state, handle)
        with pytest.raises(ckpt.CheckpointError, match="CKP001.*integrity"):
            ckpt.load_checkpoint(checkpoint_path)

    def test_missing_digest(self, checkpoint_path):
        with open(checkpoint_path) as handle:
            state = json.load(handle)
        del state["digest"]
        with open(checkpoint_path, "w") as handle:
            json.dump(state, handle)
        with pytest.raises(ckpt.CheckpointError, match="integrity"):
            ckpt.load_checkpoint(checkpoint_path)

    def test_version_mismatch(self, checkpoint_path):
        # Version is checked before the digest: a file from another
        # build gets the version message, not an integrity complaint.
        with open(checkpoint_path) as handle:
            state = json.load(handle)
        state["version"] = 999
        with open(checkpoint_path, "w") as handle:
            json.dump(state, handle)
        with pytest.raises(ckpt.CheckpointError, match="CKP001.*version 999"):
            ckpt.load_checkpoint(checkpoint_path)

    def test_non_object_payload(self, tmp_path):
        path = str(tmp_path / "list.json")
        with open(path, "w") as handle:
            json.dump([1, 2, 3], handle)
        with pytest.raises(ckpt.CheckpointError, match="CKP001"):
            ckpt.load_checkpoint(path)

    def test_required_keys_enforced(self, checkpoint_path):
        _rewrite(checkpoint_path, lambda state: state.pop("dag"))
        with pytest.raises(ckpt.CheckpointError, match="CKP001.*missing.*dag"):
            ckpt.load_checkpoint(checkpoint_path, require=ckpt.ENUMERATION_KEYS)

    def test_error_carries_the_diagnostic_code(self, tmp_path):
        error = ckpt.CheckpointError("something broke")
        assert error.code == "CKP001"
        assert str(error).startswith("CKP001: ")
        # Idempotent: a re-wrapped message is not double-prefixed.
        assert str(ckpt.CheckpointError(str(error))).count("CKP001") == 1


class TestResumePaths:
    """The enumerator's resume path speaks CheckpointError only."""

    def test_truncated_checkpoint(self, checkpoint_path):
        with open(checkpoint_path) as handle:
            text = handle.read()
        with open(checkpoint_path, "w") as handle:
            handle.write(text[: len(text) // 2])
        with pytest.raises(ckpt.CheckpointError, match="CKP001"):
            _resume(checkpoint_path)

    def test_missing_key(self, checkpoint_path):
        _rewrite(checkpoint_path, lambda state: state.pop("frontier"))
        with pytest.raises(ckpt.CheckpointError, match="CKP001.*missing"):
            _resume(checkpoint_path)

    def test_structurally_invalid_payload(self, checkpoint_path):
        # All required keys present, digest valid — but the DAG table
        # is gutted, so the rebuild itself must be caught and typed.
        _rewrite(
            checkpoint_path,
            lambda state: state["dag"].__setitem__("nodes", [{"bogus": 1}]),
        )
        with pytest.raises(
            ckpt.CheckpointError, match="CKP001.*structurally invalid"
        ):
            _resume(checkpoint_path)

    def test_corrupt_function_text(self, checkpoint_path):
        def gut_functions(state):
            for entry in state["functions"].values():
                entry["rtl"] = "this is not RTL {"

        _rewrite(checkpoint_path, gut_functions)
        with pytest.raises(ckpt.CheckpointError, match="CKP001"):
            _resume(checkpoint_path)


class TestStoreErrors:
    @pytest.fixture
    def store_entry(self, tmp_path):
        store = SpaceStore(str(tmp_path / "store"))
        func = bench_function("jpeg", "descale")
        config = EnumerationConfig()
        result = enumerate_space(func, config)
        from repro.core.enumeration import _node_key
        from repro.core.fingerprint import fingerprint_function

        root_key = _node_key(fingerprint_function(func), func)
        path = store.put("descale", root_key, config, result)
        assert path is not None
        return store, path, root_key, config

    def test_strict_loader_raises_typed_errors(self, store_entry):
        store, path, _root_key, _config = store_entry
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text[: len(text) // 2])
        with pytest.raises(StoreError, match="CKP001"):
            store.load_entry(path, "descale")

    def test_store_error_is_a_checkpoint_error(self):
        assert issubclass(StoreError, ckpt.CheckpointError)
        assert StoreError("x").code == "CKP001"

    def test_wrong_function_rejected(self, store_entry):
        store, path, _root_key, _config = store_entry
        with pytest.raises(StoreError, match="for function"):
            store.load_entry(path, "someone_else")

    def test_gutted_payload_rejected(self, store_entry):
        store, path, _root_key, _config = store_entry
        _rewrite(path, lambda state: state.pop("attempted"))
        with pytest.raises(StoreError, match="structurally invalid"):
            store.load_entry(path, "descale")

    def test_get_degrades_corruption_to_a_counted_miss(self, store_entry):
        store, path, root_key, config = store_entry
        assert store.get("descale", root_key, config) is not None
        with open(path, "w") as handle:
            handle.write("{ truncated")
        assert store.get("descale", root_key, config) is None
        assert store.corrupt == 1
        assert store.misses >= 1
