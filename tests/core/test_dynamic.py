"""Tests for dynamic-count inference from distinct control flows."""

import pytest

from repro.core.dynamic import DynamicCountOracle, MissingFunctionError
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.frontend import compile_source
from repro.opt import implicit_cleanup
from repro.vm import Interpreter

SRC = """
int a[20];
int count_above(int limit) {
    int n = 0;
    int i;
    for (i = 0; i < 20; i++)
        if (a[i] > limit) n++;
    return n;
}
"""


def seed_and_run(interpreter):
    for i in range(20):
        interpreter.store_global("a", (i * 7) % 13, i)
    interpreter.run("count_above", (6,))


@pytest.fixture(scope="module")
def space():
    program = compile_source(SRC)
    func = program.function("count_above")
    implicit_cleanup(func)
    result = enumerate_space(
        func,
        EnumerationConfig(max_nodes=800, max_levels=6, keep_functions=True),
    )
    return program, result


class TestInference:
    def test_inferred_counts_match_real_executions(self, space):
        program, result = space
        oracle = DynamicCountOracle(program, "count_above", seed_and_run)
        for node in list(result.dag.nodes.values())[:60]:
            if node.function is None:
                continue
            inferred = oracle.dynamic_count(node)
            # measure directly
            trial = compile_source(SRC)
            trial.functions["count_above"] = node.function
            vm = Interpreter(trial, profile_blocks=True)
            for i in range(20):
                vm.store_global("a", (i * 7) % 13, i)
            actual = vm.run("count_above", (6,)).per_function["count_above"]
            assert inferred == actual, node.node_id

    def test_executions_bounded_by_control_flows(self, space):
        program, result = space
        oracle = DynamicCountOracle(program, "count_above", seed_and_run)
        oracle.price_space(result.dag)
        distinct_cfs = len(
            {
                node.cf_crc
                for node in result.dag.nodes.values()
                if node.function is not None
            }
        )
        assert oracle.executions == distinct_cfs
        assert oracle.executions < len(result.dag)

    def test_best_node_minimizes_dynamic_count(self):
        source = "int clamp(int x) { if (x < 0) return 0; if (x > 255) return 255; return x; }"
        program = compile_source(source)
        func = program.function("clamp")
        implicit_cleanup(func)
        result = enumerate_space(
            func, EnumerationConfig(keep_functions=True)
        )
        assert result.completed and result.dag.leaves()
        oracle = DynamicCountOracle(
            program, "clamp", lambda vm: vm.run("clamp", (300,))
        )
        node, count = oracle.best_node(result.dag)
        prices = [
            oracle.dynamic_count(leaf)
            for leaf in result.dag.leaves()
            if leaf.function is not None
        ]
        assert count == min(prices)

    def test_requires_kept_functions(self, space):
        program, result = space
        oracle = DynamicCountOracle(program, "count_above", seed_and_run)
        bare = result.dag.root
        function = bare.function
        try:
            bare.function = None
            with pytest.raises(ValueError, match="keep_functions"):
                oracle.dynamic_count(bare)
        finally:
            bare.function = function

    def test_missing_function_error_is_typed(self, space):
        program, result = space
        oracle = DynamicCountOracle(program, "count_above", seed_and_run)
        bare = result.dag.root
        function = bare.function
        try:
            bare.function = None
            with pytest.raises(MissingFunctionError) as excinfo:
                oracle.dynamic_count(bare)
        finally:
            bare.function = function
        # a ValueError subclass, so pre-existing handlers keep working,
        # and the message points at both escape hatches
        assert issubclass(MissingFunctionError, ValueError)
        assert "keep_functions" in str(excinfo.value)
        assert "materialize_instances" in str(excinfo.value)

    def test_count_for_matches_node_pricing(self, space):
        program, result = space
        oracle = DynamicCountOracle(program, "count_above", seed_and_run)
        node = result.dag.root
        assert (
            oracle.count_for(node.function, node.cf_crc)
            == oracle.dynamic_count(node)
        )


class TestBlockProfiling:
    def test_block_counts_recorded(self):
        program = compile_source(SRC)
        vm = Interpreter(program, profile_blocks=True)
        for i in range(20):
            vm.store_global("a", i, i)
        vm.run("count_above", (10,))
        counts = {
            label: count
            for (fname, label), count in vm.block_counts.items()
            if fname == "count_above"
        }
        func = program.function("count_above")
        entry_label = func.entry.label
        assert counts[entry_label] == 1
        assert max(counts.values()) >= 20  # the loop body

    def test_profiling_off_by_default(self):
        program = compile_source(SRC)
        vm = Interpreter(program)
        vm.run("count_above", (5,))
        assert vm.block_counts == {}
