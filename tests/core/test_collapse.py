"""Semantic DAG collapse: the enumerator-level merge contract.

Four invariants on top of the canon-layer tests:

- **syntactic mode is untouched** — the default configuration never
  builds a collapser, never writes aliases, and keeps its checkpoint
  format byte-compatible;
- **semantic spaces only shrink** — node counts are bounded by the
  syntactic space, refuted merges stay zero, and collapsed DAGs still
  materialize, checkpoint, and resume bit-identically;
- **parallel equals serial** — the coordinator replays merge decisions
  in serial order, so a ``--jobs 2`` semantic DAG is bit-identical to
  the serial one;
- **aliases resolve** — a merged instance's syntactic key still looks
  up its representative node.
"""

from __future__ import annotations

import pytest

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.dag import materialize_instances
from repro.frontend import compile_source
from repro.opt import implicit_cleanup
from repro.parallel import (
    EnumerationRequest,
    ParallelConfig,
    ParallelEnumerator,
    enumerate_space_parallel,
)
from repro.programs import PROGRAMS
from tests.conftest import GCD_SRC, MAXI_SRC, compile_fn


def bench_function(bench, name):
    program = compile_source(PROGRAMS[bench].source)
    func = program.functions[name].clone()
    implicit_cleanup(func)
    return program, func


def dag_snapshot(dag):
    """Everything a collapsed DAG must reproduce bit-identically."""
    nodes = tuple(
        (
            node_id,
            dag.nodes[node_id].key,
            dag.nodes[node_id].level,
            dag.nodes[node_id].num_insts,
            tuple(sorted(dag.nodes[node_id].active.items())),
            tuple(sorted(dag.nodes[node_id].dormant)),
        )
        for node_id in range(len(dag.nodes))
    )
    aliases = tuple(sorted(dag.aliases.items(), key=repr))
    return nodes, aliases, tuple(sorted(dag.weights().items()))


@pytest.fixture(scope="module")
def rol():
    return bench_function("sha", "rol")


@pytest.fixture(scope="module")
def rol_syntactic(rol):
    _, func = rol
    return enumerate_space(func, EnumerationConfig())


@pytest.fixture(scope="module")
def rol_semantic(rol):
    program, func = rol
    return enumerate_space(
        func, EnumerationConfig(collapse="semantic", program=program)
    )


class TestConfig:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="bad collapse mode"):
            EnumerationConfig(collapse="aggressive")

    def test_signature_separates_modes(self):
        syntactic = EnumerationConfig().signature()
        semantic = EnumerationConfig(collapse="semantic").signature()
        assert syntactic["collapse"] == "syntactic"
        assert semantic["collapse"] == "semantic"


class TestSyntacticUnchanged:
    def test_no_collapser_no_aliases_no_stats(self, rol_syntactic):
        assert rol_syntactic.collapse_stats is None
        assert rol_syntactic.dag.aliases == {}

    def test_checkpoint_has_no_collapse_keys(self, tmp_path, rol):
        from repro.core import checkpoint as ckpt

        _, func = rol
        path = str(tmp_path / "syntactic.ckpt")
        enumerate_space(
            func.clone(),
            EnumerationConfig(max_nodes=10, checkpoint_path=path),
        )
        state = ckpt.load_checkpoint(path)
        assert "collapse" not in state
        assert "aliases" not in state["dag"]


class TestSemanticCollapse:
    def test_space_only_shrinks(self, rol_syntactic, rol_semantic):
        assert len(rol_semantic.dag) <= len(rol_syntactic.dag)
        assert rol_semantic.completed

    def test_stats_reported_and_nothing_refuted(self, rol_semantic):
        stats = rol_semantic.collapse_stats
        assert stats is not None
        assert stats["refuted"] == 0
        assert stats["merged"] == (
            stats["merged_proved"] + stats["merged_tested"]
        )
        assert stats["merged"] > 0  # rol genuinely collapses

    def test_alias_lookup_resolves_to_representative(self, rol_semantic):
        dag = rol_semantic.dag
        assert dag.aliases  # rol produces at least one merge
        for key, rep_id in dag.aliases.items():
            node = dag.lookup(key)
            assert node is not None
            if key in dag.by_key:
                # A cycle-split instance shadows its stale alias: the
                # physically created node wins the lookup.
                assert node.node_id == dag.by_key[key]
            else:
                assert node.node_id == rep_id

    def test_collapsed_dag_is_acyclic(self, rol_semantic):
        # _topological_order raises on a cycle
        assert len(rol_semantic.dag._topological_order()) == len(
            rol_semantic.dag
        )

    def test_materialize_collapsed_instances(self, rol, rol_semantic):
        _, func = rol
        dag = rol_semantic.dag
        materialize_instances(dag, func.clone())
        assert all(
            node.function is not None for node in dag.nodes.values()
        )

    def test_exact_mode_composes(self):
        func = compile_fn(GCD_SRC, "gcd")
        result = enumerate_space(
            func, EnumerationConfig(collapse="semantic", exact=True)
        )
        assert result.completed
        assert result.collapse_stats["refuted"] == 0

    def test_deterministic(self, rol, rol_semantic):
        program, func = rol
        again = enumerate_space(
            func.clone(),
            EnumerationConfig(collapse="semantic", program=program),
        )
        assert dag_snapshot(again.dag) == dag_snapshot(rol_semantic.dag)
        assert again.collapse_stats == rol_semantic.collapse_stats


class TestCheckpointResume:
    def test_interrupted_resume_matches_uninterrupted(
        self, tmp_path, rol, rol_semantic
    ):
        program, func = rol
        path = str(tmp_path / "semantic.ckpt")
        cap = max(2, len(rol_semantic.dag) // 2)
        partial = enumerate_space(
            func.clone(),
            EnumerationConfig(
                collapse="semantic",
                program=program,
                max_nodes=cap,
                checkpoint_path=path,
            ),
        )
        assert not partial.completed
        resumed = enumerate_space(
            func.clone(),
            EnumerationConfig(
                collapse="semantic",
                program=program,
                checkpoint_path=path,
                resume=True,
            ),
        )
        assert resumed.completed
        assert resumed.resumed_from == path
        assert dag_snapshot(resumed.dag) == dag_snapshot(rol_semantic.dag)

    def test_mode_mismatch_rejected(self, tmp_path):
        func = compile_fn(MAXI_SRC, "maxi")
        path = str(tmp_path / "maxi.ckpt")
        enumerate_space(
            func.clone(),
            EnumerationConfig(max_nodes=5, checkpoint_path=path),
        )
        with pytest.raises(Exception):
            enumerate_space(
                func.clone(),
                EnumerationConfig(
                    collapse="semantic", checkpoint_path=path, resume=True
                ),
            )


class TestParallelEquivalence:
    def test_jobs2_bit_identical_to_serial(self, rol, rol_semantic):
        program, func = rol
        parallel = enumerate_space_parallel(
            func.clone(),
            EnumerationConfig(collapse="semantic", program=program),
            ParallelConfig(jobs=2),
        )
        assert parallel.completed
        assert dag_snapshot(parallel.dag) == dag_snapshot(rol_semantic.dag)
        assert parallel.collapse_stats == rol_semantic.collapse_stats

    def test_multi_request_stats(self, rol_semantic):
        program, func = bench_function("sha", "rol")
        results = ParallelEnumerator(
            EnumerationConfig(collapse="semantic"),
            ParallelConfig(jobs=2),
        ).enumerate(
            [
                EnumerationRequest(
                    "sha.rol", func, PROGRAMS["sha"].source
                )
            ]
        )
        assert results[0].collapse_stats is not None
        assert results[0].collapse_stats["refuted"] == 0
        assert dag_snapshot(results[0].dag) == dag_snapshot(rol_semantic.dag)
