"""Unit tests for the conventional batch compiler."""

from repro.core.batch import BATCH_LOOP, BATCH_ORDER, BATCH_PROLOGUE, BatchCompiler
from repro.opt import PHASE_IDS, apply_phase, phase_by_id
from repro.vm import Interpreter
from tests.conftest import GCD_SRC, SUM_ARRAY_SRC, compile_prog


class TestOrder:
    def test_order_only_contains_known_phases(self):
        assert set(BATCH_ORDER) <= set(PHASE_IDS)

    def test_evaluation_order_before_assignment_triggers(self):
        # o must precede the first phase requiring register assignment.
        o_at = BATCH_PROLOGUE.index("o")
        assert "c" not in BATCH_PROLOGUE[:o_at]
        assert "k" not in BATCH_PROLOGUE[:o_at]


class TestCompilation:
    def test_reaches_fixpoint(self):
        program = compile_prog(GCD_SRC)
        report = BatchCompiler().compile(program.function("gcd"))
        # after batch compilation, every phase must be dormant
        func = program.function("gcd")
        for phase_id in PHASE_IDS:
            assert not apply_phase(func, phase_by_id(phase_id)), phase_id

    def test_reports_attempted_and_active(self):
        program = compile_prog(GCD_SRC)
        report = BatchCompiler().compile(program.function("gcd"))
        assert report.attempted >= len(BATCH_PROLOGUE) + len(BATCH_LOOP)
        assert 0 < report.active < report.attempted
        assert report.active == len(report.active_sequence)
        assert report.code_size == program.function("gcd").num_instructions()

    def test_improves_code(self):
        program = compile_prog(SUM_ARRAY_SRC)
        func = program.function("sum_array")
        before_static = func.num_instructions()

        base = compile_prog(SUM_ARRAY_SRC)
        vm = Interpreter(base)
        for i in range(100):
            vm.store_global("a", i % 13, i)
        baseline = vm.run("sum_array")

        BatchCompiler().compile(func)
        vm2 = Interpreter(program)
        for i in range(100):
            vm2.store_global("a", i % 13, i)
        optimized = vm2.run("sum_array")
        assert optimized.value == baseline.value
        assert func.num_instructions() < before_static
        assert optimized.total_insts < baseline.total_insts

    def test_many_attempted_phases_are_dormant(self):
        # The motivation for the probabilistic compiler (section 6).
        program = compile_prog(GCD_SRC)
        report = BatchCompiler().compile(program.function("gcd"))
        assert report.attempted > 3 * report.active
