"""Unit tests for the phase interaction analysis (Tables 4-6)."""

import pytest

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.interactions import analyze_interactions
from repro.opt import PHASE_IDS
from tests.conftest import GCD_SRC, MAXI_SRC, SQUARE_SRC, compile_fn


@pytest.fixture(scope="module")
def analysis(small_interactions):
    return small_interactions


class TestProbabilityRanges:
    def test_all_probabilities_in_unit_interval(self, analysis):
        for table in (analysis.enabling, analysis.disabling, analysis.independence):
            for row in table.values():
                for value in row.values():
                    assert 0.0 <= value <= 1.0
        for value in analysis.start.values():
            assert 0.0 <= value <= 1.0

    def test_start_probabilities_cover_all_phases(self, analysis):
        assert set(analysis.start) == set(PHASE_IDS)


class TestPaperRelations:
    """The paper's headline interaction facts must emerge from the data."""

    def test_instruction_selection_active_at_start(self, analysis):
        assert analysis.start["s"] == 1.0

    def test_cse_active_at_start(self, analysis):
        assert analysis.start["c"] == 1.0

    def test_unreachable_code_removal_never_enabled(self, analysis):
        # Table 4: d's row is empty — branch chaining cleans up after
        # itself, so nothing ever enables d.
        row = analysis.enabling.get("d", {})
        assert all(value < 0.05 for value in row.values())

    def test_register_allocation_enabled_by_selection(self, analysis):
        # Table 4: k requires s in VPO; the enabling probability is high.
        assert analysis.enabling["k"]["s"] > 0.5

    def test_selection_enabled_by_allocation(self, analysis):
        # Table 4: k's moves are collapsed by s (paper reports 0.97).
        assert analysis.enabling["s"]["k"] > 0.5

    def test_phases_disable_themselves(self, analysis):
        # Table 5's diagonal is 1.00: a phase runs to its fixpoint.
        for phase_id, row in analysis.disabling.items():
            if phase_id in row:
                assert row[phase_id] == 1.0

    def test_evaluation_order_disabled_by_cse(self, analysis):
        # Table 5: c requires register assignment, killing o.
        if "o" in analysis.disabling and "c" in analysis.disabling["o"]:
            assert analysis.disabling["o"]["c"] == 1.0

    def test_independence_is_symmetric(self, analysis):
        for x, row in analysis.independence.items():
            for y, value in row.items():
                assert analysis.independence[y][x] == pytest.approx(value)


class TestFormatting:
    def test_tables_render(self, analysis):
        enabling = analysis.format_enabling()
        assert "St" in enabling
        for phase_id in PHASE_IDS:
            assert f"\n{phase_id:>5}" in enabling or f" {phase_id:>4}" in enabling
        disabling = analysis.format_disabling()
        independence = analysis.format_independence()
        assert disabling.count("\n") == independence.count("\n") + 0

    def test_low_probabilities_blank(self, analysis):
        # Cells under 0.005 render blank, like the paper's tables.
        text = analysis.format_enabling()
        assert "0.00" not in text
