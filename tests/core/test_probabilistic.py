"""Unit tests for the probabilistic batch compiler (Figure 8)."""

import pytest

from repro.core.batch import BatchCompiler
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.interactions import InteractionAnalysis, analyze_interactions
from repro.core.probabilistic import ProbabilisticCompiler
from repro.opt import PHASE_IDS
from repro.vm import Interpreter
from tests.conftest import GCD_SRC, MAXI_SRC, SQUARE_SRC, compile_fn, compile_prog


@pytest.fixture(scope="module")
def interactions(small_interactions):
    return small_interactions


class TestAlgorithm:
    def test_compiles_and_terminates(self, interactions):
        program = compile_prog(GCD_SRC)
        report = ProbabilisticCompiler(interactions).compile(program.function("gcd"))
        assert report.attempted > 0

    def test_fewer_attempts_than_batch(self, interactions):
        batch_prog = compile_prog(GCD_SRC)
        batch = BatchCompiler().compile(batch_prog.function("gcd"))
        prob_prog = compile_prog(GCD_SRC)
        prob = ProbabilisticCompiler(interactions).compile(
            prob_prog.function("gcd")
        )
        # The paper's headline: under a third of the attempted phases.
        assert prob.attempted < batch.attempted / 2

    def test_comparable_code_quality(self, interactions):
        batch_prog = compile_prog(GCD_SRC)
        batch = BatchCompiler().compile(batch_prog.function("gcd"))
        prob_prog = compile_prog(GCD_SRC)
        prob = ProbabilisticCompiler(interactions).compile(
            prob_prog.function("gcd")
        )
        assert prob.code_size <= batch.code_size * 1.25

    def test_semantics_preserved(self, interactions):
        expected = Interpreter(compile_prog(GCD_SRC)).run("gcd", (1071, 462)).value
        program = compile_prog(GCD_SRC)
        ProbabilisticCompiler(interactions).compile(program.function("gcd"))
        assert Interpreter(program).run("gcd", (1071, 462)).value == expected

    def test_zero_probabilities_mean_no_attempts(self):
        empty = InteractionAnalysis(PHASE_IDS, {}, {}, {}, {pid: 0.0 for pid in PHASE_IDS})
        program = compile_prog(GCD_SRC)
        report = ProbabilisticCompiler(empty).compile(program.function("gcd"))
        assert report.attempted == 0

    def test_benefit_weighted_selection(self, interactions):
        # Section 6's suggested refinement: the benefit-aware variant
        # must still compile correctly and reach comparable code size.
        plain_prog = compile_prog(GCD_SRC)
        plain = ProbabilisticCompiler(interactions).compile(
            plain_prog.function("gcd")
        )
        benefit_prog = compile_prog(GCD_SRC)
        benefit = ProbabilisticCompiler(interactions, use_benefits=True).compile(
            benefit_prog.function("gcd")
        )
        assert benefit.code_size <= plain.code_size * 1.3
        assert (
            Interpreter(benefit_prog).run("gcd", (252, 105)).value
            == Interpreter(plain_prog).run("gcd", (252, 105)).value
            == 21
        )

    def test_size_effects_available_from_training(self, interactions):
        # Enumerated data must yield a size effect for the always-
        # shrinking phases; dead assignment elimination shrinks code.
        assert interactions.size_effect
        assert interactions.size_effect.get("h", 0.0) < 0

    def test_probability_update_rule(self, interactions):
        # After an active phase j, p[i] moves toward 1 with e[i][j] and
        # toward 0 with d[i][j]; p[j] is reset.  Verify on a controlled
        # table: only 's' starts active and enables 'k'.
        analysis = InteractionAnalysis(
            ("s", "k"),
            {"k": {"s": 1.0}},
            {},
            {},
            {"s": 1.0, "k": 0.0},
        )
        program = compile_prog(GCD_SRC)
        report = ProbabilisticCompiler(analysis).compile(program.function("gcd"))
        assert report.active_sequence[:2] == ("s", "k")
