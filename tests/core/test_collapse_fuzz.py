"""Differential fuzz: engines × collapse modes must agree on the space.

Random well-typed functions go through the flat and object expansion
engines under both collapse modes.  The flat engine promises the same
space as the object engine; semantic collapse promises the same
*decisions* regardless of engine (merge proofs always run on the
object view).  So, per random function:

- syntactic flat and syntactic object produce identical DAG
  fingerprints (node keys, edges, dormant sets);
- semantic flat and semantic object are bit-identical too — including
  the alias table and the merge/split counters;
- the semantic space never exceeds the syntactic one, and nothing is
  ever refuted (a refuted digest collision would be a canonicalizer
  bug).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.frontend import compile_source
from repro.opt import implicit_cleanup
from tests.test_properties import programs

_SETTINGS = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

_BUDGET = dict(max_nodes=60, max_levels=3)


def _snapshot(dag):
    nodes = tuple(
        (
            node_id,
            dag.nodes[node_id].key,
            dag.nodes[node_id].level,
            tuple(sorted(dag.nodes[node_id].active.items())),
            tuple(sorted(dag.nodes[node_id].dormant)),
        )
        for node_id in range(len(dag.nodes))
    )
    return nodes, tuple(sorted(dag.aliases.items(), key=repr))


def _enumerate(program, engine, collapse):
    func = program.function("f").clone()
    implicit_cleanup(func)
    return enumerate_space(
        func,
        EnumerationConfig(
            engine=engine, collapse=collapse, program=program, **_BUDGET
        ),
    )


@settings(max_examples=6, **_SETTINGS)
@given(programs())
def test_engines_and_collapse_modes_agree(source):
    program = compile_source(source)
    syntactic = {
        engine: _enumerate(program, engine, "syntactic")
        for engine in ("flat", "object")
    }
    semantic = {
        engine: _enumerate(program, engine, "semantic")
        for engine in ("flat", "object")
    }

    assert _snapshot(syntactic["flat"].dag) == _snapshot(
        syntactic["object"].dag
    )
    assert syntactic["flat"].collapse_stats is None

    assert _snapshot(semantic["flat"].dag) == _snapshot(semantic["object"].dag)
    assert (
        semantic["flat"].collapse_stats == semantic["object"].collapse_stats
    )

    for engine in ("flat", "object"):
        stats = semantic[engine].collapse_stats
        assert stats is not None
        assert stats["refuted"] == 0
        if semantic[engine].completed and syntactic[engine].completed:
            # Only comparable on complete spaces: a budget-truncated
            # semantic run visits a different instance prefix, so its
            # node count is not bounded by the truncated syntactic one.
            assert len(semantic[engine].dag) <= len(syntactic[engine].dag)
        # class count: every physically created canonical instance owns
        # one class; merges never add classes
        assert stats["classes"] <= len(semantic[engine].dag)
