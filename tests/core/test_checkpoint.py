"""Checkpoint/resume: interrupted enumerations must be bit-identical."""

import json
import os

import pytest

from repro.core import checkpoint as ckpt
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.fingerprint import fingerprint_function
from repro.frontend import compile_source
from repro.opt import implicit_cleanup
from repro.programs import PROGRAMS
from repro.robustness.faults import FaultInjector
from tests.conftest import GCD_SRC, MAXI_SRC, compile_fn


def bench_function(bench, name):
    func = compile_source(PROGRAMS[bench].source).functions[name].clone()
    implicit_cleanup(func)
    return func


def dag_snapshot(dag):
    """Everything that must be identical after a resume."""
    nodes = tuple(
        (
            node_id,
            dag.nodes[node_id].key,
            dag.nodes[node_id].level,
            dag.nodes[node_id].num_insts,
            tuple(sorted(dag.nodes[node_id].active.items())),
            tuple(sorted(dag.nodes[node_id].dormant)),
        )
        for node_id in range(len(dag.nodes))
    )
    weights = tuple(sorted(dag.weights().items()))
    return nodes, weights


class TestFunctionRoundTrip:
    def test_fingerprint_preserved(self, gcd_func):
        restored = ckpt.function_from_dict(ckpt.function_to_dict(gcd_func))
        assert (
            fingerprint_function(restored).key
            == fingerprint_function(gcd_func).key
        )
        assert restored.params == gcd_func.params
        assert restored.frame_size == gcd_func.frame_size
        assert list(restored.frame) == list(gcd_func.frame)

    def test_flags_and_counters_preserved(self, gcd_func):
        from repro.core.batch import BatchCompiler

        BatchCompiler().compile(gcd_func)
        restored = ckpt.function_from_dict(ckpt.function_to_dict(gcd_func))
        assert restored.reg_assigned and gcd_func.reg_assigned
        assert restored.sel_applied == gcd_func.sel_applied
        assert restored.alloc_applied == gcd_func.alloc_applied
        assert restored.next_pseudo == gcd_func.next_pseudo
        assert restored.next_label == gcd_func.next_label

    def test_key_json_roundtrip(self):
        key = ((3, (1, 2), True), False, True, False)
        assert ckpt.key_from_json(ckpt.key_to_json(key)) == key


class TestFileIO:
    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "state.json")
        ckpt.save_checkpoint(path, {"function_name": "f", "x": [1, 2]})
        state = ckpt.load_checkpoint(path)
        assert state["x"] == [1, 2]
        assert state["version"] == ckpt.CHECKPOINT_VERSION

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text(json.dumps({"version": 999}))
        with pytest.raises(ckpt.CheckpointError, match="version"):
            ckpt.load_checkpoint(str(path))

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text("{ not json")
        with pytest.raises(ckpt.CheckpointError, match="malformed"):
            ckpt.load_checkpoint(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ckpt.CheckpointError, match="cannot read"):
            ckpt.load_checkpoint(str(tmp_path / "nope.json"))


class TestResumeBitIdentity:
    @pytest.mark.parametrize(
        "bench,name,cap",
        [("sha", "rol", 25), ("bitcount", "ntbl_bitcount", 20)],
    )
    def test_interrupted_resume_matches_uninterrupted(
        self, tmp_path, bench, name, cap
    ):
        baseline = enumerate_space(
            bench_function(bench, name), EnumerationConfig()
        )
        assert baseline.completed

        path = str(tmp_path / "ckpt.json")
        aborted = enumerate_space(
            bench_function(bench, name),
            EnumerationConfig(max_nodes=cap, checkpoint_path=path),
        )
        assert not aborted.completed

        resumed = enumerate_space(
            bench_function(bench, name),
            EnumerationConfig(checkpoint_path=path, resume=True),
        )
        assert resumed.completed
        assert resumed.resumed_from == path
        assert dag_snapshot(resumed.dag) == dag_snapshot(baseline.dag)
        assert resumed.attempted_phases == baseline.attempted_phases

    def test_chained_resume(self, tmp_path):
        baseline = enumerate_space(
            bench_function("sha", "rol"), EnumerationConfig()
        )
        path = str(tmp_path / "ckpt.json")
        result = enumerate_space(
            bench_function("sha", "rol"),
            EnumerationConfig(max_nodes=10, checkpoint_path=path),
        )
        assert not result.completed
        result = enumerate_space(
            bench_function("sha", "rol"),
            EnumerationConfig(max_nodes=40, checkpoint_path=path, resume=True),
        )
        assert not result.completed
        result = enumerate_space(
            bench_function("sha", "rol"),
            EnumerationConfig(checkpoint_path=path, resume=True),
        )
        assert result.completed
        assert dag_snapshot(result.dag) == dag_snapshot(baseline.dag)

    def test_checkpoint_removed_on_completion(self, tmp_path):
        path = tmp_path / "ckpt.json"
        result = enumerate_space(
            compile_fn(MAXI_SRC, "maxi"),
            EnumerationConfig(checkpoint_path=str(path)),
        )
        assert result.completed
        assert not path.exists()

    def test_checkpoint_written_on_abort(self, tmp_path):
        path = tmp_path / "ckpt.json"
        result = enumerate_space(
            compile_fn(GCD_SRC, "gcd"),
            EnumerationConfig(max_nodes=10, checkpoint_path=str(path)),
        )
        assert not result.completed
        state = ckpt.load_checkpoint(str(path))
        assert state["function_name"] == "gcd"
        assert not state["completed"]
        assert len(state["dag"]["nodes"]) == len(result.dag)


class TestResumeSafety:
    def test_wrong_function_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        enumerate_space(
            compile_fn(GCD_SRC, "gcd"),
            EnumerationConfig(max_nodes=10, checkpoint_path=path),
        )
        with pytest.raises(ckpt.CheckpointError, match="for function"):
            enumerate_space(
                compile_fn(MAXI_SRC, "maxi"),
                EnumerationConfig(checkpoint_path=path, resume=True),
            )

    def test_changed_source_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        enumerate_space(
            compile_fn(GCD_SRC, "gcd"),
            EnumerationConfig(max_nodes=10, checkpoint_path=path),
        )
        other = compile_fn(
            "int gcd(int a, int b) { return a + b; }", "gcd"
        )
        with pytest.raises(ckpt.CheckpointError, match="root fingerprint"):
            enumerate_space(
                other, EnumerationConfig(checkpoint_path=path, resume=True)
            )

    def test_different_settings_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        enumerate_space(
            compile_fn(GCD_SRC, "gcd"),
            EnumerationConfig(max_nodes=10, checkpoint_path=path),
        )
        with pytest.raises(ckpt.CheckpointError, match="different enumeration"):
            enumerate_space(
                compile_fn(GCD_SRC, "gcd"),
                EnumerationConfig(
                    checkpoint_path=path, resume=True, remap=False
                ),
            )

    def test_resume_without_file_starts_fresh(self, tmp_path):
        path = str(tmp_path / "never-written.json")
        result = enumerate_space(
            compile_fn(MAXI_SRC, "maxi"),
            EnumerationConfig(checkpoint_path=path, resume=True),
        )
        assert result.completed
        assert result.resumed_from is None


class TestFaultInjectionEndToEnd:
    def test_n_faults_yield_n_quarantine_records(self):
        injector = FaultInjector(
            seed=11, modes=("raise", "corrupt"), attempts={3, 11, 29}
        )
        result = enumerate_space(
            compile_fn(MAXI_SRC, "maxi"),
            EnumerationConfig(validate=True, fault_injector=injector),
        )
        assert result.completed
        assert injector.injected == 3
        assert len(result.quarantine) == 3
        for record in result.quarantine:
            assert record.kind in ("exception", "validation")

    def test_rate_based_faults_complete(self):
        injector = FaultInjector(seed=5, rate=0.1, modes=("raise", "corrupt"))
        result = enumerate_space(
            compile_fn(MAXI_SRC, "maxi"),
            EnumerationConfig(validate=True, fault_injector=injector),
        )
        assert result.completed
        assert injector.injected > 0
        assert len(result.quarantine) == injector.injected

    def test_faults_survive_checkpoint_resume(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        injector = FaultInjector(seed=11, modes=("raise",), attempts={3, 7})
        aborted = enumerate_space(
            compile_fn(MAXI_SRC, "maxi"),
            EnumerationConfig(
                max_nodes=6,
                validate=True,
                fault_injector=injector,
                checkpoint_path=path,
            ),
        )
        assert not aborted.completed
        resumed = enumerate_space(
            compile_fn(MAXI_SRC, "maxi"),
            EnumerationConfig(
                validate=True,
                fault_injector=FaultInjector(seed=11, modes=("raise",), attempts=set()),
                checkpoint_path=path,
                resume=True,
            ),
        )
        assert resumed.completed
        # Quarantine records from before the abort are carried over.
        assert len(resumed.quarantine) >= len(aborted.quarantine)


class TestCheckpointLock:
    def test_acquire_release_cycle(self, tmp_path):
        path = str(tmp_path / "space.ckpt.json")
        lock = ckpt.CheckpointLock(path)
        lock.acquire()
        assert lock.held
        assert os.path.exists(path + ".lock")
        lock.release()
        assert not lock.held
        assert not os.path.exists(path + ".lock")
        # releasing twice is harmless
        lock.release()

    def test_second_acquire_fails_while_held(self, tmp_path):
        path = str(tmp_path / "space.ckpt.json")
        with ckpt.CheckpointLock(path):
            with pytest.raises(ckpt.CheckpointError, match="locked by"):
                ckpt.CheckpointLock(path).acquire()
        # released: acquirable again
        with ckpt.CheckpointLock(path):
            pass

    def test_stale_lock_of_dead_process_is_stolen(self, tmp_path):
        path = str(tmp_path / "space.ckpt.json")
        # No live process has this pid (kernel pid_max is far below it).
        with open(path + ".lock", "w") as handle:
            handle.write("99999999\n")
        with ckpt.CheckpointLock(path) as lock:
            assert lock.held

    def test_garbage_lock_file_is_stolen(self, tmp_path):
        path = str(tmp_path / "space.ckpt.json")
        with open(path + ".lock", "w") as handle:
            handle.write("not a pid")
        with ckpt.CheckpointLock(path) as lock:
            assert lock.held

    def test_enumeration_releases_lock_on_completion(self, tmp_path, gcd_func):
        path = str(tmp_path / "gcd.ckpt.json")
        config = EnumerationConfig(checkpoint_path=path)
        result = enumerate_space(gcd_func, config)
        assert result.completed
        assert not os.path.exists(path + ".lock")
        # ...and the path is immediately reusable by another run
        again = enumerate_space(gcd_func, EnumerationConfig(checkpoint_path=path))
        assert again.completed

    def test_enumeration_releases_lock_on_abort(self, tmp_path, gcd_func):
        path = str(tmp_path / "gcd.ckpt.json")
        result = enumerate_space(
            gcd_func, EnumerationConfig(max_nodes=5, checkpoint_path=path)
        )
        assert not result.completed
        assert os.path.exists(path)  # abort checkpoint written
        assert not os.path.exists(path + ".lock")

    def test_concurrent_enumeration_is_rejected(self, tmp_path, gcd_func):
        path = str(tmp_path / "gcd.ckpt.json")
        held = ckpt.CheckpointLock(path).acquire()
        try:
            with pytest.raises(ckpt.CheckpointError, match="locked by"):
                enumerate_space(
                    gcd_func, EnumerationConfig(checkpoint_path=path)
                )
        finally:
            held.release()


class TestCanonicalInput:
    def test_fast_path_matches_default_on_canonical_input(self):
        func = bench_function("jpeg", "descale")  # already canonicalized
        default = enumerate_space(func, EnumerationConfig())
        fast = enumerate_space(func, EnumerationConfig(canonical_input=True))
        assert dag_snapshot(fast.dag) == dag_snapshot(default.dag)
        assert fast.attempted_phases == default.attempted_phases

    def test_fast_path_skips_cleanup(self, gcd_func, monkeypatch):
        import repro.core.enumeration as enum_mod

        calls = []
        real = enum_mod.implicit_cleanup

        def counting(func):
            calls.append(func.name)
            return real(func)

        monkeypatch.setattr(enum_mod, "implicit_cleanup", counting)
        enumerate_space(gcd_func, EnumerationConfig(canonical_input=True, max_levels=1))
        assert calls == []
        enumerate_space(gcd_func, EnumerationConfig(max_levels=1))
        assert calls == [gcd_func.name]

    def test_resume_probe_respects_fast_path(self, tmp_path):
        func = bench_function("sha", "rol")
        path = str(tmp_path / "rol.ckpt.json")
        config = EnumerationConfig(
            max_nodes=20, checkpoint_path=path, canonical_input=True
        )
        aborted = enumerate_space(func, config)
        assert not aborted.completed
        resumed = enumerate_space(
            func,
            EnumerationConfig(
                checkpoint_path=path, resume=True, canonical_input=True
            ),
        )
        reference = enumerate_space(func, EnumerationConfig())
        assert resumed.completed
        assert dag_snapshot(resumed.dag) == dag_snapshot(reference.dag)
