"""Hot-path engine tests: streaming fingerprints, the analysis cache,
the single-clone fast path, and the phase-transition memo.

Every optimization here is only admissible because it is invisible:
each test pins some piece of the ``bit-identical to the slow path``
contract — streaming vs render-then-hash fingerprints, zlib vs
from-scratch CRC, cached vs recomputed analyses, memoized vs real
phase transitions.
"""

from __future__ import annotations

import json
import random
import zlib

import pytest
from hypothesis import given, strategies as st

from repro.core import crc as crc_mod
from repro.core.crc import crc32, crc32_reference
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.fingerprint import fingerprint_function, set_legacy_mode
from repro.core.memo import MemoEntry, TransitionMemo
from repro.opt import (
    PHASES,
    apply_phase,
    attempt_phase_on_clone,
    implicit_cleanup,
    set_legacy_clone_mode,
)
from repro.analysis import set_cache_enabled, set_paranoid
from repro.programs import PROGRAMS, compile_benchmark


def _all_seed_functions():
    """Every function of every bundled benchmark, canonicalized."""
    for bench_name in sorted(PROGRAMS):
        program = compile_benchmark(bench_name)
        for name, func in program.functions.items():
            clone = func.clone()
            implicit_cleanup(clone)
            yield f"{bench_name}.{name}", clone


def _mutated_functions(seed: int = 2006, count: int = 10, length: int = 6):
    """Functions randomly walked through the phase space (each step is
    a real phase application, so these cover post-optimization shapes:
    assigned registers, folded instructions, unrolled loops, ...)."""
    rng = random.Random(seed)
    pool = list(_all_seed_functions())
    for _ in range(count):
        label, func = pool[rng.randrange(len(pool))]
        func = func.clone()
        applied = []
        for _step in range(length):
            phase = PHASES[rng.randrange(len(PHASES))]
            if apply_phase(func, phase):
                applied.append(phase.id)
        yield f"{label}+{''.join(applied)}", func


def _legacy_fingerprint(func, keep_text=False, remap=True):
    previous = set_legacy_mode(True)
    try:
        return fingerprint_function(func, keep_text=keep_text, remap=remap)
    finally:
        set_legacy_mode(previous)


def dag_snapshot(dag):
    return tuple(
        (
            node_id,
            dag.nodes[node_id].key,
            dag.nodes[node_id].level,
            dag.nodes[node_id].num_insts,
            dag.nodes[node_id].cf_crc,
            tuple(sorted(dag.nodes[node_id].active.items())),
            tuple(sorted(dag.nodes[node_id].dormant)),
            tuple(dag.nodes[node_id].parents),
        )
        for node_id in sorted(dag.nodes)
    )


def result_signature(result):
    return (
        dag_snapshot(result.dag),
        result.attempted_phases,
        result.phases_applied,
    )


# ----------------------------------------------------------------------
# Streaming fingerprint == legacy render-then-hash fingerprint
# ----------------------------------------------------------------------


class TestStreamingFingerprint:
    def test_matches_legacy_on_every_seed_function(self):
        for label, func in _all_seed_functions():
            assert fingerprint_function(func) == _legacy_fingerprint(func), label

    def test_matches_legacy_on_phase_mutated_functions(self):
        for label, func in _mutated_functions():
            assert fingerprint_function(func) == _legacy_fingerprint(func), label

    def test_matches_legacy_under_reference_crc(self):
        # The table CRC and zlib must agree through the streaming
        # chunk-chaining too, not just on whole buffers.
        previous = crc_mod.set_reference_mode(True)
        try:
            for label, func in list(_all_seed_functions())[:8]:
                assert fingerprint_function(func) == _legacy_fingerprint(
                    func
                ), label
        finally:
            crc_mod.set_reference_mode(previous)

    def test_keep_text_matches_streaming_hashes(self):
        # Exact mode renders the text; its hashes must equal the
        # streaming ones bit for bit.
        for label, func in list(_all_seed_functions())[:8]:
            with_text = fingerprint_function(func, keep_text=True)
            streamed = fingerprint_function(func)
            assert with_text.key == streamed.key, label
            assert with_text.cf_crc == streamed.cf_crc, label
            assert with_text.text is not None

    def test_no_remap_ablation_unchanged(self):
        for label, func in list(_all_seed_functions())[:8]:
            assert fingerprint_function(func, remap=False) == _legacy_fingerprint(
                func, remap=False
            ), label


@given(st.lists(st.binary(max_size=64), max_size=8))
def test_crc_chaining_matches_whole_buffer(chunks):
    # The streaming pipeline relies on crc32(b, crc32(a)) == crc32(a+b)
    # for both implementations.
    joined = b"".join(chunks)
    value = 0
    reference = 0
    for chunk in chunks:
        value = crc32(chunk, value)
        reference = crc32_reference(chunk, reference)
    assert value == crc32(joined) == zlib.crc32(joined)
    assert reference == crc32_reference(joined) == zlib.crc32(joined)


@given(st.binary(max_size=256), st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_reference_crc_matches_zlib_with_seed(data, seed):
    assert crc32_reference(data, seed) == zlib.crc32(data, seed)


# ----------------------------------------------------------------------
# Analysis cache: invisible, and invalidation is complete
# ----------------------------------------------------------------------


class TestAnalysisCache:
    def test_cache_off_is_bit_identical(self):
        func = compile_benchmark("sha").functions["rol"]
        implicit_cleanup(func)
        cached = enumerate_space(func, EnumerationConfig())
        previous = set_cache_enabled(False)
        try:
            uncached = enumerate_space(func, EnumerationConfig())
        finally:
            set_cache_enabled(previous)
        assert result_signature(cached) == result_signature(uncached)

    def test_paranoid_mode_finds_no_stale_analyses(self):
        # Paranoid mode recomputes every analysis and raises if a
        # cached one diverges — a full enumeration is a sweep over
        # every phase's invalidation discipline.
        func = compile_benchmark("jpeg").functions["descale"]
        implicit_cleanup(func)
        previous = set_paranoid(True)
        try:
            result = enumerate_space(func, EnumerationConfig())
        finally:
            set_paranoid(previous)
        assert result.completed


# ----------------------------------------------------------------------
# Single-clone fast path == legacy clone + apply_phase
# ----------------------------------------------------------------------


class TestSingleCloneFastPath:
    def test_matches_legacy_on_mutated_functions(self):
        for label, func in _mutated_functions(seed=7, count=6, length=4):
            for phase in PHASES:
                before = fingerprint_function(func, keep_text=True)
                fast = attempt_phase_on_clone(func.clone(), phase)
                previous = set_legacy_clone_mode(True)
                try:
                    slow = attempt_phase_on_clone(func.clone(), phase)
                finally:
                    set_legacy_clone_mode(previous)
                # dormant/active agreement, identical results, and the
                # parent untouched either way
                assert (fast is None) == (slow is None), (label, phase.id)
                if fast is not None:
                    assert fingerprint_function(
                        fast, keep_text=True
                    ) == fingerprint_function(slow, keep_text=True), (
                        label,
                        phase.id,
                    )
                    assert (fast.reg_assigned, fast.sel_applied, fast.alloc_applied) == (
                        slow.reg_assigned,
                        slow.sel_applied,
                        slow.alloc_applied,
                    )
                assert fingerprint_function(func, keep_text=True) == before

    def test_dormant_phase_never_mutates_parent(self):
        func = compile_benchmark("sha").functions["rol"]
        implicit_cleanup(func)
        before = fingerprint_function(func, keep_text=True)
        for phase in PHASES:
            attempt_phase_on_clone(func, phase)
            assert fingerprint_function(func, keep_text=True) == before, phase.id


# ----------------------------------------------------------------------
# Phase-transition memo
# ----------------------------------------------------------------------


@pytest.fixture()
def rol():
    func = compile_benchmark("sha").functions["rol"]
    implicit_cleanup(func)
    return func


class TestTransitionMemo:
    def test_cold_and_warm_runs_bit_identical(self, rol):
        baseline = enumerate_space(rol, EnumerationConfig())
        memo = TransitionMemo()
        cold = enumerate_space(rol, EnumerationConfig(memo=memo))
        assert len(memo) > 0
        warm = enumerate_space(rol, EnumerationConfig(memo=memo))
        assert (
            result_signature(baseline)
            == result_signature(cold)
            == result_signature(warm)
        )
        # the warm run never executed a phase: every transition hit
        assert memo.hits >= baseline.attempted_phases

    def test_exact_mode_verifies_and_passes(self, rol):
        memo = TransitionMemo()
        enumerate_space(rol, EnumerationConfig(memo=memo))
        exact = enumerate_space(rol, EnumerationConfig(memo=memo, exact=True))
        baseline = enumerate_space(rol, EnumerationConfig(exact=True))
        assert result_signature(exact) == result_signature(baseline)

    def test_exact_mode_raises_on_poisoned_entry(self, rol):
        memo = TransitionMemo()
        enumerate_space(rol, EnumerationConfig(memo=memo))
        # Flip one recorded dormancy: exact mode must notice.
        parent_key, phase_id = next(
            k for k, entry in memo.entries.items() if entry.dormant
        )
        memo.entries[(parent_key, phase_id)] = MemoEntry(
            dormant=False, key=("poisoned",), num_insts=1, cf_crc=1
        )
        with pytest.raises(RuntimeError, match="memo"):
            enumerate_space(rol, EnumerationConfig(memo=memo, exact=True))

    def test_json_round_trip(self, rol):
        memo = TransitionMemo()
        baseline = enumerate_space(rol, EnumerationConfig(memo=memo))
        restored = TransitionMemo.from_dict(
            json.loads(json.dumps(memo.to_dict()))
        )
        assert len(restored) == len(memo)
        warm = enumerate_space(rol, EnumerationConfig(memo=restored))
        assert result_signature(warm) == result_signature(baseline)

    def test_memo_ignored_under_guards(self, rol):
        # A guarded run must execute every phase for real.
        memo = TransitionMemo()
        enumerate_space(rol, EnumerationConfig(memo=memo))
        hits_before = memo.hits
        guarded = enumerate_space(
            rol, EnumerationConfig(memo=memo, validate=True)
        )
        assert guarded.completed
        assert memo.hits == hits_before

    def test_memo_shared_across_functions(self):
        # Content-keyed entries: enumerating f twice under one memo via
        # two *different* Function objects still hits.
        a = compile_benchmark("fft").functions["fcos"]
        b = compile_benchmark("fft").functions["fcos"]
        implicit_cleanup(a)
        implicit_cleanup(b)
        memo = TransitionMemo()
        first = enumerate_space(a, EnumerationConfig(memo=memo))
        misses_after_first = memo.misses
        second = enumerate_space(b, EnumerationConfig(memo=memo))
        assert memo.misses == misses_after_first
        assert result_signature(first) == result_signature(second)
