"""Unit tests for the space DAG, including the paper's Figure 7."""

import pytest

from repro.core.dag import SpaceDAG


def figure7_dag():
    """Build exactly the weighted DAG of the paper's Figure 7.

    Root (weight 5) has active {a, b, c}; the interior nodes and edges
    follow the figure: a->[abc]-node? — concretely:

        root --a--> n1[bc], --b--> n2[a], --c--> n3[ab]
        n1 --b--> n4(leaf via c? no) ... simplified faithful version:

    We reproduce the figure's arithmetic: leaves weigh 1, interior
    nodes sum their children, root weight = 5.
    """
    dag = SpaceDAG("fig7")
    root = dag.add_node("root", 0, 10, 0)
    n_a = dag.add_node("a", 1, 9, 0)  # reached by a; actives {b, c}
    n_b = dag.add_node("b", 1, 9, 1)  # reached by b; actives {a}
    n_c = dag.add_node("c", 1, 9, 1)  # reached by c; actives {a, b}? figure: [ab]
    dag.add_edge(root, "a", n_a)
    dag.add_edge(root, "b", n_b)
    dag.add_edge(root, "c", n_c)

    n_ab = dag.add_node("ab", 2, 8, 0)  # a-b and b-a converge (independent)
    n_ac = dag.add_node("ac", 2, 8, 0)  # a-c and c-a converge
    n_cb = dag.add_node("cb", 2, 8, 1)  # c-b distinct from b-c? figure shows b-c -> d
    dag.add_edge(n_a, "b", n_ab)
    dag.add_edge(n_a, "c", n_ac)
    dag.add_edge(n_b, "a", n_ab)
    dag.add_edge(n_c, "a", n_ac)
    dag.add_edge(n_c, "b", n_cb)

    n_aba = dag.add_node("ab-a", 3, 7, 0)  # [d] node in the figure
    dag.add_edge(n_ab, "a", n_aba)
    n_abad = dag.add_node("ab-a-d", 4, 6, 0)
    dag.add_edge(n_aba, "d", n_abad)

    for node in dag.nodes.values():
        node.expanded = True
    return dag


class TestWeights:
    def test_figure7_weights(self):
        dag = figure7_dag()
        weights = dag.weights()
        by_key = {node.key: weights[node.node_id] for node in dag.nodes.values()}
        assert by_key["ab-a-d"] == 1
        assert by_key["ab-a"] == 1
        assert by_key["ab"] == 1
        assert by_key["ac"] == 1
        assert by_key["cb"] == 1
        assert by_key["a"] == 2  # ab + ac
        assert by_key["b"] == 1
        assert by_key["c"] == 2  # ac + cb
        assert by_key["root"] == 5

    def test_leaves(self):
        dag = figure7_dag()
        leaf_keys = {node.key for node in dag.leaves()}
        assert leaf_keys == {"ab-a-d", "ac", "cb"}

    def test_depth(self):
        assert figure7_dag().depth() == 4

    def test_path_counts_give_tree_size(self):
        dag = figure7_dag()
        counts = dag.path_counts()
        by_key = {node.key: counts[node.node_id] for node in dag.nodes.values()}
        assert by_key["root"] == 1
        assert by_key["ab"] == 2  # via a-b and b-a
        assert by_key["ac"] == 2
        # tree size = total root-to-node paths
        assert dag.tree_size() == sum(by_key.values())
        assert dag.tree_size() > len(dag)

    def test_naive_space_size(self):
        dag = figure7_dag()
        assert dag.naive_space_size(15) == sum(15 ** i for i in range(5))

    def test_distinct_control_flows(self):
        assert figure7_dag().distinct_control_flows() == 2

    def test_codesize_over_leaves(self):
        dag = figure7_dag()
        assert dag.min_codesize() == 6
        assert dag.max_codesize() == 8


class TestStructure:
    def test_lookup_by_key(self):
        dag = figure7_dag()
        assert dag.lookup("ab").key == "ab"
        assert dag.lookup("nope") is None

    def test_parents_recorded(self):
        dag = figure7_dag()
        node = dag.lookup("ab")
        assert sorted(phase for (_pid, phase) in node.parents) == ["a", "b"]

    def test_cycle_detection(self):
        dag = SpaceDAG("cyclic")
        a = dag.add_node("a", 0, 1, 0)
        b = dag.add_node("b", 1, 1, 0)
        dag.add_edge(a, "x", b)
        dag.add_edge(b, "y", a)
        a.expanded = b.expanded = True
        with pytest.raises(RuntimeError, match="cycle"):
            dag.weights()
