"""Unit tests for the from-scratch CRC-32."""

import zlib

from hypothesis import given, strategies as st

from repro.core.crc import crc32


class TestCrc32:
    def test_empty(self):
        assert crc32(b"") == 0

    def test_known_vector(self):
        # The classic check value for CRC-32/ISO-HDLC.
        assert crc32(b"123456789") == 0xCBF43926

    def test_matches_zlib(self):
        for data in (b"a", b"abc", b"hello world", bytes(range(256))):
            assert crc32(data) == zlib.crc32(data)

    def test_order_sensitivity(self):
        # The paper picks CRC over a plain checksum precisely because
        # byte order affects the result (section 4.2.1).
        assert crc32(b"ab") != crc32(b"ba")
        assert sum(b"ab") == sum(b"ba")  # the checksum it replaces


@given(st.binary(max_size=512))
def test_crc_matches_zlib_everywhere(data):
    assert crc32(data) == zlib.crc32(data)


@given(st.binary(min_size=2, max_size=64))
def test_single_bit_flip_changes_crc(data):
    flipped = bytes([data[0] ^ 1]) + data[1:]
    assert crc32(flipped) != crc32(data)
