"""Unit tests for the Table 3 statistics collector."""

from repro.core.enumeration import EnumerationConfig
from repro.core.stats import (
    FunctionSpaceStats,
    collect_function_stats,
    format_stats_table,
    static_function_facts,
)
from tests.conftest import MAXI_SRC, SUM_ARRAY_SRC, compile_fn


class TestStaticFacts:
    def test_counts_on_sum_array(self, sum_array_func):
        insts, blocks, branches, loops = static_function_facts(sum_array_func)
        assert insts == sum_array_func.num_instructions()
        assert blocks == len(sum_array_func.blocks)
        assert loops == 1
        assert branches >= 2


class TestCollect:
    def test_full_row(self):
        stats = collect_function_stats(
            compile_fn(MAXI_SRC, "maxi"), EnumerationConfig()
        )
        assert stats.completed
        assert stats.fn_instances == len(stats.result.dag)
        assert stats.max_seq_len == stats.result.dag.depth()
        assert stats.leaves >= 1
        assert stats.codesize_min <= stats.codesize_max
        assert stats.codesize_diff_percent is not None
        row = stats.row()
        assert len(row) == len(FunctionSpaceStats.HEADER)
        assert row[0] == "maxi"

    def test_aborted_search_reports_na(self):
        stats = collect_function_stats(
            compile_fn(SUM_ARRAY_SRC, "sum_array"),
            EnumerationConfig(max_nodes=5),
        )
        assert not stats.completed
        assert stats.row().count("N/A") == 8

    def test_table_formatting(self):
        stats = collect_function_stats(
            compile_fn(MAXI_SRC, "maxi"), EnumerationConfig()
        )
        table = format_stats_table([stats])
        lines = table.splitlines()
        assert len(lines) == 2
        assert "Function" in lines[0]
        assert "maxi" in lines[1]
