"""Unit tests for function-instance fingerprinting (section 4.2.1)."""

from repro.core.fingerprint import (
    control_flow_text,
    fingerprint_function,
    remap_function_text,
)
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Assign, Compare, CondBranch, Jump, Return
from repro.ir.operands import BinOp, Const, Mem, Reg
from repro.machine.target import RV


def figure5_function(sum_reg, addr_reg, base_reg, ptr_reg, bound_reg, val_reg, label):
    """The paper's Figure 5 loop with a configurable register naming."""
    func = Function("f", returns_value=True)
    entry = func.add_block("entry")
    loop = func.add_block(label)
    exit_ = func.add_block("exit")
    r = lambda i: Reg(i, pseudo=False)
    entry.insts = [
        Assign(r(sum_reg), Const(0)),
        Assign(r(base_reg), Const(4096)),
        Assign(r(ptr_reg), r(base_reg)),
        Assign(r(bound_reg), BinOp("add", r(base_reg), Const(4000))),
    ]
    loop.insts = [
        Assign(r(val_reg), Mem(r(ptr_reg))),
        Assign(r(sum_reg), BinOp("add", r(sum_reg), r(val_reg))),
        Assign(r(ptr_reg), BinOp("add", r(ptr_reg), Const(4))),
        Compare(r(ptr_reg), r(bound_reg)),
        CondBranch("lt", label),
    ]
    exit_.insts = [Assign(RV, r(sum_reg)), Return()]
    return func


class TestRemapping:
    def test_figure5_register_renaming_detected_as_identical(self):
        # Figure 5(b) and 5(c): same code modulo register numbers and
        # label names must produce identical fingerprints.
        a = figure5_function(10, 12, 12, 1, 9, 8, "L3")
        b = figure5_function(11, 10, 10, 1, 9, 8, "L5")
        assert fingerprint_function(a).key == fingerprint_function(b).key

    def test_different_code_not_identical(self):
        a = figure5_function(10, 12, 12, 1, 9, 8, "L3")
        b = figure5_function(10, 12, 12, 1, 9, 8, "L3")
        b.blocks[1].insts[2] = Assign(
            Reg(1, pseudo=False), BinOp("add", Reg(1, pseudo=False), Const(8))
        )
        assert fingerprint_function(a).key != fingerprint_function(b).key

    def test_instruction_order_matters(self):
        a = figure5_function(10, 12, 12, 1, 9, 8, "L3")
        b = figure5_function(10, 12, 12, 1, 9, 8, "L3")
        b.blocks[0].insts[0], b.blocks[0].insts[1] = (
            b.blocks[0].insts[1],
            b.blocks[0].insts[0],
        )
        assert fingerprint_function(a).crc != fingerprint_function(b).crc

    def test_remap_numbers_registers_in_encounter_order(self):
        func = Function("f")
        block = func.add_block("L9")
        block.insts = [
            Assign(Reg(7, pseudo=False), Reg(3, pseudo=False)),
            Return(),
        ]
        text = remap_function_text(func)
        assert "r[1]=r[2];" in text
        assert text.startswith("L01:")

    def test_pseudo_and_hardware_registers_distinct(self):
        func_hw = Function("f")
        func_hw.add_block("L0").insts = [
            Assign(Reg(1, pseudo=False), Reg(1, pseudo=False)),
            Return(),
        ]
        func_mixed = Function("f")
        func_mixed.add_block("L0").insts = [
            Assign(Reg(1, pseudo=False), Reg(1, pseudo=True)),
            Return(),
        ]
        # hw/hw self-move remaps to r[1]=r[1]; hw/pseudo must differ.
        assert (
            fingerprint_function(func_hw).key
            != fingerprint_function(func_mixed).key
        )


class TestControlFlowFingerprint:
    def test_same_structure_different_computation(self):
        a = figure5_function(10, 12, 12, 1, 9, 8, "L3")
        b = figure5_function(10, 12, 12, 1, 9, 8, "L3")
        b.blocks[1].insts[2] = Assign(
            Reg(1, pseudo=False), BinOp("add", Reg(1, pseudo=False), Const(8))
        )
        assert fingerprint_function(a).cf_crc == fingerprint_function(b).cf_crc

    def test_different_structure_detected(self):
        a = figure5_function(10, 12, 12, 1, 9, 8, "L3")
        b = figure5_function(10, 12, 12, 1, 9, 8, "L3")
        b.blocks[1].insts[-1] = CondBranch("le", "L3")
        assert fingerprint_function(a).cf_crc != fingerprint_function(b).cf_crc


class TestFingerprintFields:
    def test_text_retained_only_on_request(self):
        func = figure5_function(10, 12, 12, 1, 9, 8, "L3")
        assert fingerprint_function(func).text is None
        kept = fingerprint_function(func, keep_text=True)
        assert kept.text == remap_function_text(func)

    def test_instruction_count(self):
        func = figure5_function(10, 12, 12, 1, 9, 8, "L3")
        assert fingerprint_function(func).num_insts == func.num_instructions()
