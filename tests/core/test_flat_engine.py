"""The flat engine's contract: bit-identical DAGs, object-engine parity.

The flat expansion engine (``repro.opt.flat`` kernels over the packed
``repro.ir.flat`` representation) exists purely for speed — it must
never change *what* is enumerated.  These tests enumerate whole spaces
under both engines and require the full serialized DAGs to match, along
with every result statistic an engine could plausibly skew.  The
companion round-trip tests live in ``tests/ir/test_flat.py``.
"""

import hashlib
import json

import pytest

from repro.core import checkpoint as ckpt
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.memo import TransitionMemo
from repro.opt import implicit_cleanup, phase_by_id
from repro.programs import compile_benchmark
from repro.search.harness import SEED_FUNCTIONS

from tests.conftest import GCD_SRC, MAXI_SRC, SUM_ARRAY_SRC, compile_fn


def dag_digest(dag) -> str:
    """Content digest of the fully serialized DAG (nodes, edges,
    phase outcomes — everything a checkpoint would persist)."""
    return hashlib.sha256(
        json.dumps(ckpt.dag_to_dict(dag), sort_keys=True).encode("utf-8")
    ).hexdigest()


def both_engines(func, **overrides):
    results = {}
    for engine in ("object", "flat"):
        results[engine] = enumerate_space(
            func.clone(), EnumerationConfig(engine=engine, **overrides)
        )
    return results["object"], results["flat"]


def assert_results_identical(obj, flat):
    assert dag_digest(obj.dag) == dag_digest(flat.dag)
    assert obj.attempted_phases == flat.attempted_phases
    assert obj.phases_applied == flat.phases_applied
    assert obj.completed == flat.completed
    assert obj.abort_reason == flat.abort_reason


class TestEngineParity:
    @pytest.mark.parametrize(
        "seed", SEED_FUNCTIONS, ids=[s.label for s in SEED_FUNCTIONS]
    )
    def test_seed_spaces_are_bit_identical(self, seed):
        func = compile_benchmark(seed.benchmark).functions[seed.function]
        implicit_cleanup(func)
        assert_results_identical(*both_engines(func))

    def test_small_function_spaces_are_bit_identical(self):
        assert_results_identical(*both_engines(compile_fn(MAXI_SRC, "maxi")))
        # gcd and sum_array have spaces in the thousands; a budget keeps
        # the test fast while still walking hundreds of shared nodes
        for source, name in ((GCD_SRC, "gcd"), (SUM_ARRAY_SRC, "sum_array")):
            obj, flat = both_engines(
                compile_fn(source, name), max_nodes=400
            )
            assert obj.abort_reason == "max_nodes"
            assert_results_identical(obj, flat)

    def test_bounded_enumeration_aborts_identically(self):
        # budget cutoffs must land on the same node under both engines
        func = compile_fn(SUM_ARRAY_SRC, "sum_array")
        obj, flat = both_engines(func, max_nodes=40)
        assert obj.abort_reason == "max_nodes"
        assert_results_identical(obj, flat)

    def test_memo_interop(self):
        # a memo filled by one engine serves the other bit-identically
        func = compile_fn(MAXI_SRC, "maxi")
        reference = enumerate_space(func.clone(), EnumerationConfig())
        memo = TransitionMemo()
        enumerate_space(
            func.clone(), EnumerationConfig(engine="object", memo=memo)
        )
        warm = enumerate_space(
            func.clone(), EnumerationConfig(engine="flat", memo=memo)
        )
        assert dag_digest(warm.dag) == dag_digest(reference.dag)


class TestEngineGate:
    def test_custom_phase_objects_force_the_object_path(self):
        # kernels dispatch on phase.id, so an instrumented wrapper with
        # a stock id must silently fall back to the object engine —
        # and still produce the same space
        calls = []
        stock = phase_by_id("s")

        class Instrumented:
            def __getattr__(self, attr):
                return getattr(stock, attr)

            def run(self, func, target=None):
                calls.append(func.name)
                return stock.run(func, target)

        func = compile_fn(MAXI_SRC, "maxi")
        phases = tuple(
            Instrumented() if phase.id == "s" else phase
            for phase in EnumerationConfig().phases
        )
        result = enumerate_space(
            func.clone(), EnumerationConfig(engine="flat", phases=phases)
        )
        assert calls, "the wrapped phase never executed"
        reference = enumerate_space(func.clone(), EnumerationConfig())
        assert dag_digest(result.dag) == dag_digest(reference.dag)
