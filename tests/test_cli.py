"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "clamp.c"
    path.write_text(
        "int clamp(int x) { if (x < 0) return 0; "
        "if (x > 255) return 255; return x; }"
    )
    return str(path)


class TestCompile:
    def test_prints_rtl(self, source_file, capsys):
        assert main(["compile", source_file]) == 0
        out = capsys.readouterr().out
        assert "=== clamp" in out
        assert "RET;" in out

    def test_sequence_applied(self, source_file, capsys):
        assert main(["compile", source_file, "--sequence", "sriu"]) == 0
        out = capsys.readouterr().out
        assert "active:" in out

    def test_batch(self, source_file, capsys):
        assert main(["compile", source_file, "--batch"]) == 0
        assert "active:" in capsys.readouterr().out

    def test_unknown_phase_rejected(self, source_file):
        with pytest.raises(SystemExit, match="unknown phase"):
            main(["compile", source_file, "--sequence", "zz"])

    def test_benchmark_address(self, capsys):
        assert main(["compile", "bench:sha", "--function", "rol"]) == 0
        assert "rol" in capsys.readouterr().out

    def test_missing_file(self):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["compile", "/does/not/exist.c"])

    def test_compile_error_reported(self, tmp_path):
        bad = tmp_path / "bad.c"
        bad.write_text("int f(void) { return undeclared_thing; }")
        with pytest.raises(SystemExit, match="undeclared"):
            main(["compile", str(bad)])


class TestRun:
    def test_runs_function(self, source_file, capsys):
        assert main(["run", source_file, "--entry", "clamp", "--args", "300"]) == 0
        out = capsys.readouterr().out
        assert "value: 255" in out
        assert "dynamic instructions:" in out

    def test_benchmark_default_entry(self, capsys):
        assert main(["run", "bench:jpeg"]) == 0
        assert "value: 5104" in capsys.readouterr().out

    def test_batch_flag_preserves_value(self, capsys):
        assert main(["run", "bench:jpeg", "--batch"]) == 0
        assert "value: 5104" in capsys.readouterr().out

    def test_entry_required_for_files(self, source_file):
        with pytest.raises(SystemExit, match="--entry required"):
            main(["run", source_file])


class TestEnumerate:
    def test_prints_table_row(self, source_file, capsys):
        assert main(["enumerate", source_file, "--function", "clamp"]) == 0
        out = capsys.readouterr().out
        assert "FnInst" in out
        assert "clamp" in out

    def test_dot_output(self, source_file, tmp_path, capsys):
        dot = tmp_path / "space.dot"
        assert (
            main(
                [
                    "enumerate",
                    source_file,
                    "--function",
                    "clamp",
                    "--dot",
                    str(dot),
                ]
            )
            == 0
        )
        text = dot.read_text()
        assert text.startswith("digraph space {")
        assert "->" in text

    def test_unknown_function(self, source_file):
        with pytest.raises(SystemExit, match="no function"):
            main(["enumerate", source_file, "--function", "nope"])


class TestEnumerateRobustness:
    def test_validate_flag(self, source_file, capsys):
        assert (
            main(
                ["enumerate", source_file, "--function", "clamp", "--validate"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "quarantine: no phase applications rejected" in out

    def test_difftest_flag(self, source_file, capsys):
        assert (
            main(
                ["enumerate", source_file, "--function", "clamp", "--difftest"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "quarantine: no phase applications rejected" in out

    def test_fault_injection_reports_quarantine(self, source_file, capsys):
        assert (
            main(
                [
                    "enumerate",
                    source_file,
                    "--function",
                    "clamp",
                    "--validate",
                    "--inject-faults",
                    "0.2",
                    "--fault-seed",
                    "7",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fault injection:" in out
        assert "quarantine:" in out

    def test_checkpoint_and_resume(self, source_file, tmp_path, capsys):
        path = tmp_path / "ckpt.json"
        assert (
            main(
                [
                    "enumerate",
                    source_file,
                    "--function",
                    "clamp",
                    "--max-nodes",
                    "5",
                    "--checkpoint",
                    str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "aborted: max_nodes" in out
        assert "state saved" in out
        assert path.exists()
        assert (
            main(
                [
                    "enumerate",
                    source_file,
                    "--function",
                    "clamp",
                    "--checkpoint",
                    str(path),
                    "--resume",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"resumed from {path}" in out
        assert "aborted" not in out
        assert not path.exists()  # removed once the space completes

    def test_resume_requires_checkpoint(self, source_file):
        with pytest.raises(SystemExit, match="--resume requires"):
            main(["enumerate", source_file, "--function", "clamp", "--resume"])


class TestSearchAndMisc:
    def test_search(self, source_file, capsys):
        assert (
            main(
                [
                    "search",
                    source_file,
                    "--function",
                    "clamp",
                    "--generations",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "best sequence" in out
        assert "code size" in out

    def test_search_alternate_strategy(self, source_file, capsys):
        assert (
            main(
                [
                    "search",
                    source_file,
                    "--function",
                    "clamp",
                    "--strategy",
                    "random",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert ": random" in out
        assert "phases attempted" in out

    def test_search_policy_strategy(self, source_file, capsys):
        assert (
            main(
                [
                    "search",
                    source_file,
                    "--function",
                    "clamp",
                    "--strategy",
                    "policy",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert ": policy" in out

    def test_search_rejects_unknown_strategy(self, source_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "search",
                    source_file,
                    "--function",
                    "clamp",
                    "--strategy",
                    "alchemy",
                ]
            )

    def test_search_bench_quick_subset(self, tmp_path, capsys):
        out_path = tmp_path / "search.json"
        assert (
            main(
                [
                    "search-bench",
                    "--functions",
                    "jpeg.descale",
                    "--strategies",
                    "random",
                    "--trials",
                    "1",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "jpeg.descale" in out
        assert "random" in out
        import json

        leaderboard = json.loads(out_path.read_text())
        assert leaderboard["functions"]["jpeg.descale"]["strategies"]["random"][
            "beats_oracle"
        ] is False

    def test_search_bench_rejects_bad_function(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "search-bench",
                    "--functions",
                    "jpeg.not_a_function",
                    "--strategies",
                    "random",
                    "--trials",
                    "1",
                    "--out",
                    str(tmp_path / "x.json"),
                ]
            )

    def test_list_benchmarks(self, capsys):
        assert main(["list-benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("bitcount", "dijkstra", "fft", "jpeg", "sha", "stringsearch"):
            assert name in out

    def test_interactions(self, source_file, capsys):
        assert (
            main(
                [
                    "interactions",
                    source_file,
                    "--max-nodes",
                    "500",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Enabling" in out
        assert "Independence" in out

    def test_unknown_benchmark(self):
        with pytest.raises(SystemExit, match="unknown benchmark"):
            main(["run", "bench:nope"])


class TestParallelFlags:
    def test_jobs_output_matches_serial(self, capsys):
        assert main(["enumerate", "bench:jpeg", "--function", "descale"]) == 0
        serial_out = capsys.readouterr().out
        assert (
            main(["enumerate", "bench:jpeg", "--function", "descale", "--jobs", "2"])
            == 0
        )
        assert capsys.readouterr().out == serial_out

    def test_store_caches_between_runs(self, tmp_path, capsys):
        store = str(tmp_path / "spaces")
        argv = [
            "enumerate", "bench:jpeg", "--function", "descale",
            "--jobs", "2", "--store", store,
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "1 miss(es)" in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "1 hit(s)" in second.err
        assert "(resumed from store:" in second.out
        # the table itself is identical either way
        assert first.out.splitlines()[:2] == second.out.splitlines()[:2]

    def test_difftest_with_jobs(self, capsys):
        assert (
            main([
                "enumerate", "bench:jpeg", "--function", "descale",
                "--jobs", "2", "--difftest",
            ])
            == 0
        )
        out = capsys.readouterr().out
        assert "no phase applications" in out  # empty quarantine report

    def test_run_dir_resume_after_abort(self, tmp_path, capsys):
        run_dir = str(tmp_path / "run")
        base = ["enumerate", "bench:sha", "--function", "rol", "--jobs", "2",
                "--run-dir", run_dir]
        assert main(base + ["--max-nodes", "20"]) == 0
        out = capsys.readouterr().out
        assert "(aborted: max_nodes)" in out
        assert "--resume to continue" in out
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "(resumed from" in out
        assert "aborted" not in out

    def test_checkpoint_conflicts_with_jobs(self, tmp_path):
        with pytest.raises(SystemExit, match="run-dir"):
            main([
                "enumerate", "bench:sha", "--function", "rol",
                "--jobs", "2", "--checkpoint", str(tmp_path / "c.json"),
            ])

    def test_interactions_with_jobs_and_store(self, tmp_path, capsys):
        store = str(tmp_path / "spaces")
        argv = [
            "interactions", "bench:jpeg", "--functions", "descale,rgb_to_y",
            "--jobs", "2", "--store", store,
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "Enabling" in first.out
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "cached" in second.err
        assert second.out == first.out


class TestSanitizeAndLint:
    def test_sanitize_prints_summary_and_preserves_row(self, capsys):
        assert main(["enumerate", "bench:jpeg", "--function", "descale"]) == 0
        plain = capsys.readouterr().out
        assert (
            main([
                "enumerate", "bench:jpeg", "--function", "descale",
                "--sanitize",
            ])
            == 0
        )
        sanitized = capsys.readouterr().out
        assert "sanitizer (full):" in sanitized
        assert "0 findings, 0 contract violations" in sanitized
        assert "0 unverified, 0 refuted" in sanitized
        # the Table-3 row itself is untouched by sanitizing
        assert sanitized.splitlines()[:2] == plain.splitlines()[:2]

    def test_sanitize_parallel_matches_serial(self, capsys):
        base = ["enumerate", "bench:jpeg", "--function", "descale",
                "--sanitize=fast"]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_lint_benchmark_clean(self, capsys):
        assert main(["lint", "bench:sha"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_lint_ir_dump_infers_metadata(self, tmp_path, capsys):
        from repro.core.batch import BatchCompiler
        from repro.ir.printer import format_function
        from repro.programs import compile_benchmark
        from repro.opt import implicit_cleanup

        program = compile_benchmark("jpeg")
        func = program.functions["descale"]
        implicit_cleanup(func)
        BatchCompiler().compile(func)
        path = tmp_path / "descale.ir"
        path.write_text(format_function(func))
        # a clean dump lints clean: pseudo/frame/arity metadata is
        # inferred from the code, not taken from the zero defaults
        assert main(["lint", str(path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out
        # a corrupted dump is caught with the right code
        bad = tmp_path / "bad.ir"
        bad.write_text(path.read_text().replace("r[4]", "r[99]", 1))
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "MACH003" in out

    def test_lint_run_dir(self, tmp_path, capsys):
        run_dir = str(tmp_path / "run")
        assert (
            main([
                "enumerate", "bench:jpeg", "--function", "descale",
                "--run-dir", run_dir, "--max-nodes", "10",
            ])
            == 0
        )
        capsys.readouterr()
        assert main(["lint", run_dir]) == 0
        assert "0 finding(s)" in capsys.readouterr().out
