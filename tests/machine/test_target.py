"""Unit tests for the target machine legality model."""

from repro.ir.instructions import Assign, Call, Compare, CondBranch, Jump, Return
from repro.ir.operands import BinOp, Const, Mem, Reg, Sym, UnOp
from repro.machine.target import FP, Target

T = Target()
R1 = Reg(1, pseudo=False)
R2 = Reg(2, pseudo=False)


class TestAluLegality:
    def test_reg_reg_ops(self):
        assert T.is_legal(Assign(R1, BinOp("add", R2, R1)))
        assert T.is_legal(Assign(R1, BinOp("mul", R2, R1)))

    def test_small_immediates_legal(self):
        assert T.is_legal(Assign(R1, BinOp("add", R2, Const(4096))))
        assert T.is_legal(Assign(R1, Const(65536)))

    def test_large_immediates_illegal(self):
        assert not T.is_legal(Assign(R1, Const(1 << 20)))
        assert not T.is_legal(Assign(R1, BinOp("add", R2, Const(1 << 20))))

    def test_immediate_on_left_illegal(self):
        assert not T.is_legal(Assign(R1, BinOp("add", Const(1), R2)))

    def test_barrel_shifter_operand(self):
        shifted = BinOp("lsl", R2, Const(2))
        assert T.is_legal(Assign(R1, BinOp("add", R1, shifted)))
        # The shifter feeds the ALU, not multiplies or other shifts.
        assert not T.is_legal(Assign(R1, BinOp("mul", R1, shifted)))
        assert not T.is_legal(Assign(R1, BinOp("lsl", R1, shifted)))

    def test_unary_ops(self):
        assert T.is_legal(Assign(R1, UnOp("neg", R2)))
        assert not T.is_legal(Assign(R1, UnOp("neg", Const(1))))


class TestMemoryLegality:
    def test_addressing_modes(self):
        assert T.is_legal(Assign(R1, Mem(R2)))
        assert T.is_legal(Assign(R1, Mem(BinOp("add", FP, Const(8)))))
        assert T.is_legal(Assign(R1, Mem(BinOp("add", R2, R1))))

    def test_offset_limit(self):
        assert not T.is_legal(Assign(R1, Mem(BinOp("add", FP, Const(5000)))))

    def test_store_value_must_be_register(self):
        assert T.is_legal(Assign(Mem(R2), R1))
        assert not T.is_legal(Assign(Mem(R2), Const(1)))
        assert not T.is_legal(Assign(Mem(R2), BinOp("add", R1, R1)))

    def test_no_memory_in_alu_operands(self):
        assert not T.is_legal(Assign(R1, BinOp("add", R2, Mem(R1))))

    def test_shifted_index_addressing_illegal(self):
        # ARM would allow this, but keeping it illegal preserves more
        # combine opportunities for the study; loads stay base+reg.
        addr = BinOp("add", R2, BinOp("lsl", R1, Const(2)))
        assert not T.is_legal(Assign(R1, Mem(addr)))


class TestSymbolLegality:
    def test_hi_lo_pair(self):
        assert T.is_legal(Assign(R1, Sym("g", "hi")))
        assert T.is_legal(Assign(R1, BinOp("add", R1, Sym("g", "lo"))))

    def test_bare_lo_and_combined_illegal(self):
        assert not T.is_legal(Assign(R1, Sym("g", "lo")))
        assert not T.is_legal(
            Assign(R1, BinOp("add", Sym("g", "hi"), Sym("g", "lo")))
        )


class TestCompareAndTransfers:
    def test_compare_forms(self):
        assert T.is_legal(Compare(R1, R2))
        assert T.is_legal(Compare(R1, Const(1000)))
        assert not T.is_legal(Compare(Const(1), R1))
        assert not T.is_legal(Compare(R1, Const(1 << 20)))
        assert not T.is_legal(Compare(Mem(R1), R2))

    def test_transfers_always_legal(self):
        assert T.is_legal(Jump("L1"))
        assert T.is_legal(CondBranch("lt", "L1"))
        assert T.is_legal(Call("f", 0))
        assert T.is_legal(Return())


class TestCosts:
    def test_relative_costs(self):
        alu = Assign(R1, BinOp("add", R2, Const(1)))
        mul = Assign(R1, BinOp("mul", R2, R1))
        div = Assign(R1, BinOp("div", R2, R1))
        load = Assign(R1, Mem(R2))
        assert T.cost(alu) < T.cost(load) < T.cost(mul) < T.cost(div)
