"""Property-based tests over randomly generated mini-C programs.

The central invariant of the whole system — the one the paper's search
relies on — is that *every* phase ordering preserves semantics.  These
tests generate random programs and random phase orderings and check
that invariant, plus structural invariants of fingerprinting and
enumeration.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.fingerprint import fingerprint_function, remap_function_text
from repro.frontend import compile_source
from repro.opt import PHASE_IDS, apply_phase, implicit_cleanup, phase_by_id
from repro.vm import Interpreter

# ----------------------------------------------------------------------
# Random mini-C program generation
# ----------------------------------------------------------------------

_VARS = ["a", "b", "c"]
_PARAMS = ["x", "y"]


@st.composite
def expressions(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(st.integers(-100, 100)))
        if choice == 1:
            return draw(st.sampled_from(_VARS))
        return draw(st.sampled_from(_PARAMS))
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    return f"({left} {op} {right})"


@st.composite
def conditions(draw):
    relop = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    left = draw(expressions(depth=1))
    right = draw(expressions(depth=1))
    return f"({left} {relop} {right})"


@st.composite
def statements(draw, depth=0):
    kind = draw(st.integers(0, 4 if depth < 2 else 1))
    if kind == 0:
        var = draw(st.sampled_from(_VARS))
        return f"{var} = {draw(expressions())};"
    if kind == 1:
        var = draw(st.sampled_from(_VARS))
        op = draw(st.sampled_from(["+=", "-=", "*="]))
        return f"{var} {op} {draw(expressions(depth=1))};"
    if kind == 2:
        cond = draw(conditions())
        then = draw(statements(depth=depth + 1))
        if draw(st.booleans()):
            other = draw(statements(depth=depth + 1))
            return f"if {cond} {{ {then} }} else {{ {other} }}"
        return f"if {cond} {{ {then} }}"
    if kind == 3:
        selector = draw(st.sampled_from(_VARS + _PARAMS))
        arms = []
        values = draw(
            st.lists(st.integers(-3, 3), min_size=1, max_size=3, unique=True)
        )
        for value in values:
            body = draw(statements(depth=depth + 1))
            terminator = "break;" if draw(st.booleans()) else ""
            arms.append(f"case {value}: {body} {terminator}")
        if draw(st.booleans()):
            arms.append(f"default: {draw(statements(depth=depth + 1))}")
        return f"switch ({selector} & 3) {{ {' '.join(arms)} }}"
    # bounded counting loop (always terminates); nested loops get their
    # own counter variable so nesting cannot reset an outer counter
    counter = f"i{depth}"
    bound = draw(st.integers(1, 8))
    body = draw(statements(depth=depth + 1))
    return f"for ({counter} = 0; {counter} < {bound}; {counter}++) {{ {body} }}"


@st.composite
def programs(draw):
    body = "\n    ".join(
        draw(st.lists(statements(), min_size=1, max_size=4))
    )
    return (
        "int f(int x, int y) {\n"
        "    int a = x;\n"
        "    int b = y;\n"
        "    int c = 1;\n"
        "    int i0;\n"
        "    int i1;\n"
        "    int i2;\n"
        f"    {body}\n"
        "    return a + b * 3 + c * 7;\n"
        "}\n"
    )


phase_sequences = st.lists(st.sampled_from(PHASE_IDS), min_size=1, max_size=12)


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs(), phase_sequences, st.integers(-50, 50), st.integers(-50, 50))
def test_any_phase_ordering_preserves_semantics(source, sequence, x, y):
    baseline = compile_source(source)
    expected = Interpreter(baseline).run("f", (x, y)).value

    optimized = compile_source(source)
    func = optimized.function("f")
    for phase_id in sequence:
        apply_phase(func, phase_by_id(phase_id))
    assert Interpreter(optimized).run("f", (x, y)).value == expected


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs(), phase_sequences)
def test_active_phases_are_never_consecutively_active(source, sequence):
    """No phase can be successfully applied twice in a row (section 4.1)."""
    program = compile_source(source)
    func = program.function("f")
    for phase_id in sequence:
        if apply_phase(func, phase_by_id(phase_id)):
            assert not apply_phase(func, phase_by_id(phase_id)), phase_id


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs(), phase_sequences)
def test_fingerprint_detects_identity_after_any_sequence(source, sequence):
    """Applying the same sequence twice gives identical fingerprints."""
    keys = []
    for _ in range(2):
        program = compile_source(source)
        func = program.function("f")
        implicit_cleanup(func)
        for phase_id in sequence:
            apply_phase(func, phase_by_id(phase_id))
        keys.append(fingerprint_function(func).key)
    assert keys[0] == keys[1]


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_fingerprint_invariant_under_register_renaming(source):
    """A consistent register renaming never changes the fingerprint
    (the Figure 5 property, for arbitrary renamings)."""
    from repro.analysis.defuse import rewrite_registers
    from repro.ir.operands import Reg
    from repro.opt.register_assignment import assign_registers
    from repro.machine.target import DEFAULT_TARGET

    program = compile_source(source)
    func = program.function("f")
    implicit_cleanup(func)
    assign_registers(func, DEFAULT_TARGET)

    used = sorted(
        {
            reg.index
            for inst in func.instructions()
            for reg in list(inst.defs()) + list(inst.uses())
            if reg.index < 13
        }
    )
    if not used:
        return
    # rotate the used registers (a bijection)
    rotated = used[1:] + used[:1]
    mapping = {
        Reg(old, pseudo=False): Reg(new, pseudo=False)
        for old, new in zip(used, rotated)
    }
    renamed = func.clone()
    for block in renamed.blocks:
        block.insts = [rewrite_registers(inst, mapping) for inst in block.insts]
    assert fingerprint_function(func).key == fingerprint_function(renamed).key


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_enumeration_invariants_on_random_programs(source):
    """Bounded enumeration keeps its structural invariants on any input."""
    program = compile_source(source)
    func = program.function("f")
    implicit_cleanup(func)
    result = enumerate_space(
        func, EnumerationConfig(max_nodes=200, max_levels=6, exact=True)
    )
    dag = result.dag
    for node in dag.nodes.values():
        if node.expanded:
            assert not (set(node.active) & node.dormant)
            assert set(node.active) | node.dormant == set(PHASE_IDS)
        for child_id in node.active.values():
            assert dag.nodes[child_id].level <= node.level + 1
    if result.completed:
        weights = dag.weights()
        assert weights[dag.root_id] >= 1
