"""Unit tests for RTL instructions."""

import pytest

from repro.ir.instructions import (
    Assign,
    Call,
    Compare,
    CondBranch,
    INVERTED_RELOP,
    Jump,
    RELOPS,
    Return,
)
from repro.ir.operands import BinOp, Const, Mem, Reg


class TestAssign:
    def test_register_assignment_defs_and_uses(self):
        inst = Assign(Reg(1), BinOp("add", Reg(2), Reg(3)))
        assert inst.defs() == frozenset({Reg(1)})
        assert inst.uses() == frozenset({Reg(2), Reg(3)})

    def test_store_defines_nothing(self):
        inst = Assign(Mem(Reg(4)), Reg(5))
        assert inst.defs() == frozenset()
        assert inst.uses() == frozenset({Reg(4), Reg(5)})
        assert inst.writes_memory()
        assert not inst.reads_memory()

    def test_load_reads_memory(self):
        inst = Assign(Reg(1), Mem(BinOp("add", Reg(13, pseudo=False), Const(8))))
        assert inst.reads_memory()
        assert not inst.writes_memory()

    def test_bad_destination_rejected(self):
        with pytest.raises(TypeError):
            Assign(Const(1), Reg(2))

    def test_equality_and_hash(self):
        a = Assign(Reg(1), Const(4))
        b = Assign(Reg(1), Const(4))
        assert a == b and hash(a) == hash(b)
        assert a != Assign(Reg(2), Const(4))


class TestCompareAndBranch:
    def test_compare_sets_cc(self):
        inst = Compare(Reg(1), Const(0))
        assert inst.sets_cc()
        assert not inst.uses_cc()
        assert inst.uses() == frozenset({Reg(1)})

    def test_branch_uses_cc_and_is_transfer(self):
        inst = CondBranch("lt", "L3")
        assert inst.uses_cc()
        assert inst.is_transfer

    def test_all_relops_invert_to_distinct_relops(self):
        assert set(INVERTED_RELOP) == set(RELOPS)
        for relop, inverted in INVERTED_RELOP.items():
            assert inverted in RELOPS
            assert INVERTED_RELOP[inverted] == relop

    def test_bad_relop_rejected(self):
        with pytest.raises(ValueError):
            CondBranch("spaceship", "L1")


class TestCall:
    def test_uses_argument_registers(self):
        inst = Call("f", 2)
        assert inst.uses() == frozenset({Reg(0, pseudo=False), Reg(1, pseudo=False)})

    def test_clobbers_caller_saved(self):
        inst = Call("f", 0)
        assert inst.defs() == frozenset(Reg(i, pseudo=False) for i in range(4))

    def test_touches_memory_both_ways(self):
        inst = Call("f", 1)
        assert inst.reads_memory() and inst.writes_memory()

    def test_too_many_args_rejected(self):
        with pytest.raises(ValueError):
            Call("f", 5)


class TestTransfers:
    def test_jump_and_return_are_transfers(self):
        assert Jump("L1").is_transfer
        assert Return().is_transfer
        assert not Assign(Reg(1), Const(0)).is_transfer

    def test_jump_equality(self):
        assert Jump("L1") == Jump("L1")
        assert Jump("L1") != Jump("L2")
