"""Unit tests for the VPO-style printer."""

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Assign,
    Call,
    Compare,
    CondBranch,
    Jump,
    Return,
)
from repro.ir.operands import BinOp, Const, Mem, Reg, Sym, UnOp
from repro.ir.printer import format_expr, format_function, format_instruction


class TestFormatExpr:
    def test_registers(self):
        assert format_expr(Reg(3)) == "t[3]"
        assert format_expr(Reg(3, pseudo=False)) == "r[3]"

    def test_memory_and_symbols(self):
        expr = Mem(BinOp("add", Reg(13, pseudo=False), Const(8)))
        assert format_expr(expr) == "M[r[13]+8]"
        assert format_expr(Sym("a", "hi")) == "HI[a]"

    def test_nested_binop_parenthesized(self):
        expr = BinOp("add", Reg(1), BinOp("lsl", Reg(2), Const(2)))
        assert format_expr(expr) == "t[1]+(t[2]<<2)"

    def test_unops(self):
        assert format_expr(UnOp("neg", Reg(1))) == "-t[1]"
        assert format_expr(UnOp("itof", Reg(1))) == "(f)t[1]"

    def test_custom_reg_namer(self):
        expr = BinOp("add", Reg(1), Reg(2))
        names = {Reg(1): "r[1]", Reg(2): "r[2]"}
        assert format_expr(expr, lambda r: names[r]) == "r[1]+r[2]"


class TestFormatInstruction:
    def test_vpo_shapes(self):
        assert (
            format_instruction(Assign(Reg(3), BinOp("add", Reg(4), Const(1))))
            == "t[3]=t[4]+1;"
        )
        assert format_instruction(Compare(Reg(1), Reg(9))) == "IC=t[1]?t[9];"
        assert format_instruction(CondBranch("lt", "L3")) == "PC=IC<0,L3;"
        assert format_instruction(Jump("L3")) == "PC=L3;"
        assert format_instruction(Call("f", 2)) == "CALL f,2;"
        assert format_instruction(Return()) == "RET;"

    def test_label_namer_applies_to_targets(self):
        out = format_instruction(Jump("L3"), label_namer=lambda s: "X" + s)
        assert out == "PC=XL3;"


class TestFormatFunction:
    def test_blocks_and_indentation(self):
        func = Function("f")
        func.blocks = [
            BasicBlock("L0", [Assign(Reg(1), Const(0)), Jump("L1")]),
            BasicBlock("L1", [Return()]),
        ]
        text = format_function(func)
        assert text.splitlines() == [
            "L0:",
            "    t[1]=0;",
            "    PC=L1;",
            "L1:",
            "    RET;",
        ]
