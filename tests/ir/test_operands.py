"""Unit tests for RTL operand expressions."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.operands import (
    BinOp,
    Const,
    Mem,
    Reg,
    Sym,
    UnOp,
    fold,
    fold_binop,
    fold_unop,
    substitute,
)


class TestRegisters:
    def test_equality_distinguishes_pseudo_from_hardware(self):
        assert Reg(3, pseudo=True) != Reg(3, pseudo=False)
        assert Reg(3, pseudo=True) == Reg(3, pseudo=True)

    def test_hashable_and_usable_in_sets(self):
        regs = {Reg(1), Reg(1), Reg(2)}
        assert len(regs) == 2

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Reg(1).index = 5

    def test_repr_shows_class(self):
        assert repr(Reg(4, pseudo=True)) == "t[4]"
        assert repr(Reg(4, pseudo=False)) == "r[4]"


class TestExpressionStructure:
    def test_walk_visits_all_nodes(self):
        expr = BinOp("add", Reg(1), Mem(BinOp("add", Reg(13, pseudo=False), Const(8))))
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds == ["BinOp", "Reg", "Mem", "BinOp", "Reg", "Const"]

    def test_registers_enumerates_registers(self):
        expr = BinOp("add", Reg(1), BinOp("mul", Reg(2), Const(4)))
        assert sorted(reg.index for reg in expr.registers()) == [1, 2]

    def test_reads_memory(self):
        assert Mem(Reg(1)).reads_memory()
        assert BinOp("add", Reg(1), Mem(Reg(2))).reads_memory()
        assert not BinOp("add", Reg(1), Const(1)).reads_memory()

    def test_structural_equality(self):
        a = BinOp("add", Reg(1), Const(4))
        b = BinOp("add", Reg(1), Const(4))
        assert a == b and hash(a) == hash(b)

    def test_const_type_sensitive_equality(self):
        assert Const(1) != Const(1.0)

    def test_sym_part_validation(self):
        with pytest.raises(ValueError):
            Sym("g", "mid")


class TestSubstitute:
    def test_replaces_registers(self):
        expr = BinOp("add", Reg(1), Reg(2))
        result = substitute(expr, {Reg(1): Const(5)})
        assert result == BinOp("add", Const(5), Reg(2))

    def test_no_change_returns_same_object(self):
        expr = BinOp("add", Reg(1), Reg(2))
        assert substitute(expr, {Reg(9): Const(1)}) is expr

    def test_substitutes_inside_memory_addresses(self):
        expr = Mem(BinOp("add", Reg(1), Const(4)))
        result = substitute(expr, {Reg(1): Reg(7)})
        assert result == Mem(BinOp("add", Reg(7), Const(4)))

    def test_topmost_match_wins(self):
        inner = BinOp("add", Reg(1), Const(0))
        result = substitute(inner, {inner: Reg(9), Reg(1): Reg(5)})
        assert result == Reg(9)


class TestFold:
    def test_folds_constant_binops(self):
        assert fold(BinOp("add", Const(2), Const(3))) == Const(5)
        assert fold(BinOp("mul", Const(6), Const(7))) == Const(42)

    def test_folds_nested(self):
        expr = BinOp("add", BinOp("mul", Const(2), Const(8)), Const(1))
        assert fold(expr) == Const(17)

    def test_identity_simplifications(self):
        assert fold(BinOp("add", Reg(1), Const(0))) == Reg(1)
        assert fold(BinOp("mul", Reg(1), Const(1))) == Reg(1)
        assert fold(BinOp("mul", Reg(1), Const(0))) == Const(0)
        assert fold(BinOp("add", Const(0), Reg(1))) == Reg(1)

    def test_division_by_zero_not_folded(self):
        expr = BinOp("div", Const(4), Const(0))
        assert fold(expr) == expr

    def test_truncating_division_matches_c(self):
        assert fold_binop("div", -7, 2) == -3
        assert fold_binop("rem", -7, 2) == -1
        assert fold_binop("div", 7, -2) == -3

    def test_wraps_to_32_bits(self):
        assert fold_binop("mul", 0x7FFFFFFF, 2) == -2
        assert fold_binop("add", 0x7FFFFFFF, 1) == -0x80000000

    def test_shift_out_of_range_not_folded(self):
        assert fold_binop("lsl", 1, 33) is None
        assert fold_binop("lsl", 1, -1) is None

    def test_unop_folds(self):
        assert fold_unop("neg", 5) == -5
        assert fold_unop("not", 0) == -1
        assert fold_unop("itof", 3) == 3.0
        assert fold_unop("ftoi", 3.7) == 3

    def test_fold_preserves_unfoldable(self):
        expr = BinOp("add", Reg(1), Reg(2))
        assert fold(expr) is expr


def _mask32(value):
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


@given(
    st.integers(-(2**31), 2**31 - 1),
    st.integers(-(2**31), 2**31 - 1),
    st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]),
)
def test_fold_binop_is_masked_32_bit(left, right, op):
    result = fold_binop(op, left, right)
    assert result == _mask32(result)
    assert -(2**31) <= result < 2**31


@given(st.integers(-(2**31), 2**31 - 1), st.integers(0, 31))
def test_fold_shifts_agree_with_python_semantics(value, amount):
    assert fold_binop("lsl", value, amount) == _mask32(value << amount)
    assert fold_binop("asr", value, amount) == _mask32(value >> amount)
    assert fold_binop("lsr", value, amount) == _mask32(
        (value & 0xFFFFFFFF) >> amount
    )
