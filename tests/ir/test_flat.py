"""The flat IR's losslessness contract: ``from_flat(to_flat(f)) == f``.

The flat engine's correctness story rests on two pillars — the
round-trip here (conversion loses nothing) and the engine-differential
test in ``tests/core/test_flat_engine.py`` (kernels change nothing the
object phases wouldn't).  This file pins the first pillar: for every
seed function and for sanitizer-clean randomly phase-mutated variants,
converting to the packed array-of-tables form and back reproduces the
original bit-for-bit — same printed RTL, same fingerprint, same scalar
metadata — and ``flat_fingerprint`` agrees with the object path.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.fingerprint import fingerprint_function
from repro.ir.flat import flat_fingerprint, from_flat, to_flat
from repro.ir.printer import format_function
from repro.opt import PHASE_IDS, apply_phase, implicit_cleanup, phase_by_id
from repro.programs import compile_benchmark
from repro.search.harness import SEED_FUNCTIONS
from repro.staticanalysis import sanitize_function

from tests.conftest import (
    GCD_SRC,
    MAXI_SRC,
    SQUARE_SRC,
    SUM_ARRAY_SRC,
    compile_fn,
)

#: the scalar surface to_flat/from_flat must carry over verbatim
_METADATA = (
    "name",
    "returns_value",
    "params",
    "frame",
    "frame_size",
    "next_pseudo",
    "next_label",
    "reg_assigned",
    "sel_applied",
    "alloc_applied",
    "unrolled",
)


def assert_roundtrip_identity(func):
    back = from_flat(to_flat(func))
    assert format_function(back) == format_function(func)
    assert fingerprint_function(back) == fingerprint_function(func)
    for field in _METADATA:
        assert getattr(back, field) == getattr(func, field), field


def seed_functions():
    for seed in SEED_FUNCTIONS:
        func = compile_benchmark(seed.benchmark).functions[seed.function]
        implicit_cleanup(func)
        yield seed.label, func


class TestRoundTrip:
    def test_seed_functions(self):
        for _label, func in seed_functions():
            assert_roundtrip_identity(func)

    def test_small_functions(self):
        for source, name in (
            (SQUARE_SRC, "square"),
            (MAXI_SRC, "maxi"),
            (GCD_SRC, "gcd"),
            (SUM_ARRAY_SRC, "sum_array"),
        ):
            assert_roundtrip_identity(compile_fn(source, name))

    def test_flat_fingerprint_matches_object_path(self):
        for _label, func in seed_functions():
            assert flat_fingerprint(to_flat(func)) == fingerprint_function(
                func
            )

    def test_roundtrip_is_a_fresh_function(self):
        # from_flat builds new block lists: mutating the round-tripped
        # copy must never leak back into the original
        func = compile_fn(GCD_SRC, "gcd")
        before = format_function(func)
        back = from_flat(to_flat(func))
        back.blocks[0].insts.pop()
        assert format_function(func) == before


@st.composite
def phase_sequences(draw):
    return "".join(
        draw(
            st.lists(
                st.sampled_from(PHASE_IDS), min_size=0, max_size=10
            )
        )
    )


class TestMutatedRoundTrip:
    """Round-trip identity across the whole reachable IR zoo.

    Random phase prefixes drive functions through every representation
    milestone — pre/post instruction selection, register assignment,
    spilled frames, unrolled loops — and each sanitizer-clean result
    must still round-trip bit-for-bit.
    """

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(sequence=phase_sequences(), pick=st.integers(0, 3))
    def test_phase_mutated_variants(self, sequence, pick):
        source, name = [
            (SQUARE_SRC, "square"),
            (MAXI_SRC, "maxi"),
            (GCD_SRC, "gcd"),
            (SUM_ARRAY_SRC, "sum_array"),
        ][pick]
        func = compile_fn(source, name)
        for phase_id in sequence:
            apply_phase(func, phase_by_id(phase_id))
        assert sanitize_function(func, mode="fast") == []
        assert_roundtrip_identity(func)

    @settings(max_examples=10, deadline=None)
    @given(sequence=phase_sequences())
    def test_mutated_seed_function(self, sequence):
        func = compile_benchmark("sha").functions["rol"]
        implicit_cleanup(func)
        for phase_id in sequence:
            apply_phase(func, phase_by_id(phase_id))
        assert sanitize_function(func, mode="fast") == []
        assert_roundtrip_identity(func)
