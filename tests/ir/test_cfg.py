"""Unit tests for CFG construction and validation."""

import pytest

from repro.ir.cfg import build_cfg, validate_function
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Assign, Compare, CondBranch, Jump, Return
from repro.ir.operands import Const, Reg


def diamond() -> Function:
    """entry -> (then | else) -> join -> exit"""
    func = Function("f")
    func.blocks = [
        BasicBlock("entry", [Compare(Reg(1), Const(0)), CondBranch("eq", "else_")]),
        BasicBlock("then", [Assign(Reg(2), Const(1)), Jump("join")]),
        BasicBlock("else_", [Assign(Reg(2), Const(2))]),
        BasicBlock("join", [Return()]),
    ]
    return func


class TestBuildCfg:
    def test_successors(self):
        cfg = build_cfg(diamond())
        assert cfg.succs["entry"] == ["else_", "then"]
        assert cfg.succs["then"] == ["join"]
        assert cfg.succs["else_"] == ["join"]
        assert cfg.succs["join"] == []

    def test_predecessors(self):
        cfg = build_cfg(diamond())
        assert sorted(cfg.preds["join"]) == ["else_", "then"]
        assert cfg.preds["entry"] == []

    def test_branch_to_fallthrough_yields_single_edge(self):
        func = Function("f")
        func.blocks = [
            BasicBlock("a", [Compare(Reg(1), Const(0)), CondBranch("eq", "b")]),
            BasicBlock("b", [Return()]),
        ]
        assert build_cfg(func).succs["a"] == ["b"]

    def test_reachable(self):
        func = diamond()
        func.blocks.append(BasicBlock("island", [Return()]))
        cfg = build_cfg(func)
        assert cfg.reachable("entry") == {"entry", "then", "else_", "join"}

    def test_reverse_postorder_starts_at_entry(self):
        cfg = build_cfg(diamond())
        rpo = cfg.reverse_postorder("entry")
        assert rpo[0] == "entry"
        assert set(rpo) == {"entry", "then", "else_", "join"}
        assert rpo.index("join") > rpo.index("then")
        assert rpo.index("join") > rpo.index("else_")


class TestValidation:
    def test_valid_function_passes(self):
        validate_function(diamond())

    def test_transfer_in_middle_rejected(self):
        func = diamond()
        func.blocks[1].insts.insert(0, Jump("join"))
        with pytest.raises(ValueError, match="transfer not at block end"):
            validate_function(func)

    def test_unknown_target_rejected(self):
        func = diamond()
        func.blocks[1].insts[-1] = Jump("nowhere")
        with pytest.raises(ValueError, match="unknown label"):
            validate_function(func)

    def test_falling_off_function_end_rejected(self):
        func = diamond()
        func.blocks[-1].insts = [Assign(Reg(1), Const(0))]
        with pytest.raises(ValueError, match="falls off"):
            validate_function(func)

    def test_duplicate_labels_rejected(self):
        func = diamond()
        func.blocks[1].label = "entry"
        with pytest.raises(ValueError, match="duplicate"):
            validate_function(func)

    def test_empty_function_rejected(self):
        with pytest.raises(ValueError):
            validate_function(Function("f"))
