"""Tests for the deep IR well-formedness validator."""

import pytest

from repro.core.batch import BatchCompiler
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.ir.function import LocalSlot
from repro.ir.instructions import Assign, Jump
from repro.ir.operands import Const, Reg
from repro.ir.validate import IRValidationError, check_ir, validate_ir
from repro.machine.target import DEFAULT_TARGET
from tests.conftest import GCD_SRC, MAXI_SRC, SQUARE_SRC, compile_fn


class TestCleanFunctions:
    def test_fresh_functions_validate(self):
        for src, name in [
            (SQUARE_SRC, "square"),
            (MAXI_SRC, "maxi"),
            (GCD_SRC, "gcd"),
        ]:
            func = compile_fn(src, name)
            assert check_ir(func, DEFAULT_TARGET) == []

    def test_batch_compiled_functions_validate(self):
        for src, name in [(MAXI_SRC, "maxi"), (GCD_SRC, "gcd")]:
            func = compile_fn(src, name)
            BatchCompiler().compile(func)
            assert check_ir(func, DEFAULT_TARGET) == []

    def test_every_enumerated_instance_validates(self):
        """No false positives across a whole enumerated space."""
        result = enumerate_space(
            compile_fn(MAXI_SRC, "maxi"), EnumerationConfig(keep_functions=True)
        )
        assert result.completed
        for node in result.dag.nodes.values():
            assert node.function is not None
            validate_ir(node.function, DEFAULT_TARGET)


class TestStructuralBreakage:
    def test_branch_to_unknown_label(self, maxi_func):
        last = maxi_func.blocks[-1]
        last.insts[-1] = Jump("__nowhere__")
        problems = check_ir(maxi_func, DEFAULT_TARGET)
        assert problems
        assert "__nowhere__" in problems[0]

    def test_structural_problems_short_circuit(self, maxi_func):
        # Structural breakage returns immediately with one problem even
        # if deeper checks would also fire.
        maxi_func.blocks[-1].insts[-1] = Jump("__nowhere__")
        maxi_func.frame["bad"] = LocalSlot("bad", 0, 4, "int", False, False)
        assert len(check_ir(maxi_func)) == 1


class TestRegisterDiscipline:
    def test_pseudo_after_register_assignment(self, maxi_func):
        BatchCompiler().compile(maxi_func)
        assert maxi_func.reg_assigned
        entry = maxi_func.blocks[0]
        entry.insts.insert(0, Assign(Reg(3, pseudo=True), Const(1)))
        problems = check_ir(maxi_func)
        assert any("after register assignment" in p for p in problems)

    def test_unallocated_pseudo(self, square_func):
        assert not square_func.reg_assigned
        bogus = square_func.next_pseudo + 5
        entry = square_func.blocks[0]
        entry.insts.insert(0, Assign(Reg(bogus, pseudo=True), Const(1)))
        problems = check_ir(square_func)
        assert any("never allocated" in p for p in problems)

    def test_hardware_register_out_of_file(self, square_func):
        entry = square_func.blocks[0]
        entry.insts.insert(0, Assign(Reg(20, pseudo=False), Const(1)))
        problems = check_ir(square_func)
        assert any("outside the register file" in p for p in problems)

    def test_dangling_register_use(self, square_func):
        # A use with no preceding definition is live into the entry
        # block, which the validator reports as dangling.
        used = square_func.next_pseudo - 1
        entry = square_func.blocks[0]
        entry.insts.insert(0, Assign(Reg(0, pseudo=False), Reg(used, pseudo=True)))
        problems = check_ir(square_func)
        assert any("dangling registers" in p for p in problems)


class TestFrameConsistency:
    def test_overlapping_slots(self, square_func):
        square_func.frame["x"] = LocalSlot("x", 0, 2, "int", False, False)
        square_func.frame["y"] = LocalSlot("y", 4, 1, "int", False, False)
        square_func.frame_size = 8
        problems = check_ir(square_func)
        assert any("overlap" in p for p in problems)

    def test_slot_outside_frame(self, square_func):
        square_func.frame["x"] = LocalSlot("x", 0, 2, "int", False, False)
        square_func.frame_size = 4
        problems = check_ir(square_func)
        assert any("outside the frame" in p for p in problems)


class TestValidateIr:
    def test_raises_with_context(self, maxi_func):
        maxi_func.blocks[-1].insts[-1] = Jump("__nowhere__")
        with pytest.raises(IRValidationError) as info:
            validate_ir(maxi_func, DEFAULT_TARGET)
        assert info.value.function_name == "maxi"
        assert info.value.problems
        assert "maxi" in str(info.value)

    def test_silent_on_valid_ir(self, maxi_func):
        validate_ir(maxi_func, DEFAULT_TARGET)

    def test_exported_from_package(self):
        import repro.ir as ir

        assert ir.check_ir is check_ir
        assert ir.validate_ir is validate_ir
        assert ir.IRValidationError is IRValidationError
