"""Unit and round-trip tests for the textual RTL parser."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ir.instructions import (
    Assign,
    Call,
    Compare,
    CondBranch,
    Jump,
    Return,
)
from repro.ir.operands import BinOp, Const, Mem, Reg, Sym, UnOp
from repro.ir.parser import RTLParseError, parse_function, parse_instruction
from repro.ir.printer import format_function, format_instruction


class TestParseInstruction:
    def test_transfers(self):
        assert parse_instruction("RET;") == Return()
        assert parse_instruction("PC=L3;") == Jump("L3")
        assert parse_instruction("PC=IC<0,L3;") == CondBranch("lt", "L3")
        assert parse_instruction("PC=IC>=0,Lexit;") == CondBranch("ge", "Lexit")
        assert parse_instruction("CALL f,2;") == Call("f", 2)

    def test_assignments(self):
        assert parse_instruction("t[1]=t[2]+4;") == Assign(
            Reg(1), BinOp("add", Reg(2), Const(4))
        )
        assert parse_instruction("r[0]=M[r[13]+8];") == Assign(
            Reg(0, pseudo=False),
            Mem(BinOp("add", Reg(13, pseudo=False), Const(8))),
        )
        assert parse_instruction("M[t[1]]=t[2];") == Assign(Mem(Reg(1)), Reg(2))
        assert parse_instruction("t[1]=HI[a];") == Assign(Reg(1), Sym("a", "hi"))
        assert parse_instruction("t[2]=t[1]+LO[a];") == Assign(
            Reg(2), BinOp("add", Reg(1), Sym("a", "lo"))
        )

    def test_compare(self):
        assert parse_instruction("IC=t[5]?1000;") == Compare(Reg(5), Const(1000))

    def test_shifted_operand(self):
        assert parse_instruction("r[1]=r[1]+(r[2]<<2);") == Assign(
            Reg(1, pseudo=False),
            BinOp(
                "add",
                Reg(1, pseudo=False),
                BinOp("lsl", Reg(2, pseudo=False), Const(2)),
            ),
        )

    def test_negative_literals(self):
        assert parse_instruction("t[1]=-3;") == Assign(Reg(1), Const(-3))
        assert parse_instruction("t[1]=t[2]--3;") == Assign(
            Reg(1), BinOp("sub", Reg(2), Const(-3))
        )

    def test_unary_operators(self):
        assert parse_instruction("t[1]=-t[2];") == Assign(Reg(1), UnOp("neg", Reg(2)))
        assert parse_instruction("t[1]=~t[2];") == Assign(Reg(1), UnOp("not", Reg(2)))
        assert parse_instruction("t[1]=(f)t[2];") == Assign(
            Reg(1), UnOp("itof", Reg(2))
        )

    def test_float_literals(self):
        assert parse_instruction("t[1]=2.5;") == Assign(Reg(1), Const(2.5))
        assert parse_instruction("t[1]=-1e-05;") == Assign(Reg(1), Const(-1e-05))

    def test_float_operators(self):
        assert parse_instruction("t[1]=t[2]*ft[3];") == Assign(
            Reg(1), BinOp("fmul", Reg(2), Reg(3))
        )
        assert parse_instruction("t[1]=t[2]>>lt[3];") == Assign(
            Reg(1), BinOp("lsr", Reg(2), Reg(3))
        )

    def test_errors(self):
        with pytest.raises(RTLParseError):
            parse_instruction("t[1]=;")
        with pytest.raises(RTLParseError):
            parse_instruction("t[1]=t[2]+t[3]")  # missing semicolon
        with pytest.raises(RTLParseError):
            parse_instruction("5=t[1];")
        with pytest.raises(RTLParseError):
            parse_instruction("t[1]=t[2] $ t[3];")


class TestParseFunction:
    def test_blocks(self):
        text = "L0:\n    t[1]=0;\n    PC=L1;\nL1:\n    RET;"
        func = parse_function(text)
        assert [block.label for block in func.blocks] == ["L0", "L1"]
        assert format_function(func) == text

    def test_instruction_before_label_rejected(self):
        with pytest.raises(RTLParseError):
            parse_function("t[1]=0;")

    def test_empty_rejected(self):
        with pytest.raises(RTLParseError):
            parse_function("   \n  ")


class TestRoundTrip:
    def test_compiled_functions_round_trip(self):
        from tests.conftest import GCD_SRC, SUM_ARRAY_SRC, compile_fn

        for source, name in [(GCD_SRC, "gcd"), (SUM_ARRAY_SRC, "sum_array")]:
            func = compile_fn(source, name)
            text = format_function(func)
            reparsed = parse_function(text, name)
            assert format_function(reparsed) == text
            for original, parsed in zip(func.blocks, reparsed.blocks):
                assert original.insts == parsed.insts

    def test_optimized_functions_round_trip(self):
        from tests.conftest import SUM_ARRAY_SRC, apply_sequence, compile_fn

        func = compile_fn(SUM_ARRAY_SRC, "sum_array")
        apply_sequence(func, "sriuchkslqhgbu")
        text = format_function(func)
        assert format_function(parse_function(text)) == text


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.sampled_from("bcdghijklnoqrsu"), min_size=0, max_size=10))
def test_round_trip_after_any_phase_sequence(sequence):
    from tests.conftest import GCD_SRC, compile_fn
    from repro.opt import apply_phase, phase_by_id

    func = compile_fn(GCD_SRC, "gcd")
    for phase_id in sequence:
        apply_phase(func, phase_by_id(phase_id))
    text = format_function(func)
    reparsed = parse_function(text, "gcd")
    assert format_function(reparsed) == text
