"""Unit tests for functions, blocks, and programs."""

import pytest

from repro.ir.function import BasicBlock, Function, GlobalVar, Program
from repro.ir.instructions import Assign, Jump, Return
from repro.ir.operands import Const, Reg


def make_simple_function() -> Function:
    func = Function("f", returns_value=True)
    entry = func.add_block()
    entry.insts.append(Assign(Reg(0, pseudo=False), Const(1)))
    entry.insts.append(Return())
    return func


class TestBasicBlock:
    def test_terminator_detection(self):
        block = BasicBlock("L0", [Assign(Reg(1), Const(0)), Jump("L1")])
        assert block.terminator() == Jump("L1")
        assert block.body() == [Assign(Reg(1), Const(0))]

    def test_fallthrough_block_has_no_terminator(self):
        block = BasicBlock("L0", [Assign(Reg(1), Const(0))])
        assert block.terminator() is None
        assert block.body() == block.insts


class TestFunction:
    def test_new_reg_allocates_distinct_pseudos(self):
        func = Function("f")
        assert func.new_reg() != func.new_reg()

    def test_new_reg_forbidden_after_assignment(self):
        func = Function("f")
        func.reg_assigned = True
        with pytest.raises(RuntimeError):
            func.new_reg()

    def test_frame_layout_offsets(self):
        func = Function("f")
        a = func.add_local("a", 1, "int", False)
        b = func.add_local("b", 10, "int", True)
        c = func.add_local("c", 1, "int", False)
        assert (a.offset, b.offset, c.offset) == (0, 4, 44)
        assert func.frame_size == 48
        assert [slot.name for slot in func.scalar_slots()] == ["a", "c"]

    def test_duplicate_local_rejected(self):
        func = Function("f")
        func.add_local("x", 1, "int", False)
        with pytest.raises(ValueError):
            func.add_local("x", 1, "int", False)

    def test_clone_is_deep_for_blocks_shallow_for_insts(self):
        func = make_simple_function()
        other = func.clone()
        other.blocks[0].insts.append(Jump("L9"))
        assert len(func.blocks[0].insts) == 2
        assert other.blocks[0].insts[0] is func.blocks[0].insts[0]

    def test_clone_copies_flags_and_unrolled(self):
        func = make_simple_function()
        func.reg_assigned = True
        func.unrolled.add("L5")
        other = func.clone()
        assert other.reg_assigned
        assert other.unrolled == {"L5"}
        other.unrolled.add("L6")
        assert func.unrolled == {"L5"}

    def test_block_lookup(self):
        func = make_simple_function()
        label = func.blocks[0].label
        assert func.block(label) is func.blocks[0]
        assert func.block_index(label) == 0
        with pytest.raises(KeyError):
            func.block("nope")


class TestProgram:
    def test_globals_get_disjoint_addresses(self):
        program = Program()
        a = program.add_global(GlobalVar("a", 10, "int", is_array=True))
        b = program.add_global(GlobalVar("b", 1, "int"))
        assert b.address == a.address + 40

    def test_duplicate_global_rejected(self):
        program = Program()
        program.add_global(GlobalVar("a", 1, "int"))
        with pytest.raises(ValueError):
            program.add_global(GlobalVar("a", 1, "int"))

    def test_duplicate_function_rejected(self):
        program = Program()
        program.add_function(make_simple_function())
        with pytest.raises(ValueError):
            program.add_function(make_simple_function())
