"""End-to-end integration tests: the paper's core claims in miniature.

These tie the whole system together: frontend -> enumeration -> every
leaf instance of the space must be semantically identical, the DAG must
be consistent with phase replay, and the probabilistic compiler must be
trainable from enumerated data and then beat the batch compiler on
attempted phases at comparable code quality.
"""

import pytest

from repro.core.batch import BatchCompiler
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.interactions import analyze_interactions
from repro.core.probabilistic import ProbabilisticCompiler
from repro.frontend import compile_source
from repro.opt import apply_phase, implicit_cleanup, phase_by_id
from repro.vm import Interpreter

CHECK_SRC = """
int clamp(int x) {
    if (x < 0) return 0;
    if (x > 255) return 255;
    return x;
}
"""


def enumerate_with_functions(source, name):
    program = compile_source(source)
    func = program.function(name)
    implicit_cleanup(func)
    result = enumerate_space(
        func, EnumerationConfig(exact=True, keep_functions=True)
    )
    assert result.completed
    return program, func, result


class TestWholeSpaceSemantics:
    def test_every_instance_in_the_space_behaves_identically(self):
        program, func, result = enumerate_with_functions(CHECK_SRC, "clamp")
        inputs = [-5, 0, 100, 255, 999]
        expected = [
            Interpreter(program).run("clamp", (x,)).value for x in inputs
        ]
        assert expected == [0, 0, 100, 255, 255]
        for node in result.dag.nodes.values():
            assert node.function is not None
            trial = compile_source(CHECK_SRC)
            trial.functions["clamp"] = node.function
            got = [Interpreter(trial).run("clamp", (x,)).value for x in inputs]
            assert got == expected, f"node {node.node_id} diverges"

    def test_leaf_chosen_by_min_codesize_is_best_or_equal_to_batch(self):
        program, func, result = enumerate_with_functions(CHECK_SRC, "clamp")
        best = result.dag.min_codesize()
        batch_program = compile_source(CHECK_SRC)
        report = BatchCompiler().compile(batch_program.function("clamp"))
        # Exhaustive search finds the optimum; batch can only match it.
        assert best <= report.code_size

    def test_batch_result_is_an_instance_of_the_space(self):
        # The batch compiler only reorders the same phases, so its
        # output must be one of the enumerated instances — and a leaf
        # (batch runs to a fixpoint).
        program, func, result = enumerate_with_functions(CHECK_SRC, "clamp")
        batch_program = compile_source(CHECK_SRC)
        batch_func = batch_program.function("clamp")
        BatchCompiler().compile(batch_func)
        node = result.dag.find_instance(batch_func)
        assert node is not None
        assert node.is_leaf()

    def test_codesize_histogram_covers_all_leaves(self):
        program, func, result = enumerate_with_functions(CHECK_SRC, "clamp")
        histogram = result.dag.codesize_histogram()
        assert sum(histogram.values()) == len(result.dag.leaves())
        assert min(histogram) == result.dag.min_codesize()
        assert max(histogram) == result.dag.max_codesize()


class TestTrainedProbabilisticCompiler:
    def test_train_on_enumerations_then_compile(self, small_interactions):
        program = compile_source(CHECK_SRC)
        batch_report = BatchCompiler().compile(program.function("clamp"))

        program2 = compile_source(CHECK_SRC)
        prob_report = ProbabilisticCompiler(small_interactions).compile(
            program2.function("clamp")
        )
        assert prob_report.attempted < batch_report.attempted
        assert prob_report.code_size <= batch_report.code_size * 1.3
        for x in (-1, 7, 300):
            assert (
                Interpreter(program2).run("clamp", (x,)).value
                == Interpreter(program).run("clamp", (x,)).value
            )


class TestReplayConsistency:
    def test_random_dag_paths_replay_to_matching_fingerprints(self):
        from repro.core.fingerprint import fingerprint_function

        program, func, result = enumerate_with_functions(CHECK_SRC, "clamp")
        dag = result.dag
        # replay every edge out of the first two levels
        for node in list(dag.nodes.values()):
            if node.level > 1:
                continue
            for phase_id, child_id in node.active.items():
                replay = node.function.clone()
                assert apply_phase(replay, phase_by_id(phase_id))
                key = fingerprint_function(replay).key
                assert key == dag.nodes[child_id].key[0]
