"""Unit tests for the RTL interpreter."""

import pytest

from repro.frontend import compile_source
from repro.vm import Interpreter, VMError, VMFuelExhausted


def run(source, entry, args=(), **kwargs):
    program = compile_source(source)
    return Interpreter(program, **kwargs).run(entry, args)


class TestExecution:
    def test_return_value(self):
        assert run("int f(void) { return 42; }", "f").value == 42

    def test_arguments(self):
        assert run("int f(int a, int b) { return a * 10 + b; }", "f", (3, 4)).value == 34

    def test_void_function_returns_none(self):
        assert run("void f(void) { }", "f").value is None

    def test_thirty_two_bit_wraparound(self):
        src = "int f(int x) { return x + 1; }"
        assert run(src, "f", (0x7FFFFFFF,)).value == -0x80000000

    def test_globals_initialized(self):
        src = "int g = 7; int f(void) { return g; }"
        assert run(src, "f").value == 7

    def test_nested_calls_preserve_frames(self):
        src = """
        int add1(int x) { return x + 1; }
        int f(int x) {
            int local = x * 100;
            int y = add1(x);
            return local + y;   /* local must survive the call */
        }
        """
        assert run(src, "f", (5,)).value == 506

    def test_recursion_uses_separate_frames(self):
        src = """
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        """
        assert run(src, "fib", (12,)).value == 144

    def test_caller_saved_registers_clobbered_deterministically(self):
        # Two executions must behave identically.
        src = """
        int g(void) { return 9; }
        int f(void) { return g() + g(); }
        """
        assert run(src, "f").value == run(src, "f").value == 18


class TestCounting:
    def test_dynamic_counts_accumulate(self):
        src = """
        int f(int n) {
            int i;
            int s = 0;
            for (i = 0; i < n; i++) s += i;
            return s;
        }
        """
        small = run(src, "f", (5,))
        large = run(src, "f", (50,))
        assert large.total_insts > small.total_insts
        assert large.per_function["f"] == large.total_insts

    def test_per_function_attribution(self):
        src = """
        int helper(int x) { return x + 1; }
        int f(void) { return helper(1) + helper(2); }
        """
        result = run(src, "f")
        assert set(result.per_function) == {"f", "helper"}
        assert result.per_function["f"] + result.per_function["helper"] == (
            result.total_insts
        )

    def test_cycles_exceed_instruction_count(self):
        src = "int f(int a, int b) { return a * b; }"
        result = run(src, "f", (3, 4))
        assert result.cycles > 0


class TestErrors:
    def test_fuel_exhaustion(self):
        src = "int f(void) { while (1) ; return 0; }"
        with pytest.raises(VMFuelExhausted):
            run(src, "f", fuel=1000)

    def test_division_by_zero(self):
        src = "int f(int x) { return 10 / x; }"
        with pytest.raises(VMError, match="division by zero"):
            run(src, "f", (0,))

    def test_unknown_function(self):
        program = compile_source("int f(void) { return 0; }")
        with pytest.raises(VMError, match="unknown function"):
            Interpreter(program).run("missing")


class TestGlobalsAccess:
    def test_store_and_load_global_helpers(self):
        src = "int buf[4]; int f(int i) { return buf[i]; }"
        program = compile_source(src)
        vm = Interpreter(program)
        vm.store_global("buf", 99, 2)
        assert vm.run("f", (2,)).value == 99
        assert vm.load_global("buf", 2) == 99

    def test_global_address_hi_lo_roundtrip(self):
        src = "int g = 5; int f(void) { return g; }"
        program = compile_source(src)
        vm = Interpreter(program)
        address = vm.global_address("g")
        assert (address & ~0xFFFF) + (address & 0xFFFF) == address
