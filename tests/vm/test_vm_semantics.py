"""Focused semantic tests of the interpreter's operator suite."""

import pytest
from hypothesis import given, strategies as st

from repro.frontend import compile_source
from repro.vm import Interpreter


def run(source, entry, args=()):
    return Interpreter(compile_source(source)).run(entry, args).value


def _mask32(value):
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


class TestIntegerOperators:
    @given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1))
    def test_add_sub_mul_match_c_semantics(self, a, b):
        src = """
        int add(int a, int b) { return a + b; }
        int sub(int a, int b) { return a - b; }
        int mul(int a, int b) { return a * b; }
        """
        program = compile_source(src)
        assert Interpreter(program).run("add", (a, b)).value == _mask32(a + b)
        assert Interpreter(program).run("sub", (a, b)).value == _mask32(a - b)
        assert Interpreter(program).run("mul", (a, b)).value == _mask32(a * b)

    @given(st.integers(-(2**31), 2**31 - 1), st.integers(0, 31))
    def test_shifts(self, a, s):
        src = """
        int shl(int a, int s) { return a << s; }
        int sar(int a, int s) { return a >> s; }
        """
        program = compile_source(src)
        assert Interpreter(program).run("shl", (a, s)).value == _mask32(a << s)
        assert Interpreter(program).run("sar", (a, s)).value == _mask32(a >> s)

    @given(
        st.integers(-(2**31), 2**31 - 1),
        st.integers(-(2**31), 2**31 - 1).filter(lambda v: v != 0),
    )
    def test_division_truncates_toward_zero(self, a, b):
        src = """
        int div(int a, int b) { return a / b; }
        int rem(int a, int b) { return a % b; }
        """
        program = compile_source(src)
        quotient = _mask32(int(a / b))
        remainder = _mask32(a - int(a / b) * b)
        assert Interpreter(program).run("div", (a, b)).value == quotient
        assert Interpreter(program).run("rem", (a, b)).value == remainder

    def test_comparison_relops(self):
        src = """
        int lt(int a, int b) { return a < b; }
        int le(int a, int b) { return a <= b; }
        int eq(int a, int b) { return a == b; }
        int ne(int a, int b) { return a != b; }
        """
        program = compile_source(src)
        cases = [(-5, 3), (3, 3), (7, -2)]
        for a, b in cases:
            assert Interpreter(program).run("lt", (a, b)).value == int(a < b)
            assert Interpreter(program).run("le", (a, b)).value == int(a <= b)
            assert Interpreter(program).run("eq", (a, b)).value == int(a == b)
            assert Interpreter(program).run("ne", (a, b)).value == int(a != b)


class TestFloatOperators:
    def test_float_arithmetic(self):
        src = "float f(float a, float b) { return (a + b) * (a - b) / 2.0; }"
        got = run(src, "f", (3.5, 1.25))
        assert got == pytest.approx((3.5 + 1.25) * (3.5 - 1.25) / 2.0)

    def test_float_comparisons_drive_branches(self):
        src = "int f(float a, float b) { if (a < b) return 1; return 0; }"
        assert run(src, "f", (1.5, 2.5)) == 1
        assert run(src, "f", (2.5, 1.5)) == 0

    def test_conversions_round_trip(self):
        src = """
        float tofloat(int x) { return x; }
        int toint(float x) { return x; }
        """
        program = compile_source(src)
        assert Interpreter(program).run("tofloat", (7,)).value == 7.0
        assert Interpreter(program).run("toint", (7.9,)).value == 7

    def test_negative_float_truncation(self):
        src = "int f(float x) { return x; }"
        assert run(src, "f", (-7.9,)) == -7
