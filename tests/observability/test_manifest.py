"""RunManifest: digests, env toggles, atomic write/finalize cycle."""

from __future__ import annotations

import json

from repro.observability import (
    build_manifest,
    config_digest,
    finalize_manifest,
    load_manifest,
    write_manifest,
)
from repro.observability.events import SCHEMA_VERSION


def test_config_digest_is_stable_and_order_independent():
    assert config_digest(None) is None
    a = config_digest({"jobs": 2, "exact": True})
    b = config_digest({"exact": True, "jobs": 2})
    assert a == b
    assert len(a) == 16
    assert a != config_digest({"jobs": 4, "exact": True})


def test_env_toggles_capture_repro_vars_only(monkeypatch):
    monkeypatch.setenv("REPRO_NO_ANALYSIS_CACHE", "1")
    monkeypatch.setenv("UNRELATED", "x")
    manifest = build_manifest(tool="test")
    assert manifest["env"].get("REPRO_NO_ANALYSIS_CACHE") == "1"
    assert "UNRELATED" not in manifest["env"]


def test_build_write_load_finalize_roundtrip(tmp_path):
    run_dir = str(tmp_path / "run")
    manifest = build_manifest(
        tool="repro.test",
        config={"max_nodes": 100},
        seeds={"fault": 7},
        argv=["enumerate", "bench:sha"],
        extra={"jobs": 2},
    )
    assert manifest["schema_version"] == SCHEMA_VERSION
    assert manifest["config_digest"] == config_digest({"max_nodes": 100})
    assert manifest["seeds"] == {"fault": 7}
    assert manifest["jobs"] == 2
    path = write_manifest(run_dir, manifest)
    # the write is valid JSON on disk and loads back unchanged
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle) == load_manifest(run_dir)
    finalize_manifest(run_dir, wall=1.5, cpu=1.25, ok=False)
    final = load_manifest(run_dir)
    assert final["wall_s"] == 1.5
    assert final["cpu_s"] == 1.25
    assert final["ok"] is False
    assert final["ended_at"] > final["started_at"]


def test_load_manifest_absent_or_corrupt(tmp_path):
    assert load_manifest(str(tmp_path)) is None
    (tmp_path / "manifest.json").write_text("{not json")
    assert load_manifest(str(tmp_path)) is None
    assert finalize_manifest(str(tmp_path), 1.0, 1.0) is None
