"""``repro report`` end to end, and journal/result accounting closure.

These tests drive the real CLI: a serial ``--run-dir`` run and a
``--jobs 2`` run over the same function must both leave a
schema-valid journal + manifest behind, report identical phase-outcome
accounting, and replay through the live reporter without double
counting functions across cache_hit/function_done events.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.observability.events import validate_journal
from repro.observability.report import summarize_run
from repro.parallel.telemetry import replay_journal

ROL = ["enumerate", "bench:sha", "--function", "rol", "--max-nodes", "300"]


def _accounting(summary):
    row = summary["functions"]["rol"]
    return (
        row["instances"],
        row["levels"],
        row["attempted"],
        row["active"],
        row["dormant"],
        row["quarantined"],
        row["completed"],
    )


@pytest.fixture(scope="module")
def serial_run(tmp_path_factory):
    run_dir = str(tmp_path_factory.mktemp("obs") / "serial")
    assert main(ROL + ["--run-dir", run_dir]) == 0
    return run_dir


@pytest.fixture(scope="module")
def parallel_run(tmp_path_factory):
    run_dir = str(tmp_path_factory.mktemp("obs") / "jobs2")
    assert main(ROL + ["--jobs", "2", "--run-dir", run_dir]) == 0
    return run_dir


def test_serial_run_dir_artifacts(serial_run):
    assert os.path.exists(os.path.join(serial_run, "manifest.json"))
    records, errors = validate_journal(os.path.join(serial_run, "events.jsonl"))
    assert errors == []
    names = [record["event"] for record in records]
    assert names[0] == "run_start"
    assert names[-1] == "run_end"
    summary = summarize_run(serial_run)
    assert summary["manifest"]["tool"] == "repro.enumerate"
    assert summary["manifest"]["ok"] is True
    assert summary["totals"]["schema_errors"] == 0


def test_parallel_run_dir_artifacts(parallel_run):
    records, errors = validate_journal(os.path.join(parallel_run, "events.jsonl"))
    assert errors == []
    names = {record["event"] for record in records}
    assert {"run_start", "job_start", "shard_done", "phase_stats",
            "function_done", "run_end"} <= names
    summary = summarize_run(parallel_run)
    assert summary["manifest"]["ok"] is True


def test_serial_and_parallel_accounting_agree(serial_run, parallel_run):
    """The report's attempted/active/dormant partition is identical for
    --jobs 1 and --jobs 2 runs of the same space (replay semantics)."""
    serial = summarize_run(serial_run)
    parallel = summarize_run(parallel_run)
    assert _accounting(serial) == _accounting(parallel)
    row = serial["functions"]["rol"]
    assert row["attempted"] == row["active"] + row["dormant"]
    assert row["attempted"] > 0


def test_report_command_renders_both(serial_run, parallel_run, capsys):
    for run_dir in (serial_run, parallel_run):
        assert main(["report", run_dir]) == 0
        out = capsys.readouterr().out
        assert f"Run report — {run_dir}" in out
        assert "attempted" in out and "active" in out and "dormant" in out
        assert "analysis cache:" in out or run_dir.endswith("jobs2")
        assert "quarantine: 0" in out
        assert "complete" in out


def test_report_json_output(serial_run, capsys):
    assert main(["report", serial_run, "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["functions"]["rol"]["completed"] is True
    assert summary["totals"]["schema_errors"] == 0


def test_report_rejects_non_run_dir(tmp_path):
    with pytest.raises(SystemExit, match="not a run dir"):
        main(["report", str(tmp_path)])


def test_journal_replay_matches_merged_result(parallel_run):
    """Satellite: replaying the journal through the reporter yields
    gauges that match the merged result — one function, done exactly
    once (no double count across cache_hit/function_done/shard_done)."""
    reporter = replay_journal(os.path.join(parallel_run, "events.jsonl"))
    assert reporter.functions_total == 1
    assert reporter.functions_done == 1
    assert reporter.cached_done == 0
    assert reporter.total_done == 1
    summary = summarize_run(parallel_run)
    # shard_done attempts sum to the function's attempted count
    assert reporter.attempts == summary["functions"]["rol"]["attempted"]


def test_fault_injection_quarantines_reported(tmp_path, capsys):
    run_dir = str(tmp_path / "faulty")
    assert main(ROL + [
        "--run-dir", run_dir, "--validate",
        "--inject-faults", "0.2", "--fault-seed", "7",
    ]) == 0
    capsys.readouterr()
    summary = summarize_run(run_dir)
    assert summary["totals"]["faults_injected"] > 0
    assert summary["totals"]["quarantine_total"] > 0
    assert summary["manifest"]["seeds"] == {"fault": 7}
    row = summary["functions"]["rol"]
    assert row["quarantined"] == summary["totals"]["quarantine_total"]
    assert main(["report", run_dir]) == 0
    out = capsys.readouterr().out
    assert "faults injected:" in out


def test_warm_store_run_reports_cache_hit(tmp_path, capsys):
    store = str(tmp_path / "store")
    first = str(tmp_path / "first")
    second = str(tmp_path / "second")
    argv = ROL + ["--jobs", "2", "--store", store]
    assert main(argv + ["--run-dir", first]) == 0
    assert main(argv + ["--run-dir", second]) == 0
    capsys.readouterr()
    summary = summarize_run(second)
    assert summary["totals"]["store_cache_hits"] == 1
    row = summary["functions"]["rol"]
    assert row["cached"] is True
    assert row["completed"] is True
    # a cached function was never enumerated: no phase outcomes
    assert row["attempted"] == 0
    reporter = replay_journal(os.path.join(second, "events.jsonl"))
    assert reporter.cached_done == 1
    assert reporter.functions_done == 0


def test_search_bench_run_reports_search_section(tmp_path, capsys):
    run_dir = str(tmp_path / "bench")
    assert (
        main(
            [
                "search-bench",
                "--functions",
                "jpeg.descale",
                "--strategies",
                "random",
                "--trials",
                "1",
                "--out",
                str(tmp_path / "search.json"),
                "--run-dir",
                run_dir,
            ]
        )
        == 0
    )
    capsys.readouterr()
    records, errors = validate_journal(os.path.join(run_dir, "events.jsonl"))
    assert errors == []
    names = [record["event"] for record in records]
    for expected in (
        "search_start",
        "search_space",
        "search_strategy",
        "search_done",
    ):
        assert expected in names
    summary = summarize_run(run_dir)
    search = summary["search"]
    assert search is not None
    assert search["functions"] == 1
    assert [space["function"] for space in search["spaces"]] == ["jpeg.descale"]
    assert main(["report", run_dir]) == 0
    out = capsys.readouterr().out
    assert "search lab" in out
    assert "jpeg.descale" in out


def test_report_without_search_events_omits_section(serial_run, capsys):
    summary = summarize_run(serial_run)
    assert summary["search"] is None
    assert main(["report", serial_run]) == 0
    assert "search lab" not in capsys.readouterr().out


def test_unknown_event_kinds_warn_instead_of_erroring(tmp_path, capsys):
    """Forward compatibility: a journal written by a newer schema may
    contain event kinds this build does not know.  They must surface as
    a warning counter — never as schema errors, never silently dropped."""
    run_dir = tmp_path / "future"
    run_dir.mkdir()
    records = [
        {"t": 0.0, "event": "run_start", "tool": "repro.enumerate"},
        {"t": 0.1, "event": "hologram_stats", "function": "rol", "shards": 3},
        {"t": 0.2, "event": "hologram_stats", "function": "rol", "shards": 4},
        {"t": 0.3, "event": "quantum_leap"},
        {"t": 0.4, "event": "run_end", "wall": 0.4},
    ]
    with open(run_dir / "events.jsonl", "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    summary = summarize_run(str(run_dir))
    totals = summary["totals"]
    assert totals["schema_errors"] == 0
    assert totals["unknown_events"] == 3
    assert totals["unknown_event_names"] == ["hologram_stats", "quantum_leap"]
    assert totals["events"] == len(records)
    assert main(["report", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "warning: 3 event(s) of unknown kind(s)" in out
    assert "hologram_stats" in out
    # a KNOWN event with missing required fields is still a violation
    with open(run_dir / "events.jsonl", "a", encoding="utf-8") as handle:
        handle.write(json.dumps({"t": 0.5, "event": "enum_start"}) + "\n")
    summary = summarize_run(str(run_dir))
    assert summary["totals"]["schema_errors"] == 1
    assert summary["totals"]["unknown_events"] == 3


def test_collapse_stats_render_in_report(tmp_path, capsys):
    run_dir = str(tmp_path / "collapse")
    assert (
        main(
            ROL
            + ["--collapse", "semantic", "--run-dir", run_dir]
        )
        == 0
    )
    capsys.readouterr()
    records, errors = validate_journal(os.path.join(run_dir, "events.jsonl"))
    assert errors == []
    assert "collapse_stats" in [record["event"] for record in records]
    summary = summarize_run(run_dir)
    collapse = summary["collapse"]
    assert collapse is not None
    assert collapse["refuted"] == 0
    assert collapse["merged"] == (
        collapse["merged_proved"] + collapse["merged_tested"]
    )
    assert main(["report", run_dir]) == 0
    out = capsys.readouterr().out
    assert "collapse (semantic):" in out
    assert "0 refuted" in out
