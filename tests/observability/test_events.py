"""Event stream: closed vocabulary, validation, journal tolerance."""

from __future__ import annotations

import json

import pytest

from repro.observability import (
    EVENT_SCHEMA,
    EventSchemaError,
    EventStream,
    read_journal,
    validate_event,
    validate_journal,
    validate_record,
)


def test_unknown_event_rejected_at_producer(tmp_path):
    stream = EventStream(str(tmp_path / "events.jsonl"))
    with pytest.raises(EventSchemaError, match="unknown event"):
        stream.emit("not_a_thing", value=1)
    stream.close()


def test_missing_required_field_rejected():
    with pytest.raises(EventSchemaError, match="missing required"):
        validate_event("job_start", {"functions": 3})  # no "jobs"
    validate_event("job_start", {"functions": 3, "jobs": 2})
    # extra fields are always allowed
    validate_event("job_start", {"functions": 3, "jobs": 2, "note": "x"})


def test_emit_stamps_time_and_writes_sorted_json(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventStream(str(path)) as stream:
        record = stream.emit("run_start", tool="test")
    assert record["event"] == "run_start"
    assert record["t"] >= 0
    line = path.read_text(encoding="utf-8").strip()
    assert json.loads(line) == record
    assert line == json.dumps(record, sort_keys=True)


def test_null_stream_validates_but_writes_nothing():
    stream = EventStream(None)
    stream.emit("run_start", tool="test")
    with pytest.raises(EventSchemaError):
        stream.emit("nope")
    stream.close()


def test_read_journal_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventStream(str(path)) as stream:
        stream.emit("run_start", tool="test")
        stream.emit("run_end", wall=1.0)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"t": 2.0, "event": "fun')  # crash mid-write
    records, errors = read_journal(str(path))
    assert [r["event"] for r in records] == ["run_start", "run_end"]
    assert errors == ["line 3: malformed JSON"]


def test_validate_journal_flags_schema_violations(tmp_path):
    path = tmp_path / "events.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"t": 0.1, "event": "run_start", "tool": "x"}) + "\n")
        handle.write(json.dumps({"t": 0.2, "event": "job_start"}) + "\n")
        handle.write(json.dumps({"event": "run_end", "wall": 1.0}) + "\n")
    records, errors = validate_journal(str(path))
    assert len(records) == 3
    assert any("missing required" in error for error in errors)
    assert any("'t'" in error for error in errors)


def test_validate_record_shapes():
    assert validate_record({"t": 0.0, "event": "run_start", "tool": "x"}) == []
    assert validate_record([1, 2]) != []
    assert validate_record({"t": 0.0}) != []


def test_every_schema_entry_names_its_required_fields():
    for name, required in EVENT_SCHEMA.items():
        assert isinstance(name, str) and name
        assert all(isinstance(field, str) for field in required)
