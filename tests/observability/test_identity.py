"""Tracing is observational: traced and untraced runs are bit-identical.

The acceptance bar for the observability layer is that switching it on
changes *nothing* the paper measures — node keys, levels, edges,
dormant sets, attempted/applied counters — while its own accounting
(per-phase active/dormant partition) agrees with the enumeration's.
"""

from __future__ import annotations

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.observability import tracing
from repro.observability.events import validate_journal
from tests.parallel.conftest import bench_function, dag_snapshot


def test_traced_serial_run_is_bit_identical(tmp_path):
    baseline = enumerate_space(bench_function("sha", "rol"), EnumerationConfig())
    with tracing(run_dir=str(tmp_path / "run")) as tracer:
        traced = enumerate_space(bench_function("sha", "rol"), EnumerationConfig())
        counts = tracer.snapshot_phases()
    assert dag_snapshot(traced.dag) == dag_snapshot(baseline.dag)
    assert traced.attempted_phases == baseline.attempted_phases
    assert traced.phases_applied == baseline.phases_applied
    # active/dormant strictly partition the attempts
    attempts = sum(c["active"] + c["dormant"] for c in counts.values())
    assert attempts == baseline.attempted_phases
    assert sum(c["quarantined"] for c in counts.values()) == 0
    # per-phase active counts equal the DAG's out-edge counts per phase
    active_edges = {}
    for node_id in range(len(traced.dag.nodes)):
        for phase_id in traced.dag.nodes[node_id].active:
            active_edges[phase_id] = active_edges.get(phase_id, 0) + 1
    assert {p: c["active"] for p, c in counts.items() if c["active"]} == active_edges


def test_traced_run_journal_is_schema_valid(tmp_path):
    run_dir = tmp_path / "run"
    with tracing(run_dir=str(run_dir)) as tracer:
        tracer.emit("run_start", tool="test")
        enumerate_space(bench_function("sha", "rol"), EnumerationConfig())
    records, errors = validate_journal(str(run_dir / "events.jsonl"))
    assert errors == []
    names = [record["event"] for record in records]
    assert names[0] == "run_start"
    assert names[-1] == "run_end"
    assert "enum_start" in names
    assert "enum_done" in names
    assert "phase_stats" in names


def test_tracing_context_restores_previous_state(tmp_path):
    from repro.observability import tracer as obs

    assert obs.ACTIVE is None
    with tracing(run_dir=str(tmp_path / "run")):
        assert obs.ACTIVE is not None
    assert obs.ACTIVE is None
