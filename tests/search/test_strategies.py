"""Cross-strategy tests: determinism, semantics, and oracle checks.

Every strategy in the zoo must (a) be bit-identical under a fixed
seed, (b) return a best_function that really has the reported fitness,
(c) account its attempted-phase budget, and (d) never report a fitness
below the exhaustive optimum of the fully enumerated space.
"""

import pytest

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.interactions import analyze_interactions
from repro.frontend import compile_source
from repro.opt import implicit_cleanup
from repro.search import (
    BanditSearcher,
    GeneticSearcher,
    HillClimber,
    RandomSampler,
    SimulatedAnnealer,
    TableDrivenPolicy,
    codesize_objective,
)
from repro.vm import Interpreter

SRC = """
int clamp(int x) {
    if (x < 0) return 0;
    if (x > 255) return 255;
    return x;
}
"""


def clamp_function():
    func = compile_source(SRC).function("clamp")
    implicit_cleanup(func)
    return func


@pytest.fixture(scope="module")
def clamp_space():
    result = enumerate_space(clamp_function(), EnumerationConfig())
    assert result.completed
    return result


@pytest.fixture(scope="module")
def clamp_interactions(clamp_space):
    return analyze_interactions([clamp_space])


def build(name, seed, interactions):
    """Small-budget builders keyed like the harness registry."""
    func = clamp_function()
    if name == "ga":
        return GeneticSearcher(
            func, population_size=8, generations=6, seed=seed
        )
    if name == "hillclimb":
        return HillClimber(func, restarts=2, max_steps=20, seed=seed)
    if name == "random":
        return RandomSampler(func, samples=40, seed=seed)
    if name == "bandit-eps":
        return BanditSearcher(func, episodes=40, policy="epsilon", seed=seed)
    if name == "bandit-ucb":
        return BanditSearcher(func, episodes=40, policy="ucb", seed=seed)
    if name == "anneal":
        return SimulatedAnnealer(func, steps=40, seed=seed)
    if name == "policy":
        return TableDrivenPolicy(func, interactions, rollouts=8, seed=seed)
    raise AssertionError(name)


ALL = ("ga", "hillclimb", "random", "bandit-eps", "bandit-ucb", "anneal", "policy")


@pytest.mark.parametrize("name", ALL)
class TestEveryStrategy:
    def test_bit_identical_under_fixed_seed(self, name, clamp_interactions):
        first = build(name, 17, clamp_interactions).run()
        second = build(name, 17, clamp_interactions).run()
        assert first.to_dict() == second.to_dict()

    def test_best_function_matches_reported_fitness(
        self, name, clamp_interactions
    ):
        result = build(name, 3, clamp_interactions).run()
        assert codesize_objective(result.best_function) == result.best_fitness

    def test_budget_accounting(self, name, clamp_interactions):
        result = build(name, 5, clamp_interactions).run()
        assert result.attempted_phases > 0
        assert result.evaluations > 0
        assert result.strategy == build(name, 5, clamp_interactions).name

    def test_never_beats_the_exhaustive_optimum(
        self, name, clamp_space, clamp_interactions
    ):
        optimum = clamp_space.dag.min_codesize()
        for seed in (1, 2):
            result = build(name, seed, clamp_interactions).run()
            assert result.best_fitness >= optimum

    def test_history_is_monotone_nonincreasing(self, name, clamp_interactions):
        result = build(name, 9, clamp_interactions).run()
        assert result.history
        assert all(
            later <= earlier
            for earlier, later in zip(result.history, result.history[1:])
        )

    def test_best_function_is_semantically_correct(
        self, name, clamp_interactions
    ):
        result = build(name, 13, clamp_interactions).run()
        program = compile_source(SRC)
        program.functions["clamp"] = result.best_function
        vm = Interpreter(program)
        assert vm.run("clamp", (-5,)).value == 0
        assert vm.run("clamp", (300,)).value == 255
        assert vm.run("clamp", (42,)).value == 42


class TestStrategySpecifics:
    def test_policy_finds_the_optimum_on_clamp(
        self, clamp_space, clamp_interactions
    ):
        # the Figure 8 tables are measured from clamp's own space, so
        # the greedy rollout alone should reach the true optimum here
        optimum = clamp_space.dag.min_codesize()
        result = build("policy", 7, clamp_interactions).run()
        assert result.best_fitness == optimum

    def test_every_strategy_improves_on_the_unoptimized_base(
        self, clamp_interactions
    ):
        base_size = codesize_objective(clamp_function())
        for name in ALL:
            result = build(name, 7, clamp_interactions).run()
            assert result.best_fitness < base_size, name

    def test_policy_first_rollout_is_figure8_greedy(self, clamp_interactions):
        policy = TableDrivenPolicy(
            clamp_function(), clamp_interactions, rollouts=1, seed=1
        )
        greedy1 = policy._rollout(stochastic=False)[0]
        policy2 = TableDrivenPolicy(
            clamp_function(), clamp_interactions, rollouts=1, seed=99
        )
        greedy2 = policy2._rollout(stochastic=False)[0]
        # the greedy trajectory is seed-independent by construction
        assert greedy1 == greedy2

    def test_bandit_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="bad bandit policy"):
            BanditSearcher(clamp_function(), policy="thompson")

    def test_bandit_names_differ_by_policy(self):
        eps = BanditSearcher(clamp_function(), policy="epsilon")
        ucb = BanditSearcher(clamp_function(), policy="ucb")
        assert eps.name == "bandit-eps"
        assert ucb.name == "bandit-ucb"

    def test_different_seeds_explore_differently(self, clamp_interactions):
        # not a strict requirement per-strategy, but across the zoo at
        # least one strategy must produce a different search trace for
        # a different seed — otherwise the RNG plumbing is broken
        differing = 0
        for name in ALL:
            a = build(name, 1, clamp_interactions).run()
            b = build(name, 2, clamp_interactions).run()
            if a.to_dict() != b.to_dict():
                differing += 1
        assert differing > 0
