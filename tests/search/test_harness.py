"""Tests for the search-bench oracle harness and its leaderboard."""

import json
import os

import pytest

from repro.observability.tracer import Tracer, install, uninstall
from repro.search.harness import (
    DEFAULT_OUT,
    QUICK_FUNCTIONS,
    SCHEMA_VERSION,
    SEED_FUNCTIONS,
    STRATEGY_BUILDERS,
    HarnessConfig,
    SeedFunction,
    format_leaderboard,
    quick_config,
    run_search_bench,
    write_leaderboard,
)

DESCALE = (SeedFunction("jpeg", "descale"),)


@pytest.fixture(scope="module")
def leaderboard():
    config = HarnessConfig(
        functions=DESCALE,
        strategies=("random", "policy"),
        trials=2,
        seed=5,
    )
    return run_search_bench(config)


class TestLeaderboardSchema:
    def test_top_level_keys(self, leaderboard):
        assert leaderboard["schema_version"] == SCHEMA_VERSION
        assert leaderboard["tool"] == "repro search-bench"
        assert leaderboard["objective"] == "dynamic_count"
        assert leaderboard["trials"] == 2
        assert leaderboard["seed"] == 5
        assert leaderboard["elapsed"] >= 0
        assert set(leaderboard["functions"]) == {"jpeg.descale"}
        assert leaderboard["ranking"]

    def test_function_entry_shape(self, leaderboard):
        entry = leaderboard["functions"]["jpeg.descale"]
        assert entry["benchmark"] == "jpeg"
        assert entry["function"] == "descale"
        assert entry["space"]["nodes"] > 0
        assert entry["space"]["leaves"] > 0
        assert set(entry["strategies"]) == {"random", "policy"}
        assert set(entry["optimal"]) >= {"dynamic_count", "code_size"}

    def test_strategy_entry_shape(self, leaderboard):
        entry = leaderboard["functions"]["jpeg.descale"]
        for scores in entry["strategies"].values():
            assert len(scores["trials"]) == 2
            assert scores["best_fitness"] >= 0
            assert scores["mean_ratio"] >= 1.0
            assert 0.0 <= scores["p_optimal"] <= 1.0
            assert scores["mean_attempted"] > 0

    def test_serializes_to_json(self, leaderboard, tmp_path):
        path = write_leaderboard(leaderboard, str(tmp_path / "search.json"))
        with open(path) as handle:
            assert json.load(handle) == leaderboard

    def test_format_is_human_readable(self, leaderboard):
        text = format_leaderboard(leaderboard)
        assert "jpeg.descale" in text
        assert "random" in text
        assert "policy" in text


class TestOracleInvariants:
    def test_no_strategy_beats_the_exhaustive_optimum(self, leaderboard):
        entry = leaderboard["functions"]["jpeg.descale"]
        optimum = entry["optimal"]["dynamic_count"]["value"]
        for scores in entry["strategies"].values():
            assert scores["beats_oracle"] is False
            assert scores["best_fitness"] >= optimum
            for trial in scores["trials"]:
                assert trial["fitness"] >= optimum

    def test_pareto_points_are_mutually_non_dominated(self, leaderboard):
        entry = leaderboard["functions"]["jpeg.descale"]
        points = [tuple(p["values"]) for p in entry["pareto"]["points"]]
        assert points
        for mine in points:
            for other in points:
                if other is mine:
                    continue
                assert not (
                    all(o <= m for o, m in zip(other, mine))
                    and any(o < m for o, m in zip(other, mine))
                )

    def test_ranking_is_sorted_by_mean_ratio(self, leaderboard):
        ratios = [row["mean_ratio"] for row in leaderboard["ranking"]]
        assert ratios == sorted(ratios)


class TestDeterminismAndStore:
    def test_warm_store_reproduces_the_cold_run(self, tmp_path):
        config = HarnessConfig(
            functions=DESCALE,
            strategies=("random",),
            trials=1,
            seed=11,
            store=str(tmp_path / "store"),
        )
        cold = run_search_bench(config)
        warm = run_search_bench(config)
        assert cold["functions"]["jpeg.descale"]["space"]["from_store"] is False
        assert warm["functions"]["jpeg.descale"]["space"]["from_store"] is True
        cold["elapsed"] = warm["elapsed"] = 0
        cold["functions"]["jpeg.descale"]["space"]["from_store"] = None
        warm["functions"]["jpeg.descale"]["space"]["from_store"] = None
        assert cold == warm

    def test_same_seed_is_bit_identical(self):
        config = HarnessConfig(
            functions=DESCALE, strategies=("random",), trials=1, seed=23
        )
        first = run_search_bench(config)
        second = run_search_bench(config)
        first["elapsed"] = second["elapsed"] = 0
        assert first == second


class TestConfigValidation:
    def test_unknown_strategy_is_rejected(self):
        config = HarnessConfig(functions=DESCALE, strategies=("alchemy",))
        with pytest.raises(ValueError, match="unknown strategies"):
            run_search_bench(config)

    def test_unknown_objective_is_rejected(self):
        config = HarnessConfig(functions=DESCALE, objective="beauty")
        with pytest.raises(ValueError, match="bad objective"):
            run_search_bench(config)

    def test_unknown_function_is_rejected(self):
        config = HarnessConfig(
            functions=(SeedFunction("jpeg", "no_such_func"),),
            strategies=("random",),
        )
        with pytest.raises(ValueError, match="no_such_func"):
            run_search_bench(config)

    def test_quick_config_narrows_the_run(self):
        config = quick_config()
        assert config.quick is True
        assert config.functions == QUICK_FUNCTIONS
        assert config.trials == 2
        assert set(QUICK_FUNCTIONS) < set(SEED_FUNCTIONS)

    def test_registry_and_defaults_are_consistent(self):
        config = HarnessConfig()
        assert set(config.strategies) == set(STRATEGY_BUILDERS)
        assert len(SEED_FUNCTIONS) == 6
        assert os.path.basename(DEFAULT_OUT) == "search.json"


class TestJournalEvents:
    def test_bench_emits_search_events(self, tmp_path):
        tracer = Tracer(run_dir=str(tmp_path), manifest={"tool": "test"})
        install(tracer)
        try:
            run_search_bench(
                HarnessConfig(
                    functions=DESCALE, strategies=("random",), trials=1
                )
            )
        finally:
            uninstall()
            tracer.close()
        journal = os.path.join(str(tmp_path), "events.jsonl")
        events = [
            json.loads(line)["event"]
            for line in open(journal)
            if line.strip()
        ]
        assert "search_start" in events
        assert "search_space" in events
        assert "search_strategy" in events
        assert "search_done" in events
