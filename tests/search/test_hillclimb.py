"""Tests for the hill-climbing search baseline."""

import pytest

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.frontend import compile_source
from repro.opt import implicit_cleanup
from repro.search import HillClimber
from repro.vm import Interpreter

SRC = "int clamp(int x) { if (x < 0) return 0; if (x > 255) return 255; return x; }"


def clamp_function():
    func = compile_source(SRC).function("clamp")
    implicit_cleanup(func)
    return func


class TestHillClimber:
    def test_reaches_the_exhaustive_optimum(self):
        result = enumerate_space(clamp_function(), EnumerationConfig())
        optimum = result.dag.min_codesize()
        climb = HillClimber(clamp_function(), restarts=3, seed=1).run()
        assert climb.best_fitness == optimum

    def test_deterministic(self):
        a = HillClimber(clamp_function(), restarts=2, seed=5).run()
        b = HillClimber(clamp_function(), restarts=2, seed=5).run()
        assert a.best_sequence == b.best_sequence

    def test_monotone_history_across_restarts(self):
        result = HillClimber(clamp_function(), restarts=4, seed=3).run()
        assert all(
            later <= earlier
            for earlier, later in zip(result.history, result.history[1:])
        )

    def test_cache_fires(self):
        result = HillClimber(clamp_function(), restarts=2, seed=7).run()
        assert result.cache_hits > 0

    def test_best_function_semantics(self):
        result = HillClimber(clamp_function(), restarts=2, seed=9).run()
        program = compile_source(SRC)
        program.functions["clamp"] = result.best_function
        assert Interpreter(program).run("clamp", (-4,)).value == 0
        assert Interpreter(program).run("clamp", (256,)).value == 255
        assert Interpreter(program).run("clamp", (42,)).value == 42
