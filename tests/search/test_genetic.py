"""Tests for the genetic phase-order search."""

import pytest

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.frontend import compile_source
from repro.opt import implicit_cleanup
from repro.search import GeneticSearcher, codesize_objective
from repro.vm import Interpreter

SRC = """
int clamp(int x) {
    if (x < 0) return 0;
    if (x > 255) return 255;
    return x;
}
"""


def clamp_function():
    func = compile_source(SRC).function("clamp")
    implicit_cleanup(func)
    return func


@pytest.fixture(scope="module")
def true_optimum():
    result = enumerate_space(clamp_function(), EnumerationConfig())
    assert result.completed
    return result.dag.min_codesize()


class TestSearch:
    def test_finds_the_exhaustive_optimum_on_small_function(self, true_optimum):
        searcher = GeneticSearcher(
            clamp_function(), codesize_objective, generations=15, seed=7
        )
        result = searcher.run()
        assert result.best_fitness == true_optimum

    def test_deterministic_given_seed(self):
        run1 = GeneticSearcher(clamp_function(), seed=11, generations=5).run()
        run2 = GeneticSearcher(clamp_function(), seed=11, generations=5).run()
        assert run1.best_sequence == run2.best_sequence
        assert run1.best_fitness == run2.best_fitness

    def test_fingerprint_cache_avoids_reevaluations(self):
        result = GeneticSearcher(clamp_function(), generations=10, seed=3).run()
        # many sequences converge to the same instances (the paper's
        # central observation), so the cache must fire heavily
        assert result.cache_hits > result.evaluations

    def test_history_is_monotone(self):
        result = GeneticSearcher(clamp_function(), generations=8, seed=5).run()
        assert all(
            later <= earlier
            for earlier, later in zip(result.history, result.history[1:])
        )

    def test_best_function_is_semantically_correct(self):
        result = GeneticSearcher(clamp_function(), generations=8, seed=9).run()
        program = compile_source(SRC)
        program.functions["clamp"] = result.best_function
        for x, expected in [(-3, 0), (7, 7), (300, 255)]:
            assert Interpreter(program).run("clamp", (x,)).value == expected


class TestGuidedMutation:
    def test_interaction_guided_search_runs(self, small_interactions):
        searcher = GeneticSearcher(
            clamp_function(),
            generations=8,
            seed=13,
            interactions=small_interactions,
        )
        result = searcher.run()
        assert result.best_fitness <= clamp_function().num_instructions()

    def test_guided_matches_or_beats_uniform_on_budget(
        self, small_interactions, true_optimum
    ):
        uniform = GeneticSearcher(
            clamp_function(), generations=6, population_size=10, seed=17
        ).run()
        guided = GeneticSearcher(
            clamp_function(),
            generations=6,
            population_size=10,
            seed=17,
            interactions=small_interactions,
        ).run()
        assert guided.best_fitness <= uniform.best_fitness
        assert guided.best_fitness >= true_optimum
