"""Tests for the multi-objective cost model and Pareto frontiers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dynamic import DynamicCountOracle, MissingFunctionError
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.frontend import compile_source
from repro.opt import implicit_cleanup
from repro.search.cost import (
    OBJECTIVES,
    CostModel,
    CostVector,
    instruction_cycles,
    instruction_energy,
    pareto_frontier,
    register_pressure,
)

SRC = """
int a[20];
int weighted(int scale) {
    int total = 0;
    int i;
    for (i = 0; i < 20; i++)
        total += a[i] * scale / 3;
    return total;
}
"""


def seed_and_run(interpreter):
    for i in range(20):
        interpreter.store_global("a", i + 1, i)
    interpreter.run("weighted", (7,))


@pytest.fixture(scope="module")
def space():
    program = compile_source(SRC)
    func = program.function("weighted")
    implicit_cleanup(func)
    result = enumerate_space(
        func,
        EnumerationConfig(max_nodes=800, max_levels=6, keep_functions=True),
    )
    return program, result


def vector(code_size=10, dynamic=100, cycles=150, energy=200, registers=5):
    return CostVector(code_size, dynamic, cycles, energy, registers)


class TestInstructionWeights:
    def test_multiplies_and_divides_cost_extra(self):
        func = compile_source("int f(int x) { return x * x / 3; }").function("f")
        costs = [
            instruction_cycles(inst)
            for block in func.blocks
            for inst in block.insts
        ]
        # at least one instruction carries the mul and div surcharges
        assert max(costs) > 1

    def test_memory_weighs_more_in_energy_than_cycles(self):
        program = compile_source("int g[4]; int f(void) { return g[1]; }")
        func = program.function("f")
        loads = [
            inst
            for block in func.blocks
            for inst in block.insts
            if inst.reads_memory()
        ]
        assert loads
        assert instruction_energy(loads[0]) > instruction_cycles(loads[0])

    def test_plain_instruction_costs_the_base(self):
        func = compile_source("int f(int x) { return x; }").function("f")
        costs = [
            (instruction_cycles(inst), instruction_energy(inst))
            for block in func.blocks
            for inst in block.insts
        ]
        assert min(cost for cost, _energy in costs) == 1


class TestRegisterPressure:
    def test_counts_distinct_hardware_registers(self):
        func = compile_source("int f(int x, int y) { return x + y; }").function("f")
        # the unoptimized function references at least its two argument
        # registers; pseudo registers must not count
        assert register_pressure(func) >= 2

    def test_optimization_changes_pressure(self, space):
        program, result = space
        values = {
            register_pressure(node.function)
            for node in result.dag.nodes.values()
            if node.function is not None
        }
        assert len(values) > 1


class TestCostModel:
    def test_dynamic_count_matches_oracle(self, space):
        program, result = space
        oracle = DynamicCountOracle(program, "weighted", seed_and_run)
        model = CostModel(oracle)
        for node in list(result.dag.nodes.values())[:40]:
            if node.function is None:
                continue
            assert (
                model.node_vector(node).dynamic_count
                == oracle.count_for(node.function, node.cf_crc)
            )

    def test_cycles_and_energy_dominate_dynamic_count(self, space):
        program, result = space
        model = CostModel(DynamicCountOracle(program, "weighted", seed_and_run))
        prices = model.price_leaves(result.dag)
        for vec in prices.values():
            # every executed instruction costs at least one cycle and
            # one energy unit, so the proxies bound the raw count
            assert vec.cycles >= vec.dynamic_count
            assert vec.energy >= vec.dynamic_count

    def test_multi_objective_pricing_costs_no_extra_executions(self, space):
        program, result = space
        oracle = DynamicCountOracle(program, "weighted", seed_and_run)
        model = CostModel(oracle)
        model.price_space(result.dag)
        distinct_cfs = len(
            {
                node.cf_crc
                for node in result.dag.nodes.values()
                if node.function is not None
            }
        )
        assert model.executions == distinct_cfs

    def test_optimum_breaks_ties_on_node_id(self):
        prices = {4: vector(code_size=3), 2: vector(code_size=3)}
        assert CostModel.optimum(prices, "code_size") == (2, 3)

    def test_optimum_rejects_unknown_objective(self):
        with pytest.raises(ValueError, match="bad objective"):
            CostModel.optimum({1: vector()}, "beauty")

    def test_optimum_rejects_empty_prices(self):
        with pytest.raises(ValueError, match="no priced nodes"):
            CostModel.optimum({}, "code_size")

    def test_missing_functions_raise_typed_error(self, space):
        program, result = space
        model = CostModel(DynamicCountOracle(program, "weighted", seed_and_run))
        bare_result = enumerate_space(
            compile_source(SRC).function("weighted"),
            EnumerationConfig(max_nodes=50, max_levels=2),
        )
        with pytest.raises(MissingFunctionError, match="materialize_instances"):
            model.price_space(bare_result.dag)
        with pytest.raises(ValueError, match="keep_functions"):
            model.node_vector(bare_result.dag.root)


class TestParetoFrontier:
    def test_single_point_when_one_instance_dominates(self):
        prices = {
            1: vector(code_size=5, dynamic=50, energy=60, registers=3),
            2: vector(code_size=6, dynamic=60, energy=70, registers=4),
        }
        assert pareto_frontier(prices) == [(1, (5, 50, 60, 3))]

    def test_tradeoff_keeps_both_points(self):
        prices = {
            1: vector(code_size=5, dynamic=50, energy=60, registers=4),
            2: vector(code_size=6, dynamic=60, energy=70, registers=3),
        }
        frontier = pareto_frontier(prices)
        assert [node for node, _values in frontier] == [1, 2]

    def test_identical_points_collapse_to_lowest_node_id(self):
        prices = {
            7: vector(),
            3: vector(),
        }
        frontier = pareto_frontier(prices)
        assert frontier == [(3, (10, 100, 200, 5))]

    def test_no_frontier_point_is_dominated(self, space):
        program, result = space
        model = CostModel(DynamicCountOracle(program, "weighted", seed_and_run))
        prices = model.price_space(result.dag)
        frontier = pareto_frontier(prices)
        assert frontier
        points = [values for _node, values in frontier]
        for mine in points:
            for other in points:
                if other is mine:
                    continue
                dominates = all(o <= m for o, m in zip(other, mine)) and any(
                    o < m for o, m in zip(other, mine)
                )
                assert not dominates

    def test_custom_objectives_and_determinism(self):
        prices = {
            1: vector(code_size=5, dynamic=90),
            2: vector(code_size=9, dynamic=50),
            3: vector(code_size=9, dynamic=90),
        }
        frontier = pareto_frontier(prices, objectives=("code_size", "dynamic_count"))
        assert frontier == [(1, (5, 90)), (2, (9, 50))]
        assert frontier == pareto_frontier(
            prices, objectives=("code_size", "dynamic_count")
        )

    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError, match="bad objective"):
            pareto_frontier({1: vector()}, objectives=("karma",))

    def test_objectives_constant_is_consistent(self):
        assert set(CostVector._fields) == set(OBJECTIVES)


class TestStableTieBreak:
    """Identical cost points must dedupe by content key, not node id.

    Node ids are assignment-order artifacts — parallel merge order or
    semantic collapse renumber the same space — so a frontier computed
    with ``keys`` must pick the same representative under any
    renumbering of the ids.
    """

    def test_keys_override_node_id_order(self):
        prices = {3: vector(), 7: vector()}
        keys = {3: ("zzz",), 7: ("aaa",)}
        frontier = pareto_frontier(prices, keys=keys)
        assert frontier == [(7, (10, 100, 200, 5))]

    def test_without_keys_lowest_node_id_still_wins(self):
        prices = {9: vector(), 2: vector()}
        assert pareto_frontier(prices) == [(2, (10, 100, 200, 5))]

    @given(
        permutation=st.permutations(list(range(6))),
        duplicates=st.lists(
            st.integers(0, 3), min_size=6, max_size=6
        ),
    )
    @settings(deadline=None, max_examples=50)
    def test_frontier_invariant_under_node_renumbering(
        self, permutation, duplicates
    ):
        # six instances sharing at most four distinct cost points, each
        # carrying a content key that survives renumbering
        points = [
            vector(code_size=10 + bucket, registers=5 - bucket)
            for bucket in duplicates
        ]
        baseline_prices = {nid: points[nid] for nid in range(6)}
        baseline_keys = {nid: ("key", duplicates[nid], nid) for nid in range(6)}
        renumbered_prices = {
            permutation[nid]: points[nid] for nid in range(6)
        }
        renumbered_keys = {
            permutation[nid]: baseline_keys[nid] for nid in range(6)
        }
        baseline = pareto_frontier(baseline_prices, keys=baseline_keys)
        renumbered = pareto_frontier(
            renumbered_prices, keys=renumbered_keys
        )
        # map the renumbered frontier back through the permutation:
        # same points, same representatives (by key)
        inverse = {new: old for old, new in enumerate(permutation)}
        mapped = sorted(
            (inverse[node_id], values) for node_id, values in renumbered
        )
        assert mapped == sorted(baseline)
