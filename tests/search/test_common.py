"""Tests for the shared SearchStrategy/SearchResult extraction."""

import pytest

from repro.search.common import (
    GeneticSearchResult,
    SearchResult,
    SearchStrategy,
    codesize_objective,
)
from tests.conftest import MAXI_SRC, compile_fn


def maxi():
    return compile_fn(MAXI_SRC, "maxi")


class TestBackwardCompat:
    def test_legacy_name_is_an_alias(self):
        assert GeneticSearchResult is SearchResult

    def test_legacy_name_importable_from_old_homes(self):
        from repro.search.genetic import GeneticSearchResult as from_genetic
        from repro.search.hillclimb import GeneticSearchResult as from_hillclimb
        from repro.search import GeneticSearchResult as from_package

        assert from_genetic is SearchResult
        assert from_hillclimb is SearchResult
        assert from_package is SearchResult

    def test_legacy_positional_construction(self):
        result = SearchResult(("c", "s"), 7.0, None, 3, 1, [9.0, 7.0])
        assert result.best_sequence == ("c", "s")
        assert result.best_fitness == 7.0
        assert result.evaluations == 3
        assert result.cache_hits == 1
        assert result.history == [9.0, 7.0]
        # search-lab fields default sanely for legacy callers
        assert result.strategy == "?"
        assert result.attempted_phases == 0

    def test_objectives_importable_from_old_home(self):
        from repro.search.genetic import (
            codesize_objective as legacy_codesize,
            dynamic_count_objective as legacy_dynamic,
        )

        assert legacy_codesize is codesize_objective
        assert legacy_dynamic is not None


class TestSearchResult:
    def test_to_dict_is_json_shaped(self):
        result = SearchResult(
            ("c", "s"), 7.0, None, 3, 1, [9.0, 7.0],
            strategy="test", attempted_phases=24,
        )
        assert result.to_dict() == {
            "strategy": "test",
            "sequence": "cs",
            "fitness": 7.0,
            "evaluations": 3,
            "cache_hits": 1,
            "attempted_phases": 24,
            "history": [9.0, 7.0],
        }


class TestSearchStrategy:
    def test_run_is_abstract(self):
        with pytest.raises(NotImplementedError):
            SearchStrategy(maxi()).run()

    def test_apply_counts_every_attempt(self):
        strategy = SearchStrategy(maxi())
        strategy._apply(("c", "s", "c"))
        assert strategy.attempted_phases == 3

    def test_score_caches_by_instance_fingerprint(self):
        strategy = SearchStrategy(maxi(), codesize_objective)
        first = strategy._score(maxi())
        second = strategy._score(maxi())
        assert first == second
        assert strategy.evaluations == 1
        assert strategy.cache_hits == 1

    def test_base_is_cloned(self):
        func = maxi()
        strategy = SearchStrategy(func)
        strategy._apply(tuple("cshuk"))
        # searching must never mutate the caller's function
        assert func.num_instructions() == maxi().num_instructions()

    def test_result_carries_strategy_accounting(self):
        strategy = SearchStrategy(maxi())
        fitness, func = strategy._evaluate(("c",))
        result = strategy._result(("c",), fitness, func, [fitness])
        assert result.strategy == "strategy"
        assert result.attempted_phases == 1
        assert result.evaluations == strategy.evaluations
