"""Unit tests for common subexpression elimination (phase c)."""

from repro.ir.function import Function
from repro.ir.instructions import Assign, Call, Compare, CondBranch, Jump, Return
from repro.ir.operands import BinOp, Const, Mem, Reg
from repro.machine.target import DEFAULT_TARGET, FP, RV
from repro.opt import apply_phase, phase_by_id

C = phase_by_id("c")

R = lambda i: Reg(i, pseudo=False)


def one_block(insts, returns_value=True):
    func = Function("f", returns_value=returns_value)
    func.reg_assigned = True  # hand-built functions use hw registers
    block = func.add_block("L0")
    block.insts = list(insts) + [Return()]
    return func


class TestLocalValueNumbering:
    def test_redundant_computation_becomes_copy(self):
        func = one_block(
            [
                Assign(R(1), BinOp("add", R(4), R(5))),
                Assign(R(2), BinOp("add", R(4), R(5))),
                Assign(RV, BinOp("add", R(1), R(2))),
            ]
        )
        assert C.run(func, DEFAULT_TARGET)
        assert func.blocks[0].insts[1] == Assign(R(2), R(1))

    def test_operand_redefinition_invalidates(self):
        func = one_block(
            [
                Assign(R(1), BinOp("add", R(4), R(5))),
                Assign(R(4), Const(0)),
                Assign(R(2), BinOp("add", R(4), R(5))),
                Assign(RV, BinOp("add", R(1), R(2))),
            ]
        )
        C.run(func, DEFAULT_TARGET)
        # r2's computation must not be replaced by a copy of r1 (r4
        # changed in between); constant propagation of r4=0 is fine.
        assert Assign(R(2), R(1)) not in func.blocks[0].insts

    def test_constant_propagation(self):
        func = one_block(
            [
                Assign(R(1), Const(4)),
                Assign(RV, BinOp("mul", R(2), R(1))),
            ]
        )
        assert C.run(func, DEFAULT_TARGET)
        assert Assign(RV, BinOp("mul", R(2), Const(4))) in func.blocks[0].insts

    def test_copy_propagation(self):
        func = one_block(
            [
                Assign(R(1), R(5)),
                Assign(RV, BinOp("add", R(1), Const(1))),
            ]
        )
        assert C.run(func, DEFAULT_TARGET)
        assert Assign(RV, BinOp("add", R(5), Const(1))) in func.blocks[0].insts

    def test_figure3_constant_propagation_without_folding(self):
        # Paper Figure 3: r2=1; r3=r4+r2 -> r3=r4+1 (the same effect
        # instruction selection achieves by combining).
        func = one_block(
            [
                Assign(R(2), Const(1)),
                Assign(R(3), BinOp("add", R(4), R(2))),
                Assign(RV, BinOp("add", R(3), R(2))),
            ]
        )
        assert C.run(func, DEFAULT_TARGET)
        assert Assign(R(3), BinOp("add", R(4), Const(1))) in func.blocks[0].insts

    def test_commutative_swap_legalizes_constant(self):
        # r1=5; rv = r1 + r2 -> rv = r2 + 5 (constant must be operand2).
        func = one_block(
            [
                Assign(R(1), Const(5)),
                Assign(RV, BinOp("add", R(1), R(2))),
            ]
        )
        assert C.run(func, DEFAULT_TARGET)
        assert Assign(RV, BinOp("add", R(2), Const(5))) in func.blocks[0].insts

    def test_redundant_load_elimination(self):
        addr = BinOp("add", FP, Const(4))
        func = one_block(
            [
                Assign(R(1), Mem(addr)),
                Assign(R(2), Mem(addr)),
                Assign(RV, BinOp("add", R(1), R(2))),
            ]
        )
        func.add_local("x", 1, "int", False)
        func.add_local("y", 1, "int", False)
        assert C.run(func, DEFAULT_TARGET)
        assert Assign(R(2), R(1)) in func.blocks[0].insts

    def test_store_to_other_slot_preserves_load_value(self):
        load_addr = BinOp("add", FP, Const(4))
        store_addr = BinOp("add", FP, Const(8))
        func = one_block(
            [
                Assign(R(1), Mem(load_addr)),
                Assign(Mem(store_addr), R(3)),
                Assign(R(2), Mem(load_addr)),
                Assign(RV, BinOp("add", R(1), R(2))),
            ]
        )
        assert C.run(func, DEFAULT_TARGET)
        assert Assign(R(2), R(1)) in func.blocks[0].insts

    def test_store_to_unknown_address_kills_loads(self):
        load_addr = BinOp("add", FP, Const(4))
        func = one_block(
            [
                Assign(R(1), Mem(load_addr)),
                Assign(Mem(R(9)), R(3)),  # unknown address
                Assign(R(2), Mem(load_addr)),
                Assign(RV, BinOp("add", R(1), R(2))),
            ]
        )
        assert not C.run(func, DEFAULT_TARGET)

    def test_call_kills_memory_and_caller_saved(self):
        func = one_block(
            [
                Assign(R(5), Mem(BinOp("add", FP, Const(4)))),
                Assign(R(1), Const(7)),
                Call("g", 0),
                Assign(R(6), Mem(BinOp("add", FP, Const(4)))),
                Assign(RV, BinOp("add", BinOp("add", R(5), R(6)), R(1))),
            ]
        )
        changed = C.run(func, DEFAULT_TARGET)
        # neither the load nor r1's constant survive the call
        assert Assign(R(6), R(5)) not in func.blocks[0].insts

    def test_self_referencing_rtl_not_tabled(self):
        func = one_block(
            [
                Assign(R(1), BinOp("add", R(1), Const(4))),
                Assign(R(2), BinOp("add", R(1), Const(4))),
                Assign(RV, BinOp("add", R(1), R(2))),
            ]
        )
        assert not C.run(func, DEFAULT_TARGET)


class TestGlobalPropagation:
    def _two_block(self, first, second):
        func = Function("f", returns_value=True)
        func.reg_assigned = True
        a = func.add_block("a")
        b = func.add_block("b")
        a.insts = list(first)
        b.insts = list(second) + [Return()]
        return func

    def test_constant_flows_across_blocks(self):
        func = self._two_block(
            [Assign(R(5), Const(4))],
            [Assign(RV, BinOp("mul", R(2), R(5)))],
        )
        assert C.run(func, DEFAULT_TARGET)
        assert Assign(RV, BinOp("mul", R(2), Const(4))) in func.blocks[1].insts

    def test_multiply_defined_register_not_propagated(self):
        func = Function("f", returns_value=True)
        func.reg_assigned = True
        a = func.add_block("a")
        b = func.add_block("b")
        c = func.add_block("c")
        a.insts = [
            Assign(R(5), Const(4)),
            Compare(R(2), Const(0)),
            CondBranch("eq", "c"),
        ]
        b.insts = [Assign(R(5), Const(9))]
        c.insts = [Assign(RV, BinOp("add", R(2), R(5))), Return()]
        assert not C.run(func, DEFAULT_TARGET)

    def test_argument_register_not_treated_single_def(self):
        # Regression: r0 is implicitly defined at entry (it carries the
        # first argument); a later textual single def must not be
        # propagated across it.
        func = Function("f", returns_value=True)
        func.reg_assigned = True
        func.params = ["x"]
        a = func.add_block("a")
        b = func.add_block("b")
        a.insts = [Assign(R(8), R(0))]  # save the argument
        b.insts = [
            Assign(R(0), Mem(FP)),  # textual single def of r0
            Assign(RV, BinOp("add", R(8), R(0))),
            Return(),
        ]
        func.add_local("x", 1, "int", False)
        C.run(func, DEFAULT_TARGET)
        # The sum must still read r8: replacing it with r0 would read
        # the freshly loaded value instead of the saved argument.
        sums = [
            inst
            for inst in func.instructions()
            if isinstance(inst, Assign) and isinstance(inst.src, BinOp)
        ]
        assert any(R(8) in inst.uses() for inst in sums)

    def test_global_cse_of_pure_expression(self):
        func = self._two_block(
            [Assign(R(5), BinOp("add", FP, Const(8)))],
            [Assign(R(6), BinOp("add", FP, Const(8))), Assign(RV, BinOp("add", R(5), R(6)))],
        )
        assert C.run(func, DEFAULT_TARGET)
        assert Assign(R(6), R(5)) in func.blocks[1].insts


class TestLegality:
    def test_requires_register_assignment(self):
        # Applying c to a pre-assignment function triggers the implicit
        # compulsory register assignment first (via apply_phase).
        from tests.conftest import compile_fn, GCD_SRC

        func = compile_fn(GCD_SRC, "gcd")
        assert not func.reg_assigned
        active = apply_phase(func, C)
        if active:
            assert func.reg_assigned
        else:
            assert not func.reg_assigned  # dormant attempt leaves it be
