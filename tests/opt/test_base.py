"""Tests for the phase application driver (apply_phase semantics)."""

from repro.opt import apply_phase, phase_by_id
from repro.ir.printer import format_function
from tests.conftest import GCD_SRC, SQUARE_SRC, compile_fn


class TestImplicitRegisterAssignment:
    def test_active_c_commits_assignment(self):
        func = compile_fn(GCD_SRC, "gcd")
        assert not func.reg_assigned
        if apply_phase(func, phase_by_id("c")):
            assert func.reg_assigned
            # no pseudo registers may remain
            for inst in func.instructions():
                assert not any(reg.pseudo for reg in inst.defs() | inst.uses())

    def test_dormant_requiring_phase_rolls_back_assignment(self):
        # k is illegal before s, but attempt c on a function where c is
        # dormant: craft one by compiling the identity function and
        # running c once (second c must be dormant and not re-assign).
        func = compile_fn(SQUARE_SRC, "square")
        first = apply_phase(func, phase_by_id("c"))
        before = format_function(func)
        second = apply_phase(func, phase_by_id("c"))
        assert not second  # c ran to fixpoint the first time
        assert format_function(func) == before

    def test_dormant_attempt_never_changes_code(self):
        func = compile_fn(SQUARE_SRC, "square")
        before = format_function(func)
        flags = (func.reg_assigned, func.sel_applied, func.alloc_applied)
        # d and g are dormant on this function
        assert not apply_phase(func, phase_by_id("d"))
        assert not apply_phase(func, phase_by_id("g"))
        assert format_function(func) == before
        assert flags == (func.reg_assigned, func.sel_applied, func.alloc_applied)


class TestFlagTracking:
    def test_s_sets_sel_applied(self):
        func = compile_fn(GCD_SRC, "gcd")
        assert not func.sel_applied
        assert apply_phase(func, phase_by_id("s"))
        assert func.sel_applied

    def test_k_sets_alloc_applied(self):
        func = compile_fn(GCD_SRC, "gcd")
        apply_phase(func, phase_by_id("s"))
        assert apply_phase(func, phase_by_id("k"))
        assert func.alloc_applied

    def test_dormant_phase_does_not_set_flags(self):
        func = compile_fn(GCD_SRC, "gcd")
        # k illegal before s: dormant, flags untouched
        assert not apply_phase(func, phase_by_id("k"))
        assert not func.alloc_applied


class TestImplicitCleanup:
    def test_cleanup_runs_after_active_phases(self):
        # After branch chaining removes a hop, the implicit cleanup
        # must leave no empty non-entry blocks behind.
        func = compile_fn(GCD_SRC, "gcd")
        for phase_id in "sriubj":
            apply_phase(func, phase_by_id(phase_id))
        for i, block in enumerate(func.blocks):
            if i not in (0, len(func.blocks) - 1):
                assert block.insts, f"empty block {block.label} survived cleanup"


class TestFixpointProperty:
    def test_every_phase_dormant_immediately_after_active(self):
        func = compile_fn(GCD_SRC, "gcd")
        for phase_id in "bcdghijklnoqrsu" * 3:
            phase = phase_by_id(phase_id)
            if apply_phase(func, phase):
                assert not apply_phase(func, phase), phase_id

    def test_cleanup_exposed_opportunity_consumed_in_one_attempt(self):
        # Regression (found by hypothesis): reversing one branch made
        # the implicit cleanup delete an empty block, which exposed a
        # second reversible branch — r had to be active twice in a row.
        # apply_phase now iterates phase+cleanup to a joint fixpoint.
        source = """
        int f(int x, int y) {
            int a = x;
            a = 0;
            if (0 < (0 + 0)) {
                switch (a & 3) { case 0: a = 0; }
            }
            return a + y;
        }
        """
        func = compile_fn(source, "f")
        phase = phase_by_id("r")
        assert apply_phase(func, phase)
        assert not apply_phase(func, phase)
