"""Unit tests for strength reduction (phase q)."""

from hypothesis import given, strategies as st

from repro.ir.function import Function, Program
from repro.ir.instructions import Assign, Return
from repro.ir.operands import BinOp, Const, Reg
from repro.machine.target import DEFAULT_TARGET, RV
from repro.opt import phase_by_id
from repro.opt.strength_reduction import expand_multiply
from repro.vm import Interpreter

Q = phase_by_id("q")


def multiply_function(constant):
    """int f(x) { return x * constant; } with an explicit mul RTL."""
    func = Function("f", returns_value=True)
    block = func.add_block("L0")
    block.insts = [
        Assign(RV, BinOp("mul", Reg(1, pseudo=False), Const(constant))),
        Return(),
    ]
    return func


def run_multiply(func, x):
    program = Program()
    program.add_function(func)
    vm = Interpreter(program)
    # Seed the register the function reads.
    result = None

    # direct frame poke: execute with r1 preloaded via a wrapper frame
    from repro.vm.interpreter import _Frame

    frame = _Frame(0x40000)
    frame.regs[1] = x
    return vm._execute(func, frame)


class TestExpansion:
    def test_power_of_two_becomes_single_shift(self):
        func = multiply_function(8)
        assert Q.run(func, DEFAULT_TARGET)
        assert func.blocks[0].insts[0] == Assign(
            RV, BinOp("lsl", Reg(1, pseudo=False), Const(3))
        )

    def test_two_set_bits_use_shifted_add(self):
        func = multiply_function(10)  # 8 + 2
        assert Q.run(func, DEFAULT_TARGET)
        insts = func.blocks[0].insts
        assert len(insts) == 3  # shift, shifted-add, ret
        assert insts[1].src.op == "add"

    def test_multiply_by_zero(self):
        func = multiply_function(0)
        assert Q.run(func, DEFAULT_TARGET)
        assert func.blocks[0].insts[0] == Assign(RV, Const(0))

    def test_dense_constant_kept_as_multiply(self):
        func = multiply_function(0b1111)  # four set bits: too expensive
        assert not Q.run(func, DEFAULT_TARGET)

    def test_register_multiply_untouched(self):
        func = Function("f", returns_value=True)
        block = func.add_block("L0")
        block.insts = [
            Assign(RV, BinOp("mul", Reg(1, pseudo=False), Reg(2, pseudo=False))),
            Return(),
        ]
        assert not Q.run(func, DEFAULT_TARGET)

    def test_same_source_and_destination_skipped(self):
        func = Function("f", returns_value=True)
        block = func.add_block("L0")
        block.insts = [Assign(RV, BinOp("mul", RV, Const(8))), Return()]
        assert not Q.run(func, DEFAULT_TARGET)

    def test_expansion_instructions_are_legal(self):
        insts = expand_multiply(
            Reg(2, pseudo=False), Reg(1, pseudo=False), 10, DEFAULT_TARGET
        )
        assert all(DEFAULT_TARGET.is_legal(inst) for inst in insts)


@given(st.integers(-1024, 1024), st.integers(-(2**20), 2**20))
def test_expanded_sequence_computes_the_product(constant, x):
    func = multiply_function(constant)
    applied = Q.run(func, DEFAULT_TARGET)
    expected = _mask32(x * constant)
    assert run_multiply(func, x) == expected
    if applied:
        # when q fires, the mul is gone
        assert not any(
            isinstance(inst, Assign)
            and isinstance(inst.src, BinOp)
            and inst.src.op == "mul"
            for inst in func.blocks[0].insts
        )


def _mask32(value):
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value
