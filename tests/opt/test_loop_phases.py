"""Unit tests for the loop phases: l (transforms) and g (unrolling)."""

import pytest

from repro.analysis.loops import find_natural_loops
from repro.ir.instructions import Assign, Compare
from repro.ir.operands import BinOp, Const, Mem, Reg
from repro.machine.target import DEFAULT_TARGET
from repro.opt import apply_phase, phase_by_id
from repro.vm import Interpreter
from tests.conftest import SUM_ARRAY_SRC, apply_sequence, compile_prog

L = phase_by_id("l")
G = phase_by_id("g")

LICM_SRC = """
int a[50];
int f(int n) {
    int i;
    int total = 0;
    for (i = 0; i < 50; i++)
        total += a[i] * n;
    return total;
}
"""


def prepared(src, name, prefix="schs"):
    """Compile and run the standard prefix enabling the loop phases.

    The trailing "riu" cleans redundant control flow (reverse branches
    in particular makes top-tested loop blocks contiguous, which loop
    unrolling requires — the r-enables-g relation of the paper).
    """
    program = compile_prog(src)
    func = program.function(name)
    apply_sequence(func, prefix)
    apply_phase(func, phase_by_id("k"))
    apply_sequence(func, "schsriu")
    return program, func


class TestLegality:
    def test_illegal_before_register_allocation(self):
        program = compile_prog(SUM_ARRAY_SRC)
        func = program.function("sum_array")
        assert not L.applicable(func)
        assert not G.applicable(func)
        assert not apply_phase(func, L)
        assert not apply_phase(func, G)


class TestLoopTransformations:
    def test_active_on_loop_with_invariants(self):
        program, func = prepared(LICM_SRC, "f")
        assert apply_phase(func, L)

    def test_semantics_preserved(self):
        base = compile_prog(LICM_SRC)
        vm = Interpreter(base)
        for i in range(50):
            vm.store_global("a", i * i % 31, i)
        expected = vm.run("f", (7,)).value

        program, func = prepared(LICM_SRC, "f")
        apply_phase(func, L)
        apply_sequence(func, "schsu")
        vm2 = Interpreter(program)
        for i in range(50):
            vm2.store_global("a", i * i % 31, i)
        assert vm2.run("f", (7,)).value == expected

    def test_idempotent(self):
        program, func = prepared(LICM_SRC, "f")
        apply_phase(func, L)
        assert not apply_phase(func, L)

    def test_strength_reduction_removes_loop_multiply(self):
        # The i*4 array indexing multiply should be reduced to a
        # pointer-like increment (Figure 5 of the paper).
        program, func = prepared(SUM_ARRAY_SRC, "sum_array")
        muls_before = _loop_multiplies(func)
        if muls_before == 0:
            pytest.skip("multiply already folded by prior phases")
        assert apply_phase(func, L)
        assert _loop_multiplies(func) < muls_before

    def test_reduces_dynamic_instruction_count(self):
        base = compile_prog(SUM_ARRAY_SRC)
        vm = Interpreter(base)
        for i in range(100):
            vm.store_global("a", i, i)
        baseline = vm.run("sum_array")

        program, func = prepared(SUM_ARRAY_SRC, "sum_array")
        before_dyn = _run_sum(program)
        changed = apply_phase(func, L)
        apply_sequence(func, "shcs")
        after = _run_sum(program)
        assert after.value == baseline.value
        if changed:
            assert after.total_insts <= before_dyn.total_insts


def _loop_multiplies(func):
    loops = find_natural_loops(func)
    labels = set()
    for loop in loops:
        labels |= loop.body
    count = 0
    for block in func.blocks:
        if block.label not in labels:
            continue
        for inst in block.insts:
            if isinstance(inst, Assign):
                for node in inst.src.walk():
                    if isinstance(node, BinOp) and node.op == "mul":
                        count += 1
    return count


def _run_sum(program):
    vm = Interpreter(program)
    for i in range(100):
        vm.store_global("a", i, i)
    return vm.run("sum_array")


class TestLoopUnrolling:
    def test_unrolls_once_per_loop(self):
        program, func = prepared(SUM_ARRAY_SRC, "sum_array")
        size_before = func.num_instructions()
        assert apply_phase(func, G)
        assert func.num_instructions() > size_before
        assert not apply_phase(func, G)  # marked as unrolled

    def test_semantics_preserved(self):
        base = compile_prog(SUM_ARRAY_SRC)
        vm = Interpreter(base)
        for i in range(100):
            vm.store_global("a", 2 * i + 1, i)
        expected = vm.run("sum_array").value

        program, func = prepared(SUM_ARRAY_SRC, "sum_array")
        assert apply_phase(func, G)
        vm2 = Interpreter(program)
        for i in range(100):
            vm2.store_global("a", 2 * i + 1, i)
        assert vm2.run("sum_array").value == expected

    def test_reduces_dynamic_jumps(self):
        program, func = prepared(SUM_ARRAY_SRC, "sum_array")
        apply_sequence(func, "jbu")  # rotate first so unroll pays off
        before = _run_sum(program)
        if not apply_phase(func, G):
            pytest.skip("loop not unrollable in this shape")
        apply_sequence(func, "bu")
        after = _run_sum(program)
        assert after.value == before.value

    def test_oversized_loop_not_unrolled(self):
        big_src = (
            "int a[50];\nint f(void) {\n int i; int t = 0;\n"
            " for (i = 0; i < 50; i++) {\n"
            + "".join(f"  t += a[i] + {k};\n" for k in range(20))
            + " }\n return t;\n}\n"
        )
        program, func = prepared(big_src, "f")
        assert not apply_phase(func, G)

    def test_clone_keeps_unrolled_marker(self):
        program, func = prepared(SUM_ARRAY_SRC, "sum_array")
        apply_phase(func, G)
        clone = func.clone()
        assert clone.unrolled == func.unrolled
