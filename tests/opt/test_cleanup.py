"""Unit tests for the implicit merge/empty-block cleanup."""

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Assign, Compare, CondBranch, Jump, Return
from repro.ir.operands import Const, Reg
from repro.opt.cleanup import (
    implicit_cleanup,
    merge_fallthrough_blocks,
    remove_empty_blocks,
)


def labels(func):
    return [block.label for block in func.blocks]


class TestRemoveEmptyBlocks:
    def test_empty_block_removed_and_branches_retargeted(self):
        func = Function("f")
        a = func.add_block("a")
        empty = func.add_block("empty")
        c = func.add_block("c")
        a.insts = [Compare(Reg(1), Const(0)), CondBranch("eq", "empty")]
        c.insts = [Return()]
        assert remove_empty_blocks(func)
        assert labels(func) == ["a", "c"]
        assert a.insts[-1] == CondBranch("eq", "c")

    def test_chain_of_empty_blocks(self):
        func = Function("f")
        a = func.add_block("a")
        func.add_block("e1")
        func.add_block("e2")
        d = func.add_block("d")
        a.insts = [Jump("e1")]
        d.insts = [Return()]
        assert remove_empty_blocks(func)
        assert labels(func) == ["a", "d"]
        assert a.insts[-1] == Jump("d")

    def test_empty_entry_block_kept(self):
        func = Function("f")
        func.add_block("entry")
        exit_ = func.add_block("exit")
        exit_.insts = [Return()]
        assert not remove_empty_blocks(func)
        assert labels(func) == ["entry", "exit"]


class TestMergeFallthrough:
    def test_single_pred_fallthrough_merged(self):
        func = Function("f")
        a = func.add_block("a")
        b = func.add_block("b")
        a.insts = [Assign(Reg(1), Const(1))]
        b.insts = [Assign(Reg(2), Const(2)), Return()]
        assert merge_fallthrough_blocks(func)
        assert labels(func) == ["a"]
        assert len(func.blocks[0].insts) == 3

    def test_branch_target_not_merged(self):
        func = Function("f")
        a = func.add_block("a")
        b = func.add_block("b")
        c = func.add_block("c")
        a.insts = [Compare(Reg(1), Const(0)), CondBranch("eq", "c")]
        b.insts = [Assign(Reg(2), Const(2))]
        c.insts = [Return()]
        # c has two predecessors (a's branch, b's fallthrough): keep it.
        merge_fallthrough_blocks(func)
        assert "c" in labels(func)

    def test_jump_linked_blocks_not_merged(self):
        # That is block reordering's job (phase i), not cleanup's.
        func = Function("f")
        a = func.add_block("a")
        b = func.add_block("b")
        a.insts = [Jump("b")]
        b.insts = [Return()]
        assert not merge_fallthrough_blocks(func)
        assert labels(func) == ["a", "b"]


class TestImplicitCleanup:
    def test_runs_to_fixpoint(self):
        func = Function("f")
        a = func.add_block("a")
        func.add_block("empty")  # removing this enables the merge below
        c = func.add_block("c")
        a.insts = [Assign(Reg(1), Const(1))]
        c.insts = [Return()]
        assert implicit_cleanup(func)
        assert labels(func) == ["a"]
