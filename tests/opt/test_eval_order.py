"""Unit tests for evaluation order determination (phase o)."""

from repro.ir.function import Function, Program
from repro.ir.instructions import Assign, Call, Compare, CondBranch, Return
from repro.ir.operands import BinOp, Const, Mem, Reg
from repro.machine.target import DEFAULT_TARGET, FP, RV
from repro.opt import phase_by_id
from repro.vm import Interpreter

O = phase_by_id("o")


def interleaved_function():
    """Two independent chains interleaved so both temporaries are live
    simultaneously; scheduling one chain first frees its register."""
    func = Function("f", returns_value=True)
    t1, t2, t3, t4 = (Reg(i) for i in range(1, 5))
    block = func.add_block("L0")
    block.insts = [
        Assign(t1, Const(1)),
        Assign(t2, Const(2)),
        Assign(t3, BinOp("add", t1, Const(10))),
        Assign(t4, BinOp("add", t2, Const(20))),
        Assign(RV, BinOp("add", t3, t4)),
        Return(),
    ]
    return func


class TestScheduling:
    def test_reorders_to_reduce_pressure(self):
        func = interleaved_function()
        assert O.run(func, DEFAULT_TARGET)

    def test_idempotent(self):
        func = interleaved_function()
        O.run(func, DEFAULT_TARGET)
        assert not O.run(func, DEFAULT_TARGET)

    def test_semantics_preserved(self):
        for reorder in (False, True):
            func = interleaved_function()
            if reorder:
                O.run(func, DEFAULT_TARGET)
            program = Program()
            program.add_function(func)
            assert Interpreter(program).run("f").value == 33

    def test_illegal_after_register_assignment(self):
        func = interleaved_function()
        func.reg_assigned = True
        assert not O.applicable(func)

    def test_dependences_respected(self):
        # A store/load pair must not be reordered.
        func = Function("f", returns_value=True)
        func.add_local("x", 1, "int", False)
        t1 = Reg(1)
        block = func.add_block("L0")
        block.insts = [
            Assign(Mem(FP), Reg(0, pseudo=False)),
            Assign(t1, Mem(FP)),
            Assign(RV, t1),
            Return(),
        ]
        O.run(func, DEFAULT_TARGET)
        insts = block.insts
        store = next(i for i, x in enumerate(insts) if isinstance(x.dst, Mem)) if any(
            isinstance(x, Assign) and isinstance(x.dst, Mem) for x in insts
        ) else None
        load = next(
            i
            for i, x in enumerate(insts)
            if isinstance(x, Assign) and isinstance(x.dst, Reg) and x.dst == t1
        )
        assert store is not None and store < load

    def test_transfer_stays_last(self):
        func = Function("f", returns_value=True)
        block = func.add_block("L0")
        other = func.add_block("other")
        block.insts = [
            Assign(Reg(1), Const(1)),
            Compare(Reg(1), Const(0)),
            CondBranch("eq", "other"),
        ]
        other.insts = [Assign(RV, Const(0)), Return()]
        O.run(func, DEFAULT_TARGET)
        assert isinstance(block.insts[-1], CondBranch)

    def test_compare_branch_pairing_kept(self):
        func = Function("f", returns_value=True)
        block = func.add_block("L0")
        other = func.add_block("other")
        block.insts = [
            Compare(Reg(1), Const(0)),
            CondBranch("eq", "other"),
        ]
        other.insts = [Assign(RV, Const(0)), Return()]
        before = list(block.insts)
        O.run(func, DEFAULT_TARGET)
        assert block.insts == before
