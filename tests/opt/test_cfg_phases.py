"""Unit tests for the control-flow phases: b, d, i, r, u, j."""

from repro.ir.function import Function
from repro.ir.instructions import (
    Assign,
    Compare,
    CondBranch,
    Jump,
    Return,
)
from repro.ir.operands import BinOp, Const, Reg
from repro.machine.target import DEFAULT_TARGET, RV
from repro.opt import phase_by_id


def run_phase(func, phase_id):
    return phase_by_id(phase_id).run(func, DEFAULT_TARGET)


def labels(func):
    return [block.label for block in func.blocks]


class TestBranchChaining:
    def make_chain(self):
        func = Function("f")
        a = func.add_block("a")
        hop = func.add_block("hop")
        c = func.add_block("c")
        a.insts = [Jump("hop")]
        hop.insts = [Jump("c")]
        c.insts = [Return()]
        return func, a

    def test_jump_chain_collapsed(self):
        func, a = self.make_chain()
        assert run_phase(func, "b")
        assert a.insts[-1] == Jump("c")

    def test_intermediate_block_removed_when_unreachable(self):
        func, _a = self.make_chain()
        run_phase(func, "b")
        assert "hop" not in labels(func)

    def test_conditional_branch_retargeted(self):
        func = Function("f")
        a = func.add_block("a")
        fall = func.add_block("fall")
        hop = func.add_block("hop")
        c = func.add_block("c")
        a.insts = [Compare(Reg(1), Const(0)), CondBranch("eq", "hop")]
        fall.insts = [Return()]
        hop.insts = [Jump("c")]
        c.insts = [Return()]
        assert run_phase(func, "b")
        assert a.insts[-1] == CondBranch("eq", "c")

    def test_dormant_when_no_chains(self):
        func = Function("f")
        a = func.add_block("a")
        b = func.add_block("b")
        a.insts = [Assign(Reg(1), Const(1))]
        b.insts = [Return()]
        assert not run_phase(func, "b")

    def test_cyclic_chain_does_not_hang(self):
        func = Function("f")
        a = func.add_block("a")
        x = func.add_block("x")
        y = func.add_block("y")
        a.insts = [Jump("x")]
        x.insts = [Jump("y")]
        y.insts = [Jump("x")]
        run_phase(func, "b")  # must terminate


class TestRemoveUnreachable:
    def test_island_removed(self):
        func = Function("f")
        a = func.add_block("a")
        island = func.add_block("island")
        c = func.add_block("c")
        a.insts = [Jump("c")]
        island.insts = [Assign(Reg(1), Const(1)), Jump("c")]
        c.insts = [Return()]
        assert run_phase(func, "d")
        assert labels(func) == ["a", "c"]

    def test_dormant_when_all_reachable(self):
        func = Function("f")
        a = func.add_block("a")
        b = func.add_block("b")
        a.insts = [Jump("b")]
        b.insts = [Return()]
        assert not run_phase(func, "d")


class TestBlockReordering:
    def test_jump_to_next_block_deleted(self):
        func = Function("f")
        a = func.add_block("a")
        b = func.add_block("b")
        a.insts = [Jump("b")]
        b.insts = [Return()]
        assert run_phase(func, "i")
        assert a.terminator() is None

    def test_single_pred_target_moved(self):
        func = Function("f")
        a = func.add_block("a")
        mid = func.add_block("mid")
        target = func.add_block("target")
        a.insts = [Jump("target")]
        mid.insts = [Return()]
        target.insts = [Assign(RV, Const(1)), Return()]
        assert run_phase(func, "i")
        assert labels(func) == ["a", "target", "mid"]
        assert a.terminator() is None

    def test_moved_fallthrough_block_gets_explicit_jump(self):
        func = Function("f")
        a = func.add_block("a")
        mid = func.add_block("mid")
        target = func.add_block("target")
        tail = func.add_block("tail")
        a.insts = [Jump("target")]
        mid.insts = [Compare(Reg(1), Const(0)), CondBranch("eq", "target"), ]
        target.insts = [Assign(Reg(2), Const(1))]  # falls into tail
        tail.insts = [Return()]
        # target has two preds -> not movable; make mid jump elsewhere
        mid.insts = [Return()]
        assert run_phase(func, "i")
        # target moves up behind a (getting an explicit jump to tail),
        # then the cascade moves tail up behind target and deletes that
        # jump too: a -> target -> tail, all fallthrough.
        assert labels(func) == ["a", "target", "tail", "mid"]
        assert func.block("a").terminator() is None
        assert func.block("target").terminator() is None

    def test_multi_pred_target_not_moved(self):
        func = Function("f")
        a = func.add_block("a")
        b = func.add_block("b")
        t = func.add_block("t")
        a.insts = [Jump("t")]
        b.insts = [Jump("t")]
        t.insts = [Return()]
        # t is b's positional next: the jump in b is removed instead.
        assert run_phase(func, "i")
        assert b.terminator() is None
        assert a.insts == [Jump("t")]


class TestReverseBranches:
    def make(self):
        func = Function("f")
        a = func.add_block("a")
        over = func.add_block("over")
        near = func.add_block("near")
        far = func.add_block("far")
        a.insts = [Compare(Reg(1), Const(0)), CondBranch("lt", "near")]
        over.insts = [Jump("far")]
        near.insts = [Assign(RV, Const(1)), Return()]
        far.insts = [Assign(RV, Const(2)), Return()]
        return func, a

    def test_branch_reversed_and_jump_block_removed(self):
        func, a = self.make()
        assert run_phase(func, "r")
        assert a.insts[-1] == CondBranch("ge", "far")
        assert "over" not in labels(func)

    def test_jump_block_with_other_preds_kept(self):
        func, a = self.make()
        func.block("far").insts = [Jump("over")]
        assert not run_phase(func, "r")


class TestUselessJumps:
    def test_jump_to_next_removed(self):
        func = Function("f")
        a = func.add_block("a")
        b = func.add_block("b")
        a.insts = [Jump("b")]
        b.insts = [Return()]
        assert run_phase(func, "u")
        assert a.insts == []

    def test_branch_to_next_removed(self):
        func = Function("f")
        a = func.add_block("a")
        b = func.add_block("b")
        a.insts = [Compare(Reg(1), Const(0)), CondBranch("eq", "b")]
        b.insts = [Return()]
        assert run_phase(func, "u")
        assert a.insts == [Compare(Reg(1), Const(0))]

    def test_real_jump_kept(self):
        func = Function("f")
        a = func.add_block("a")
        b = func.add_block("b")
        c = func.add_block("c")
        a.insts = [Jump("c")]
        b.insts = [Return()]
        c.insts = [Return()]
        assert not run_phase(func, "u")


class TestMinimizeLoopJumps:
    def make_while_loop(self):
        """entry -> head(test, exits to out) -> body -> jump head."""
        func = Function("f", returns_value=True)
        entry = func.add_block("entry")
        head = func.add_block("head")
        body = func.add_block("body")
        out = func.add_block("out")
        entry.insts = [Assign(Reg(1, pseudo=False), Const(0))]
        head.insts = [
            Compare(Reg(1, pseudo=False), Const(10)),
            CondBranch("ge", "out"),
        ]
        body.insts = [
            Assign(Reg(1, pseudo=False), BinOp("add", Reg(1, pseudo=False), Const(1))),
            Jump("head"),
        ]
        out.insts = [Assign(RV, Reg(1, pseudo=False)), Return()]
        return func

    def test_loop_rotated(self):
        func = self.make_while_loop()
        assert run_phase(func, "j")
        body = func.block("body")
        # The latch now ends with the duplicated, inverted test.
        assert body.insts[-1] == CondBranch("lt", "body")
        assert Compare(Reg(1, pseudo=False), Const(10)) in body.insts

    def test_dormant_after_rotation(self):
        func = self.make_while_loop()
        run_phase(func, "j")
        assert not run_phase(func, "j")

    def test_semantics_preserved(self):
        from repro.ir.function import Program
        from repro.vm import Interpreter

        for rotate in (False, True):
            func = self.make_while_loop()
            if rotate:
                assert run_phase(func, "j")
            program = Program()
            program.add_function(func)
            assert Interpreter(program).run("f").value == 10

    def test_dormant_without_loops(self):
        func = Function("f")
        a = func.add_block("a")
        a.insts = [Return()]
        assert not run_phase(func, "j")
