"""Unit tests for dead assignment elimination (phase h)."""

from repro.ir.function import Function
from repro.ir.instructions import Assign, Call, Compare, CondBranch, Jump, Return
from repro.ir.operands import BinOp, Const, Mem, Reg
from repro.machine.target import DEFAULT_TARGET, FP, RV
from repro.opt import phase_by_id

H = phase_by_id("h")


def one_block(insts, returns_value=True, locals_spec=("x",)):
    func = Function("f", returns_value=returns_value)
    for name in locals_spec:
        func.add_local(name, 1, "int", False)
    block = func.add_block("L0")
    block.insts = list(insts) + [Return()]
    return func


class TestDeadRegisters:
    def test_unused_assignment_removed(self):
        func = one_block([Assign(Reg(1), Const(5)), Assign(RV, Const(0))])
        assert H.run(func, DEFAULT_TARGET)
        assert Assign(Reg(1), Const(5)) not in func.blocks[0].insts

    def test_chain_of_dead_assignments_removed(self):
        func = one_block(
            [
                Assign(Reg(1), Const(5)),
                Assign(Reg(2), BinOp("add", Reg(1), Const(1))),
                Assign(RV, Const(0)),
            ]
        )
        assert H.run(func, DEFAULT_TARGET)
        assert len(func.blocks[0].insts) == 2  # rv= and RET

    def test_live_value_kept(self):
        func = one_block([Assign(Reg(1), Const(5)), Assign(RV, Reg(1))])
        assert not H.run(func, DEFAULT_TARGET)

    def test_return_value_live_for_returning_function(self):
        func = one_block([Assign(RV, Const(1))])
        assert not H.run(func, DEFAULT_TARGET)

    def test_return_value_dead_in_void_function(self):
        func = one_block([Assign(RV, Const(1))], returns_value=False)
        assert H.run(func, DEFAULT_TARGET)

    def test_overwritten_value_removed(self):
        func = one_block([Assign(RV, Const(1)), Assign(RV, Const(2))])
        assert H.run(func, DEFAULT_TARGET)
        assert func.blocks[0].insts[0] == Assign(RV, Const(2))

    def test_dead_load_removed(self):
        func = one_block([Assign(Reg(1), Mem(FP)), Assign(RV, Const(0))])
        assert H.run(func, DEFAULT_TARGET)

    def test_argument_setup_before_call_kept(self):
        func = one_block([Assign(Reg(0, pseudo=False), Const(1)), Call("g", 1)])
        assert not H.run(func, DEFAULT_TARGET)

    def test_clobbered_argument_register_removed(self):
        # r1 set but the call takes only one argument: r1 is clobbered.
        func = one_block([Assign(Reg(1, pseudo=False), Const(1)), Call("g", 1)])
        assert H.run(func, DEFAULT_TARGET)


class TestDeadCompares:
    def test_compare_without_branch_removed(self):
        func = one_block([Compare(Reg(1), Const(0)), Assign(RV, Const(0))])
        assert H.run(func, DEFAULT_TARGET)
        assert Compare(Reg(1), Const(0)) not in func.blocks[0].insts

    def test_compare_feeding_branch_kept(self):
        func = Function("f", returns_value=True)
        a = func.add_block("a")
        b = func.add_block("b")
        a.insts = [Compare(Reg(1, pseudo=False), Const(0)), CondBranch("eq", "b")]
        b.insts = [Assign(RV, Const(0)), Return()]
        assert not H.run(func, DEFAULT_TARGET)

    def test_shadowed_compare_removed(self):
        func = Function("f", returns_value=True)
        a = func.add_block("a")
        b = func.add_block("b")
        a.insts = [
            Compare(Reg(1, pseudo=False), Const(0)),  # overwritten below
            Compare(Reg(2, pseudo=False), Const(0)),
            CondBranch("eq", "b"),
        ]
        b.insts = [Assign(RV, Const(0)), Return()]
        assert H.run(func, DEFAULT_TARGET)
        assert len(a.insts) == 2


class TestDeadStores:
    def test_store_never_loaded_removed(self):
        func = one_block(
            [Assign(Mem(FP), Reg(1, pseudo=False)), Assign(RV, Const(0))]
        )
        assert H.run(func, DEFAULT_TARGET)
        assert len(func.blocks[0].insts) == 2

    def test_store_loaded_later_kept(self):
        func = one_block(
            [Assign(Mem(FP), Reg(1, pseudo=False)), Assign(RV, Mem(FP))]
        )
        assert not H.run(func, DEFAULT_TARGET)

    def test_store_read_through_address_register_kept(self):
        addr = Reg(5)
        func = one_block(
            [
                Assign(Mem(FP), Reg(1, pseudo=False)),
                Assign(addr, FP),
                Assign(RV, Mem(addr)),
            ]
        )
        assert not H.run(func, DEFAULT_TARGET)

    def test_array_store_never_removed(self):
        # A store through a computed (non-slot) address must stay.
        base, addr = Reg(5), Reg(6)
        func = one_block(
            [
                Assign(base, BinOp("add", FP, Const(4))),
                Assign(addr, BinOp("add", base, Reg(2, pseudo=False))),
                Assign(Mem(addr), Reg(1, pseudo=False)),
                Assign(RV, Const(0)),
            ],
            locals_spec=(),
        )
        func.add_local("arr", 4, "int", True)
        assert not any(
            isinstance(inst, Assign)
            and isinstance(inst.dst, Mem)
            and inst not in func.blocks[0].insts
            for inst in list(func.blocks[0].insts)
        )
        H.run(func, DEFAULT_TARGET)
        stores = [
            inst
            for inst in func.blocks[0].insts
            if isinstance(inst, Assign) and isinstance(inst.dst, Mem)
        ]
        assert len(stores) == 1

    def test_store_live_across_blocks_kept(self):
        func = Function("f", returns_value=True)
        func.add_local("x", 1, "int", False)
        a = func.add_block("a")
        b = func.add_block("b")
        a.insts = [Assign(Mem(FP), Reg(1, pseudo=False))]
        b.insts = [Assign(RV, Mem(FP)), Return()]
        assert not H.run(func, DEFAULT_TARGET)
