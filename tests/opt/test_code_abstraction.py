"""Unit tests for code abstraction (phase n): cross-jump and hoist."""

from repro.ir.function import Function
from repro.ir.instructions import Assign, Compare, CondBranch, Jump, Return
from repro.ir.operands import BinOp, Const, Reg
from repro.machine.target import DEFAULT_TARGET, RV
from repro.opt import phase_by_id

N = phase_by_id("n")
R = lambda i: Reg(i, pseudo=False)


def diamond(then_insts, else_insts, join_insts=None):
    func = Function("f", returns_value=True)
    entry = func.add_block("entry")
    then = func.add_block("then")
    else_ = func.add_block("else_")
    join = func.add_block("join")
    entry.insts = [Compare(R(1), Const(0)), CondBranch("eq", "else_")]
    then.insts = list(then_insts) + [Jump("join")]
    else_.insts = list(else_insts)
    join.insts = list(join_insts or []) + [Assign(RV, R(2)), Return()]
    return func


class TestCrossJumping:
    def test_common_suffix_moved_to_join(self):
        shared = [Assign(R(2), BinOp("add", R(3), Const(1)))]
        func = diamond(
            [Assign(R(3), Const(1))] + shared,
            [Assign(R(3), Const(2))] + shared,
        )
        assert N.run(func, DEFAULT_TARGET)
        join = func.block("join")
        assert join.insts[0] == shared[0]
        assert shared[0] not in func.block("then").insts
        assert shared[0] not in func.block("else_").insts

    def test_differing_suffixes_untouched(self):
        func = diamond(
            [Assign(R(2), Const(1))],
            [Assign(R(2), Const(2))],
        )
        assert not N.run(func, DEFAULT_TARGET)

    def test_conditional_predecessor_blocks_cross_jump(self):
        # A predecessor reaching the join via a conditional branch
        # cannot contribute its suffix.
        func = Function("f", returns_value=True)
        entry = func.add_block("entry")
        other = func.add_block("other")
        join = func.add_block("join")
        shared = Assign(R(2), Const(7))
        entry.insts = [shared, Compare(R(1), Const(0)), CondBranch("eq", "join")]
        other.insts = [shared]
        join.insts = [Assign(RV, R(2)), Return()]
        assert not N.run(func, DEFAULT_TARGET)

    def test_semantics_preserved(self):
        from repro.ir.function import Program
        from repro.vm import Interpreter
        from repro.vm.interpreter import _Frame

        shared = [Assign(R(2), BinOp("add", R(3), Const(10)))]
        for transform in (False, True):
            func = diamond(
                [Assign(R(3), Const(1))] + shared,
                [Assign(R(3), Const(2))] + shared,
            )
            if transform:
                assert N.run(func, DEFAULT_TARGET)
            program = Program()
            program.add_function(func)
            for r1 in (0, 1):
                vm = Interpreter(program)
                frame = _Frame(0x40000)
                frame.regs[1] = r1
                expected = 12 if r1 == 0 else 11
                assert vm._execute(func, frame) == expected


class TestHoisting:
    def make(self, taken_first, fall_first):
        func = Function("f", returns_value=True)
        entry = func.add_block("entry")
        fall = func.add_block("fall")
        taken = func.add_block("taken")
        entry.insts = [Compare(R(1), Const(0)), CondBranch("eq", "taken")]
        fall.insts = [fall_first, Assign(RV, Const(1)), Return()]
        taken.insts = [taken_first, Assign(RV, Const(2)), Return()]
        return func

    def test_identical_first_instruction_hoisted(self):
        shared = Assign(R(5), BinOp("add", R(6), Const(1)))
        func = self.make(shared, shared)
        assert N.run(func, DEFAULT_TARGET)
        entry = func.block("entry")
        # inserted between the compare and the branch
        assert entry.insts[1] == shared
        assert shared not in func.block("fall").insts
        assert shared not in func.block("taken").insts

    def test_compare_never_hoisted(self):
        shared = Compare(R(5), Const(3))
        func = self.make(shared, shared)
        func.block("fall").insts.insert(1, CondBranch("lt", "taken"))
        # would clobber the branch's condition code
        assert not N.run(func, DEFAULT_TARGET)

    def test_different_first_instructions_untouched(self):
        func = self.make(Assign(R(5), Const(1)), Assign(R(5), Const(2)))
        assert not N.run(func, DEFAULT_TARGET)

    def test_successor_with_extra_predecessor_blocks_hoist(self):
        shared = Assign(R(5), Const(1))
        func = self.make(shared, shared)
        func.add_block("extra").insts = [Jump("taken")]
        func.blocks[-1], func.blocks[-2] = func.blocks[-2], func.blocks[-1]
        # rebuild positions: ensure extra jumps into taken
        assert not N.run(func, DEFAULT_TARGET)
