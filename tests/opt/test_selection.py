"""Unit tests for instruction selection (phase s)."""

from repro.ir.function import Function
from repro.ir.instructions import Assign, Call, Compare, Return
from repro.ir.operands import BinOp, Const, Mem, Reg, Sym
from repro.machine.target import DEFAULT_TARGET, FP, RV
from repro.opt import phase_by_id
from repro.opt.instruction_selection import count_register_uses

S = phase_by_id("s")


def one_block(insts, returns_value=True):
    func = Function("f", returns_value=returns_value)
    block = func.add_block("L0")
    block.insts = list(insts) + [Return()]
    return func


class TestCombining:
    def test_address_computation_folds_into_load(self):
        t1 = Reg(1)
        func = one_block(
            [
                Assign(t1, BinOp("add", FP, Const(8))),
                Assign(RV, Mem(t1)),
            ]
        )
        assert S.run(func, DEFAULT_TARGET)
        assert func.blocks[0].insts[0] == Assign(RV, Mem(BinOp("add", FP, Const(8))))

    def test_copy_collapsed(self):
        t1 = Reg(1)
        func = one_block(
            [Assign(t1, Reg(2, pseudo=False)), Assign(RV, BinOp("add", t1, Const(1)))]
        )
        assert S.run(func, DEFAULT_TARGET)
        assert func.blocks[0].insts[0] == Assign(
            RV, BinOp("add", Reg(2, pseudo=False), Const(1))
        )

    def test_triple_combination_via_fixpoint(self):
        t1, t2 = Reg(1), Reg(2)
        func = one_block(
            [
                Assign(t1, FP),
                Assign(t2, BinOp("add", t1, Const(8))),
                Assign(RV, Mem(t2)),
            ]
        )
        assert S.run(func, DEFAULT_TARGET)
        assert len(func.blocks[0].insts) == 2

    def test_constant_load_folds_into_compare(self):
        t1 = Reg(1)
        func = one_block([Assign(t1, Const(1000)), Compare(Reg(2), t1)])
        assert S.run(func, DEFAULT_TARGET)
        assert Compare(Reg(2), Const(1000)) in func.blocks[0].insts

    def test_illegal_combination_rejected(self):
        # HI + LO cannot merge: the result is not one legal instruction.
        t1 = Reg(1)
        func = one_block(
            [
                Assign(t1, Sym("g", "hi")),
                Assign(RV, BinOp("add", t1, Sym("g", "lo"))),
            ]
        )
        assert not S.run(func, DEFAULT_TARGET)

    def test_multiple_uses_not_combined(self):
        t1 = Reg(1)
        func = one_block(
            [
                Assign(t1, BinOp("add", FP, Const(8))),
                Assign(Reg(2), Mem(t1)),
                Assign(RV, Mem(t1)),
            ]
        )
        assert not S.run(func, DEFAULT_TARGET)

    def test_operand_redefined_between_blocks_combination(self):
        t1 = Reg(1)
        r2 = Reg(2, pseudo=False)
        func = one_block(
            [
                Assign(t1, BinOp("add", r2, Const(1))),
                Assign(r2, Const(0)),  # redefines the operand
                Assign(RV, t1),
            ]
        )
        changed = S.run(func, DEFAULT_TARGET)
        # rv = r2 + 1 would be wrong; the only admissible change is none.
        assert not changed

    def test_memory_write_blocks_load_forwarding(self):
        t1 = Reg(1)
        func = one_block(
            [
                Assign(t1, Mem(FP)),
                Assign(Mem(BinOp("add", FP, Const(4))), Reg(2, pseudo=False)),
                Assign(RV, BinOp("add", t1, Const(0))),
            ]
        )
        before = list(func.blocks[0].insts)
        S.run(func, DEFAULT_TARGET)
        # the load must not move past the store textually; it may still
        # fold "t1+0" but t1's load must remain intact
        assert before[0] in func.blocks[0].insts

    def test_call_blocks_combination(self):
        t1 = Reg(1)
        func = one_block(
            [
                Assign(t1, Mem(FP)),
                Call("g", 0),
                Assign(RV, BinOp("add", t1, Const(1))),
            ]
        )
        assert not S.run(func, DEFAULT_TARGET)

    def test_use_by_call_not_absorbed(self):
        func = one_block(
            [Assign(Reg(0, pseudo=False), Const(3)), Call("g", 1)]
        )
        assert not S.run(func, DEFAULT_TARGET)


class TestFolding:
    def test_standalone_constant_folding(self):
        func = one_block([Assign(RV, BinOp("add", Const(2), Const(3)))])
        assert S.run(func, DEFAULT_TARGET)
        assert func.blocks[0].insts[0] == Assign(RV, Const(5))

    def test_folding_respects_legality(self):
        # 1 << 20 exceeds the immediate limit; the fold must not commit.
        func = one_block([Assign(RV, BinOp("lsl", Const(1), Const(20)))])
        assert not S.run(func, DEFAULT_TARGET)

    def test_fold_after_substitution(self):
        t1 = Reg(1)
        func = one_block(
            [Assign(t1, Const(4)), Assign(RV, BinOp("mul", Reg(2), t1))]
        )
        assert S.run(func, DEFAULT_TARGET)
        assert func.blocks[0].insts[0] == Assign(RV, BinOp("mul", Reg(2), Const(4)))


class TestUseCounting:
    def test_counts_expression_occurrences(self):
        func = one_block(
            [Assign(RV, BinOp("add", Reg(1), Reg(1))), Assign(Reg(2), Reg(1))]
        )
        counts = count_register_uses(func)
        assert counts[Reg(1)] == 3

    def test_counts_implicit_uses(self):
        func = one_block([Call("g", 2)], returns_value=True)
        counts = count_register_uses(func)
        assert counts[Reg(0, pseudo=False)] == 2  # call arg + return
        assert counts[Reg(1, pseudo=False)] == 1
