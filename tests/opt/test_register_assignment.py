"""Unit tests for the compulsory register assignment."""

import pytest

from repro.ir.function import Function, Program
from repro.ir.instructions import Assign, Call, Return
from repro.ir.operands import BinOp, Const, Reg
from repro.machine.target import ALLOCATABLE, DEFAULT_TARGET, RV
from repro.opt.register_assignment import assign_registers
from repro.vm import Interpreter
from tests.conftest import GCD_SRC, SUM_ARRAY_SRC, compile_fn, compile_prog


def all_registers(func):
    regs = set()
    for inst in func.instructions():
        regs |= inst.defs() | inst.uses()
    return regs


class TestAssignment:
    def test_no_pseudos_remain(self, sum_array_func):
        assign_registers(sum_array_func, DEFAULT_TARGET)
        assert not any(reg.pseudo for reg in all_registers(sum_array_func))
        assert sum_array_func.reg_assigned

    def test_only_allocatable_registers_used(self, gcd_func):
        before = {reg for reg in all_registers(gcd_func) if not reg.pseudo}
        assign_registers(gcd_func, DEFAULT_TARGET)
        new_regs = {
            reg for reg in all_registers(gcd_func) if not reg.pseudo
        } - before
        assert all(reg.index in ALLOCATABLE for reg in new_regs)

    def test_interfering_values_get_distinct_registers(self):
        func = Function("f", returns_value=True)
        t1, t2 = func.new_reg(), func.new_reg()
        block = func.add_block("L0")
        block.insts = [
            Assign(t1, Const(1)),
            Assign(t2, Const(2)),
            Assign(RV, BinOp("add", t1, t2)),
            Return(),
        ]
        assign_registers(func, DEFAULT_TARGET)
        first, second = block.insts[0].dst, block.insts[1].dst
        assert first != second

    def test_value_live_across_call_avoids_caller_saved(self):
        func = Function("f", returns_value=True)
        t1 = func.new_reg()
        block = func.add_block("L0")
        block.insts = [
            Assign(t1, Const(42)),
            Call("g", 0),
            Assign(RV, t1),
            Return(),
        ]
        assign_registers(func, DEFAULT_TARGET)
        assigned = block.insts[0].dst
        assert assigned.index not in range(4)

    def test_semantics_preserved(self):
        program = compile_prog(SUM_ARRAY_SRC)
        func = program.function("sum_array")
        vm = Interpreter(program)
        for i in range(100):
            vm.store_global("a", i, i)
        base = vm.run("sum_array").value

        program2 = compile_prog(SUM_ARRAY_SRC)
        assign_registers(program2.function("sum_array"), DEFAULT_TARGET)
        vm2 = Interpreter(program2)
        for i in range(100):
            vm2.store_global("a", i, i)
        assert vm2.run("sum_array").value == base

    def test_spilling_handles_extreme_pressure(self):
        # 20 simultaneously live values exceed the 13 allocatable
        # registers; assignment must spill and stay correct.
        func = Function("f", returns_value=True)
        temps = [func.new_reg() for _ in range(20)]
        block = func.add_block("L0")
        for i, temp in enumerate(temps):
            block.insts.append(Assign(temp, Const(i)))
        acc = func.new_reg()
        block.insts.append(Assign(acc, Const(0)))
        for temp in temps:
            new_acc = func.new_reg()
            block.insts.append(Assign(new_acc, BinOp("add", acc, temp)))
            acc = new_acc
        block.insts.append(Assign(RV, acc))
        block.insts.append(Return())
        # force all 20 to be live at once by summing in reverse order
        assign_registers(func, DEFAULT_TARGET)
        assert not any(reg.pseudo for reg in all_registers(func))
        program = Program()
        program.add_function(func)
        assert Interpreter(program).run("f").value == sum(range(20))
