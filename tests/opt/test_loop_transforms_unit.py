"""Focused unit tests for loop transformation internals (phase l)."""

from repro.analysis.loops import find_natural_loops
from repro.ir.function import Function, Program
from repro.ir.instructions import Assign, Compare, CondBranch, Jump, Return
from repro.ir.operands import BinOp, Const, Mem, Reg
from repro.machine.target import DEFAULT_TARGET, RV
from repro.opt import phase_by_id
from repro.opt.loop_transforms import ensure_preheader
from repro.vm import Interpreter

L = phase_by_id("l")
R = lambda i: Reg(i, pseudo=False)


def counting_loop(extra_body=(), bound=10):
    """r1 counts 0..bound; r2 accumulates; post-allocation shape."""
    func = Function("f", returns_value=True)
    func.reg_assigned = True
    func.sel_applied = True
    func.alloc_applied = True
    entry = func.add_block("entry")
    head = func.add_block("head")
    body = func.add_block("body")
    exit_ = func.add_block("exit")
    entry.insts = [Assign(R(1), Const(0)), Assign(R(2), Const(0))]
    head.insts = [Compare(R(1), Const(bound)), CondBranch("ge", "exit")]
    body.insts = list(extra_body) + [
        Assign(R(2), BinOp("add", R(2), R(1))),
        Assign(R(1), BinOp("add", R(1), Const(1))),
        Jump("head"),
    ]
    exit_.insts = [Assign(RV, R(2)), Return()]
    return func


def execute(func):
    program = Program()
    program.add_function(func)
    return Interpreter(program).run("f").value


class TestEnsurePreheader:
    def test_existing_sole_predecessor_reused(self):
        func = counting_loop()
        (loop,) = find_natural_loops(func)
        preheader = ensure_preheader(func, loop)
        assert preheader.label == "entry"
        assert len(func.blocks) == 4  # nothing created

    def test_created_when_entry_has_other_successors(self):
        func = counting_loop()
        # make entry conditional: it may skip the loop entirely
        entry = func.block("entry")
        entry.insts += [Compare(R(1), Const(0)), CondBranch("lt", "exit")]
        (loop,) = find_natural_loops(func)
        before = len(func.blocks)
        preheader = ensure_preheader(func, loop)
        assert len(func.blocks) == before + 1
        # the preheader falls through to the header
        index = func.block_index(preheader.label)
        assert func.blocks[index + 1].label == "head"
        assert execute(func) == sum(range(10))


class TestLicm:
    def test_invariant_moved_to_preheader(self):
        invariant = Assign(R(5), BinOp("add", R(6), Const(12)))
        func = counting_loop(extra_body=[invariant])
        assert L.run(func, DEFAULT_TARGET)
        (loop,) = find_natural_loops(func)
        for label in loop.body:
            assert invariant not in func.block(label).insts

    def test_semantics_preserved_after_licm(self):
        invariant = Assign(R(5), BinOp("add", R(6), Const(12)))
        plain = counting_loop(extra_body=[invariant])
        moved = counting_loop(extra_body=[invariant])
        L.run(moved, DEFAULT_TARGET)
        assert execute(plain) == execute(moved)

    def test_division_never_speculated(self):
        # r6 is 0 at runtime; hoisting r5 = 1/r6 out of a zero-trip
        # loop would trap where the original never divides.
        trap = Assign(R(5), BinOp("div", Const(1), R(6)))
        func = counting_loop(extra_body=[trap], bound=0)
        L.run(func, DEFAULT_TARGET)
        (loop,) = find_natural_loops(func)
        in_loop = any(trap in func.block(label).insts for label in loop.body)
        assert in_loop  # still inside; zero-trip loop never executes it
        assert execute(func) == 0

    def test_loads_not_moved_past_stores(self):
        load = Assign(R(5), Mem(R(7)))
        store = Assign(Mem(R(8)), R(2))
        func = counting_loop(extra_body=[load, store])
        L.run(func, DEFAULT_TARGET)
        (loop,) = find_natural_loops(func)
        assert any(load in func.block(label).insts for label in loop.body)


class TestStrengthReduction:
    def make_scaled_loop(self):
        """body computes r3 = r1 * 4 each iteration."""
        scaled = Assign(R(3), BinOp("mul", R(1), Const(4)))
        use = Assign(R(2), BinOp("add", R(2), R(3)))
        func = Function("f", returns_value=True)
        func.reg_assigned = True
        func.sel_applied = True
        func.alloc_applied = True
        entry = func.add_block("entry")
        head = func.add_block("head")
        body = func.add_block("body")
        exit_ = func.add_block("exit")
        entry.insts = [Assign(R(1), Const(0)), Assign(R(2), Const(0))]
        head.insts = [Compare(R(1), Const(10)), CondBranch("ge", "exit")]
        body.insts = [
            scaled,
            use,
            Assign(R(1), BinOp("add", R(1), Const(1))),
            Jump("head"),
        ]
        exit_.insts = [Assign(RV, R(2)), Return()]
        return func, scaled

    def test_multiply_reduced_to_increment(self):
        func, scaled = self.make_scaled_loop()
        assert L.run(func, DEFAULT_TARGET)
        (loop,) = find_natural_loops(func)
        for label in loop.body:
            for inst in func.block(label).insts:
                if isinstance(inst, Assign):
                    assert not (
                        isinstance(inst.src, BinOp) and inst.src.op == "mul"
                    ), "multiply survived strength reduction"

    def test_semantics_after_reduction(self):
        func, _scaled = self.make_scaled_loop()
        plain_value = execute(self.make_scaled_loop()[0])
        L.run(func, DEFAULT_TARGET)
        assert execute(func) == plain_value == sum(4 * i for i in range(10))

    def test_iv_elimination_rewrites_compare(self):
        func, _scaled = self.make_scaled_loop()
        L.run(func, DEFAULT_TARGET)
        # after reduction + elimination the loop compare no longer
        # mentions r1 (the original induction variable)
        (loop,) = find_natural_loops(func)
        compares = [
            inst
            for label in loop.body
            for inst in func.block(label).insts
            if isinstance(inst, Compare)
        ]
        assert compares
        assert all(R(1) not in inst.uses() for inst in compares)
