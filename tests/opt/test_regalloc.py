"""Unit tests for register allocation (phase k)."""

from repro.ir.instructions import Assign
from repro.ir.operands import Mem, Reg
from repro.machine.target import DEFAULT_TARGET
from repro.opt import apply_phase, phase_by_id
from repro.vm import Interpreter
from tests.conftest import GCD_SRC, SUM_ARRAY_SRC, apply_sequence, compile_prog

K = phase_by_id("k")
S = phase_by_id("s")


def memory_access_count(func):
    return sum(
        1
        for inst in func.instructions()
        if inst.reads_memory() or inst.writes_memory()
    )


class TestLegality:
    def test_illegal_before_instruction_selection(self):
        program = compile_prog(GCD_SRC)
        func = program.function("gcd")
        assert not K.applicable(func)
        assert not apply_phase(func, K)

    def test_legal_after_instruction_selection(self):
        program = compile_prog(GCD_SRC)
        func = program.function("gcd")
        assert apply_phase(func, S)
        assert K.applicable(func)


class TestAllocation:
    def test_promotes_scalar_slots_to_registers(self):
        program = compile_prog(GCD_SRC)
        func = program.function("gcd")
        apply_phase(func, S)
        before = memory_access_count(func)
        assert apply_phase(func, K)
        assert func.alloc_applied
        assert memory_access_count(func) < before

    def test_creates_register_moves_for_selection(self):
        # k's rewrites are moves that s then collapses (the paper's
        # k-enables-s relation).
        program = compile_prog(GCD_SRC)
        func = program.function("gcd")
        apply_phase(func, S)
        assert not apply_phase(func, S)  # s at fixpoint
        apply_phase(func, K)
        assert apply_phase(func, S)  # k re-enabled s

    def test_dormant_second_time(self):
        program = compile_prog(GCD_SRC)
        func = program.function("gcd")
        apply_phase(func, S)
        assert apply_phase(func, K)
        assert not apply_phase(func, K)

    def test_semantics_preserved(self):
        base = compile_prog(GCD_SRC)
        expected = Interpreter(base).run("gcd", (252, 105)).value
        assert expected == 21
        program = compile_prog(GCD_SRC)
        func = program.function("gcd")
        apply_sequence(func, "sks")
        assert Interpreter(program).run("gcd", (252, 105)).value == 21

    def test_array_slots_never_promoted(self):
        src = """
        int f(int n) {
            int tmp[4];
            int i;
            int s = 0;
            for (i = 0; i < 4; i++) tmp[i] = n + i;
            for (i = 0; i < 4; i++) s += tmp[i];
            return s;
        }
        """
        program = compile_prog(src)
        func = program.function("f")
        apply_sequence(func, "scs")
        apply_phase(func, K)
        # array accesses remain memory accesses
        assert memory_access_count(func) > 0
        assert Interpreter(program).run("f", (10,)).value == 46

    def test_allocation_on_sum_array_matches_semantics(self):
        base = compile_prog(SUM_ARRAY_SRC)
        vm = Interpreter(base)
        for i in range(100):
            vm.store_global("a", 3 * i, i)
        expected = vm.run("sum_array").value

        program = compile_prog(SUM_ARRAY_SRC)
        func = program.function("sum_array")
        apply_sequence(func, "schkshc")
        vm2 = Interpreter(program)
        for i in range(100):
            vm2.store_global("a", 3 * i, i)
        assert vm2.run("sum_array").value == expected


class TestDeadStoreInterference:
    """Regression: a dead store into a colored slot still physically
    writes the slot's register, so a written slot must interfere with
    everything live across the store — even when the stored value is
    never read (it is overwritten first)."""

    SRC = """
int f(int x, int y) {
    int a = x;
    int b = y;
    int c = 1;
    b = x;
    return a + b * 3 + c * 7;
}
"""

    def test_dead_store_does_not_clobber_live_slot(self):
        program = compile_prog(self.SRC)
        func = program.function("f")
        reference = [
            Interpreter(compile_prog(self.SRC)).run("f", vector).value
            for vector in [(2, 3), (0, 0), (1, 1), (-5, 7)]
        ]
        apply_phase(func, S)
        assert apply_phase(func, K)
        values = [
            Interpreter(program).run("f", vector).value
            for vector in [(2, 3), (0, 0), (1, 1), (-5, 7)]
        ]
        assert values == reference

    def test_written_slots_interfere_with_live_slots(self):
        # The dead store to b and the still-live a must not share a
        # register: walk the coloring and assert the rewritten moves
        # never write a register that carries another slot's live value.
        program = compile_prog(self.SRC)
        func = program.function("f")
        apply_phase(func, S)
        from repro.analysis.cache import slot_liveness_of
        from repro.opt.regalloc import RegisterAllocation
        from repro.analysis.cache import liveness_of

        slot_liveness = slot_liveness_of(func)
        candidates = RegisterAllocation._referenced_slots(
            func, slot_liveness.frame_refs
        )
        forbidden, slot_edges = RegisterAllocation._interference(
            func, candidates, liveness_of(func), slot_liveness
        )
        coloring = RegisterAllocation._color(candidates, forbidden, slot_edges)
        for offset, reg in coloring.items():
            for other in slot_edges[offset]:
                other_reg = coloring.get(other)
                assert other_reg is None or other_reg.index != reg.index
