"""Unit tests for register allocation (phase k)."""

from repro.ir.instructions import Assign
from repro.ir.operands import Mem, Reg
from repro.machine.target import DEFAULT_TARGET
from repro.opt import apply_phase, phase_by_id
from repro.vm import Interpreter
from tests.conftest import GCD_SRC, SUM_ARRAY_SRC, apply_sequence, compile_prog

K = phase_by_id("k")
S = phase_by_id("s")


def memory_access_count(func):
    return sum(
        1
        for inst in func.instructions()
        if inst.reads_memory() or inst.writes_memory()
    )


class TestLegality:
    def test_illegal_before_instruction_selection(self):
        program = compile_prog(GCD_SRC)
        func = program.function("gcd")
        assert not K.applicable(func)
        assert not apply_phase(func, K)

    def test_legal_after_instruction_selection(self):
        program = compile_prog(GCD_SRC)
        func = program.function("gcd")
        assert apply_phase(func, S)
        assert K.applicable(func)


class TestAllocation:
    def test_promotes_scalar_slots_to_registers(self):
        program = compile_prog(GCD_SRC)
        func = program.function("gcd")
        apply_phase(func, S)
        before = memory_access_count(func)
        assert apply_phase(func, K)
        assert func.alloc_applied
        assert memory_access_count(func) < before

    def test_creates_register_moves_for_selection(self):
        # k's rewrites are moves that s then collapses (the paper's
        # k-enables-s relation).
        program = compile_prog(GCD_SRC)
        func = program.function("gcd")
        apply_phase(func, S)
        assert not apply_phase(func, S)  # s at fixpoint
        apply_phase(func, K)
        assert apply_phase(func, S)  # k re-enabled s

    def test_dormant_second_time(self):
        program = compile_prog(GCD_SRC)
        func = program.function("gcd")
        apply_phase(func, S)
        assert apply_phase(func, K)
        assert not apply_phase(func, K)

    def test_semantics_preserved(self):
        base = compile_prog(GCD_SRC)
        expected = Interpreter(base).run("gcd", (252, 105)).value
        assert expected == 21
        program = compile_prog(GCD_SRC)
        func = program.function("gcd")
        apply_sequence(func, "sks")
        assert Interpreter(program).run("gcd", (252, 105)).value == 21

    def test_array_slots_never_promoted(self):
        src = """
        int f(int n) {
            int tmp[4];
            int i;
            int s = 0;
            for (i = 0; i < 4; i++) tmp[i] = n + i;
            for (i = 0; i < 4; i++) s += tmp[i];
            return s;
        }
        """
        program = compile_prog(src)
        func = program.function("f")
        apply_sequence(func, "scs")
        apply_phase(func, K)
        # array accesses remain memory accesses
        assert memory_access_count(func) > 0
        assert Interpreter(program).run("f", (10,)).value == 46

    def test_allocation_on_sum_array_matches_semantics(self):
        base = compile_prog(SUM_ARRAY_SRC)
        vm = Interpreter(base)
        for i in range(100):
            vm.store_global("a", 3 * i, i)
        expected = vm.run("sum_array").value

        program = compile_prog(SUM_ARRAY_SRC)
        func = program.function("sum_array")
        apply_sequence(func, "schkshc")
        vm2 = Interpreter(program)
        for i in range(100):
            vm2.store_global("a", 3 * i, i)
        assert vm2.run("sum_array").value == expected
