"""The shared retry vocabulary: backoff math, loops, budgets.

All timing is injected (fake sleep, fake clock, seeded RNG) so every
assertion is exact — no wall-clock flakiness.
"""

import random

import pytest

from repro.robustness.retry import (
    RetryBudget,
    RetryError,
    RetryPolicy,
    retry_call,
)


class _Flaky:
    """Fails the first N calls, then returns a value."""

    def __init__(self, failures, error=RuntimeError("boom")):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return "ok"


class _FakeClock:
    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestRetryPolicy:
    def test_caps_grow_exponentially_to_the_ceiling(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=5.0)
        assert [policy.cap(n) for n in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 5.0]

    def test_full_jitter_draws_within_the_cap(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=8.0)
        rng = random.Random(7)
        for attempt in (1, 2, 3, 4, 5):
            for _ in range(50):
                delay = policy.delay(attempt, rng)
                assert 0.0 <= delay <= policy.cap(attempt)

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestRetryCall:
    def test_transient_failures_are_retried_to_success(self):
        clock = _FakeClock()
        fn = _Flaky(failures=2)
        result = retry_call(
            fn,
            policy=RetryPolicy(max_attempts=4),
            rng=random.Random(1),
            sleep=clock.sleep,
            clock=clock,
        )
        assert result == "ok"
        assert fn.calls == 3
        assert len(clock.sleeps) == 2  # one backoff per failure

    def test_gives_up_after_max_attempts_with_cause(self):
        clock = _FakeClock()
        fn = _Flaky(failures=99)
        with pytest.raises(RetryError) as info:
            retry_call(
                fn,
                policy=RetryPolicy(max_attempts=3),
                rng=random.Random(1),
                sleep=clock.sleep,
                clock=clock,
            )
        assert fn.calls == 3
        assert info.value.attempts == 3
        assert info.value.last_error is fn.error
        assert info.value.__cause__ is fn.error
        assert len(clock.sleeps) == 2  # no sleep after the final failure

    def test_never_sleeps_past_the_deadline(self):
        clock = _FakeClock()
        fn = _Flaky(failures=99)
        policy = RetryPolicy(max_attempts=10, base_delay=100.0, max_delay=100.0)
        with pytest.raises(RetryError):
            retry_call(
                fn,
                policy=policy,
                deadline=5.0,
                rng=random.Random(1),
                sleep=clock.sleep,
                clock=clock,
            )
        assert clock.now <= 5.0
        assert all(s <= 5.0 for s in clock.sleeps)

    def test_no_attempt_starts_after_the_deadline(self):
        clock = _FakeClock()
        fn = _Flaky(failures=99)
        policy = RetryPolicy(max_attempts=10, base_delay=10.0, max_delay=10.0)
        with pytest.raises(RetryError) as info:
            retry_call(
                fn,
                policy=policy,
                deadline=5.0,
                rng=random.Random(1),
                sleep=clock.sleep,
                clock=clock,
            )
        # The sleep was clipped to the deadline; once it is reached no
        # further call is fired.
        assert fn.calls < 10
        assert info.value.last_error is fn.error

    def test_only_listed_exceptions_are_retried(self):
        fn = _Flaky(failures=1, error=ValueError("not transient"))
        with pytest.raises(ValueError):
            retry_call(fn, retry_on=(KeyError,), sleep=lambda s: None)
        assert fn.calls == 1

    def test_on_retry_observes_each_backoff(self):
        clock = _FakeClock()
        seen = []
        fn = _Flaky(failures=2)
        retry_call(
            fn,
            policy=RetryPolicy(max_attempts=3),
            rng=random.Random(1),
            sleep=clock.sleep,
            clock=clock,
            on_retry=lambda attempt, delay, error: seen.append(
                (attempt, delay, type(error).__name__)
            ),
        )
        assert [entry[0] for entry in seen] == [1, 2]
        assert all(entry[2] == "RuntimeError" for entry in seen)
        assert [entry[1] for entry in seen] == clock.sleeps

    def test_seeded_rng_replays_exactly(self):
        def delays(seed):
            clock = _FakeClock()
            try:
                retry_call(
                    _Flaky(failures=99),
                    policy=RetryPolicy(max_attempts=4),
                    rng=random.Random(seed),
                    sleep=clock.sleep,
                    clock=clock,
                )
            except RetryError:
                pass
            return clock.sleeps

        assert delays(123) == delays(123)


class TestRetryBudget:
    def test_allows_exactly_max_retries_failures(self):
        budget = RetryBudget(max_retries=2)
        assert budget.record_failure("shard-1")
        assert budget.record_failure("shard-1")
        assert not budget.record_failure("shard-1")
        assert budget.exhausted("shard-1")
        assert budget.failures("shard-1") == 3

    def test_keys_are_independent(self):
        budget = RetryBudget(max_retries=1)
        assert budget.record_failure("a")
        assert not budget.record_failure("a")
        assert budget.record_failure("b")

    def test_reset_restores_the_budget(self):
        budget = RetryBudget(max_retries=1)
        assert budget.record_failure("a")
        budget.reset("a")
        assert budget.failures("a") == 0
        assert budget.record_failure("a")

    def test_zero_budget_never_retries(self):
        budget = RetryBudget(max_retries=0)
        assert not budget.record_failure("a")
