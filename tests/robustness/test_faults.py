"""Tests for the deterministic fault injector."""

import pytest

from repro.ir.instructions import Jump
from repro.ir.validate import check_ir
from repro.robustness.faults import (
    CORRUPT_LABEL,
    MODES,
    FaultInjector,
    InjectedFault,
)


class TestDecisionStream:
    def test_explicit_attempts(self):
        injector = FaultInjector(attempts={2, 4})
        decisions = [injector.should_inject() for _ in range(6)]
        assert decisions == [False, True, False, True, False, False]

    def test_rate_is_deterministic(self):
        a = FaultInjector(seed=42, rate=0.3)
        b = FaultInjector(seed=42, rate=0.3)
        assert [a.should_inject() for _ in range(200)] == [
            b.should_inject() for _ in range(200)
        ]

    def test_zero_rate_never_injects(self):
        injector = FaultInjector(seed=1, rate=0.0)
        assert not any(injector.should_inject() for _ in range(100))
        assert injector.applications == 100

    def test_rate_roughly_respected(self):
        injector = FaultInjector(seed=7, rate=0.25)
        hits = sum(injector.should_inject() for _ in range(2000))
        assert 300 < hits < 700


class TestModeSelection:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultInjector(modes=("explode",))

    def test_empty_modes_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FaultInjector(modes=())

    def test_hang_excluded_without_timeout(self):
        injector = FaultInjector(seed=3, modes=MODES)
        for _ in range(50):
            assert injector.choose_mode(None) != "hang"

    def test_hang_only_degrades_to_raise(self):
        injector = FaultInjector(seed=3, modes=("hang",))
        assert injector.choose_mode(None) == "raise"


class TestSabotage:
    def test_raise_mode(self, maxi_func):
        injector = FaultInjector(modes=("raise",))
        with pytest.raises(InjectedFault, match="injected fault #1"):
            injector.sabotage(maxi_func, "b", None)
        assert injector.injected == 1
        assert injector.injected_by_mode["raise"] == 1

    def test_corrupt_mode_breaks_validation(self, maxi_func):
        injector = FaultInjector(modes=("corrupt",))
        injector.sabotage(maxi_func, "b", None)
        last = maxi_func.blocks[-1].insts[-1]
        assert isinstance(last, Jump) and last.target == CORRUPT_LABEL
        assert check_ir(maxi_func)  # the validator must catch it

    def test_hang_mode_raises_after_sleeping(self, maxi_func):
        injector = FaultInjector(modes=("hang",), hang_seconds=0.0)
        with pytest.raises(InjectedFault, match="outlived its sleep"):
            injector.sabotage(maxi_func, "b", 10.0)

    def test_repr_mentions_stream(self):
        injector = FaultInjector(seed=5, attempts={1})
        assert "attempts=[1]" in repr(injector)
        assert "rate=0.1" in repr(FaultInjector(rate=0.1))
