"""Tests for the guarded phase runner and differential tester."""

import time

import pytest

from repro.core.batch import BatchCompiler
from repro.core.fingerprint import fingerprint_function
from repro.frontend import compile_source
from repro.ir.instructions import Assign
from repro.ir.operands import Const
from repro.opt.base import Phase
from repro.robustness.faults import FaultInjector
from repro.robustness.guard import (
    DifferentialTester,
    GuardedPhaseRunner,
    default_vectors,
    restore_function,
)
from repro.robustness.quarantine import QuarantineLog, QuarantineRecord
from tests.conftest import MAXI_SRC, compile_fn

FIVE_SRC = "int five(void) { return 5; }"


class _RaisingPhase(Phase):
    id = "b"
    name = "raises"

    def run(self, func, target):
        raise ValueError("phase exploded")


class _HangingPhase(Phase):
    id = "b"
    name = "hangs"

    def run(self, func, target):
        time.sleep(10.0)
        return False


class _ConstTweakPhase(Phase):
    """Changes observable semantics while keeping the IR well-formed."""

    id = "b"
    name = "const tweak"

    def __init__(self):
        self.fired = False

    def run(self, func, target):
        if self.fired:
            return False
        for block in func.blocks:
            for i, inst in enumerate(block.insts):
                if isinstance(inst, Assign) and isinstance(inst.src, Const):
                    block.insts[i] = Assign(inst.dst, Const(inst.src.value + 1))
                    self.fired = True
                    return True
        return False


def _fp(func):
    return fingerprint_function(func).key


class TestExceptionContainment:
    def test_raising_phase_is_quarantined(self, maxi_func):
        guard = GuardedPhaseRunner()
        before = _fp(maxi_func)
        assert guard.apply(maxi_func, _RaisingPhase()) is False
        assert _fp(maxi_func) == before  # restored
        assert len(guard.quarantine) == 1
        record = guard.quarantine.records[0]
        assert record.kind == "exception"
        assert "ValueError" in record.detail

    def test_control_exceptions_propagate(self, maxi_func):
        class _Interrupting(Phase):
            id = "b"
            name = "interrupts"

            def run(self, func, target):
                raise KeyboardInterrupt

        guard = GuardedPhaseRunner()
        with pytest.raises(KeyboardInterrupt):
            guard.apply(maxi_func, _Interrupting())
        assert len(guard.quarantine) == 0


class TestTimeouts:
    def test_hanging_phase_is_quarantined(self, maxi_func):
        guard = GuardedPhaseRunner(phase_timeout=0.1)
        before = _fp(maxi_func)
        start = time.perf_counter()
        assert guard.apply(maxi_func, _HangingPhase()) is False
        assert time.perf_counter() - start < 5.0
        assert _fp(maxi_func) == before
        assert guard.quarantine.records[0].kind == "timeout"


class TestInjectedFaults:
    def test_injected_raise(self, maxi_func):
        from repro.opt import phase_by_id

        guard = GuardedPhaseRunner(
            fault_injector=FaultInjector(modes=("raise",), attempts={1})
        )
        before = _fp(maxi_func)
        assert guard.apply(maxi_func, phase_by_id("b")) is False
        assert _fp(maxi_func) == before
        assert guard.quarantine.records[0].kind == "exception"

    def test_injected_corruption_caught_even_without_validate(self, maxi_func):
        from repro.opt import phase_by_id

        guard = GuardedPhaseRunner(
            validate=False,
            fault_injector=FaultInjector(modes=("corrupt",), attempts={1}),
        )
        before = _fp(maxi_func)
        assert guard.apply(maxi_func, phase_by_id("b")) is False
        assert _fp(maxi_func) == before
        record = guard.quarantine.records[0]
        assert record.kind == "validation"
        assert record.diff is not None

    def test_injected_hang_hits_the_alarm(self, maxi_func):
        from repro.opt import phase_by_id

        guard = GuardedPhaseRunner(
            phase_timeout=0.1,
            fault_injector=FaultInjector(
                modes=("hang",), attempts={1}, hang_seconds=5.0
            ),
        )
        start = time.perf_counter()
        assert guard.apply(maxi_func, phase_by_id("b")) is False
        assert time.perf_counter() - start < 5.0
        assert guard.quarantine.records[0].kind == "timeout"

    def test_uninjected_applications_work_normally(self, maxi_func):
        from repro.opt import phase_by_id

        guard = GuardedPhaseRunner(
            fault_injector=FaultInjector(modes=("raise",), attempts=set())
        )
        # maxi has at least one active phase from the start
        changed = any(
            guard.apply(maxi_func, phase_by_id(pid)) for pid in "bsiu"
        )
        assert changed
        assert len(guard.quarantine) == 0


class TestDifferentialTesting:
    def test_semantics_change_is_quarantined(self):
        program = compile_source(FIVE_SRC)
        func = program.functions["five"]
        from repro.opt import implicit_cleanup

        implicit_cleanup(func)
        tester = DifferentialTester(program, "five", default_vectors(func))
        guard = GuardedPhaseRunner(difftest=tester)
        before = _fp(func)
        assert guard.apply(func, _ConstTweakPhase()) is False
        assert _fp(func) == before
        record = guard.quarantine.records[0]
        assert record.kind == "semantics"
        assert "expected" in record.detail

    def test_honest_phases_pass_difftest(self, maxi_func):
        from repro.opt import phase_by_id

        program = compile_source(MAXI_SRC)
        tester = DifferentialTester(
            program, "maxi", default_vectors(program.functions["maxi"])
        )
        guard = GuardedPhaseRunner(difftest=tester)
        func = compile_fn(MAXI_SRC, "maxi")
        for pid in "bsiukch":
            guard.apply(func, phase_by_id(pid))
        assert len(guard.quarantine) == 0

    def test_check_reports_mismatch_directly(self):
        program = compile_source(FIVE_SRC)
        func = program.functions["five"]
        from repro.opt import implicit_cleanup

        implicit_cleanup(func)
        tester = DifferentialTester(program, "five", default_vectors(func))
        assert tester.check(func.clone()) is None
        tweaked = func.clone()
        _ConstTweakPhase().run(tweaked, None)
        assert "expected" in tester.check(tweaked)

    def test_default_vectors_cover_arity(self, maxi_func):
        vectors = default_vectors(maxi_func)
        assert all(len(v) == len(maxi_func.params) for v in vectors)
        program = compile_source(FIVE_SRC)
        assert default_vectors(program.functions["five"]) == ((),)


class TestRestoreFunction:
    def test_restore_roundtrip(self, gcd_func):
        from repro.opt import apply_phase, phase_by_id

        snapshot = gcd_func.clone()
        before = _fp(gcd_func)
        assert apply_phase(gcd_func, phase_by_id("s"))
        assert _fp(gcd_func) != before
        restore_function(gcd_func, snapshot)
        assert _fp(gcd_func) == before
        assert not gcd_func.sel_applied


class TestGuardedCompilers:
    def test_batch_compiler_counts_quarantined(self, maxi_func):
        guard = GuardedPhaseRunner(
            fault_injector=FaultInjector(modes=("raise",), attempts={1, 3})
        )
        report = BatchCompiler(guard=guard).compile(maxi_func)
        assert report.quarantined == 2
        assert len(guard.quarantine) == 2

    def test_unguarded_report_defaults_to_zero(self, maxi_func):
        report = BatchCompiler().compile(maxi_func)
        assert report.quarantined == 0

    def test_probabilistic_compiler_survives_faults(
        self, maxi_func, small_interactions
    ):
        from repro.core.probabilistic import ProbabilisticCompiler

        guard = GuardedPhaseRunner(
            fault_injector=FaultInjector(modes=("raise",), attempts={1, 2})
        )
        report = ProbabilisticCompiler(
            small_interactions, guard=guard
        ).compile(maxi_func)
        assert report.quarantined == 2
        assert report.code_size > 0


class TestQuarantineLog:
    def test_report_counts_by_kind_and_phase(self):
        log = QuarantineLog()
        log.add(QuarantineRecord("b", "exception", "boom"))
        log.add(QuarantineRecord("b", "validation", "bad ir"))
        log.add(QuarantineRecord("s", "exception", "boom"))
        assert log.by_kind() == {"exception": 2, "validation": 1}
        assert log.by_phase() == {"b": 2, "s": 1}
        report = log.format_report()
        assert "3 phase application(s) rejected" in report
        assert "exception: 2" in report

    def test_empty_report(self):
        assert "no phase applications" in QuarantineLog().format_report()

    def test_dict_roundtrip(self):
        log = QuarantineLog()
        log.add(QuarantineRecord("b", "timeout", "slow", "node#3", 2, "diff"))
        restored = QuarantineLog.from_dicts(log.to_dicts())
        record = restored.records[0]
        assert (record.phase_id, record.kind, record.detail) == ("b", "timeout", "slow")
        assert (record.node_key, record.level, record.diff) == ("node#3", 2, "diff")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="bad quarantine kind"):
            QuarantineRecord("b", "meltdown", "oops")


class TestCooperativeDeadline:
    """The timeout policy off the main thread, where SIGALRM cannot be
    armed: the phase runs unsupervised but its result is rejected and
    quarantined after the fact."""

    @staticmethod
    def _apply_in_thread(guard, func, phase):
        import threading

        outcome = {}

        def target():
            outcome["active"] = guard.apply(func, phase)

        thread = threading.Thread(target=target)
        thread.start()
        thread.join()
        return outcome["active"]

    def test_slow_phase_rejected_off_main_thread(self):
        class _SlowConstTweak(_ConstTweakPhase):
            def run(self, func, target):
                time.sleep(0.2)
                return super().run(func, target)

        func = compile_fn(FIVE_SRC, "five")
        guard = GuardedPhaseRunner(phase_timeout=0.05)
        before = _fp(func)
        active = self._apply_in_thread(guard, func, _SlowConstTweak())
        assert active is False
        assert _fp(func) == before  # restored despite "success"
        record = guard.quarantine.records[0]
        assert record.kind == "timeout"
        assert "cooperative" in record.detail

    def test_slow_dormant_phase_also_counts(self, maxi_func):
        class _SlowDormant(Phase):
            id = "b"
            name = "slow and dormant"

            def run(self, func, target):
                time.sleep(0.2)
                return False

        guard = GuardedPhaseRunner(phase_timeout=0.05)
        active = self._apply_in_thread(guard, maxi_func, _SlowDormant())
        assert active is False
        assert guard.quarantine.records[0].kind == "timeout"

    def test_fast_phase_passes_off_main_thread(self, maxi_func):
        from repro.opt import phase_by_id

        guard = GuardedPhaseRunner(phase_timeout=5.0)
        self._apply_in_thread(guard, maxi_func, phase_by_id("b"))
        assert len(guard.quarantine) == 0
