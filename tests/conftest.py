"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.ir.function import Function, Program
from repro.opt import apply_phase, implicit_cleanup, phase_by_id
from repro.vm import Interpreter

SUM_ARRAY_SRC = """
int a[100];
int sum_array(void) {
    int sum = 0;
    int i;
    for (i = 0; i < 100; i++)
        sum += a[i];
    return sum;
}
"""

GCD_SRC = """
int gcd(int a, int b) {
    while (b != 0) {
        int t = b;
        b = a % b;
        a = t;
    }
    return a;
}
"""

MAXI_SRC = "int maxi(int a, int b) { if (a > b) return a; return b; }"

SQUARE_SRC = "int square(int x) { return x * x; }"


def compile_fn(source: str, name: str) -> Function:
    """Compile one function from source and canonicalize it."""
    program = compile_source(source)
    func = program.function(name)
    implicit_cleanup(func)
    return func


def compile_prog(source: str) -> Program:
    return compile_source(source)


def run_value(program: Program, entry: str, args=(), fuel: int = 5_000_000):
    """Execute and return just the produced value."""
    return Interpreter(program, fuel=fuel).run(entry, args).value


def apply_sequence(func: Function, sequence: str) -> str:
    """Apply a string of phase letters; return the active subsequence."""
    active = []
    for phase_id in sequence:
        if apply_phase(func, phase_by_id(phase_id)):
            active.append(phase_id)
    return "".join(active)


@pytest.fixture(scope="session")
def small_enumerations():
    """Enumerated spaces of three small functions (computed once)."""
    from repro.core.enumeration import EnumerationConfig, enumerate_space

    sources = [(SQUARE_SRC, "square"), (MAXI_SRC, "maxi"), (GCD_SRC, "gcd")]
    return [
        enumerate_space(compile_fn(src, name), EnumerationConfig())
        for src, name in sources
    ]


@pytest.fixture(scope="session")
def small_interactions(small_enumerations):
    from repro.core.interactions import analyze_interactions

    return analyze_interactions(small_enumerations)


@pytest.fixture
def sum_array_func() -> Function:
    return compile_fn(SUM_ARRAY_SRC, "sum_array")


@pytest.fixture
def gcd_func() -> Function:
    return compile_fn(GCD_SRC, "gcd")


@pytest.fixture
def maxi_func() -> Function:
    return compile_fn(MAXI_SRC, "maxi")


@pytest.fixture
def square_func() -> Function:
    return compile_fn(SQUARE_SRC, "square")
