"""Tests for the pointer/struct MiBench ports in sha and stringsearch.

The new functions are standalone — nothing in ``main``/``selftest``
calls them, so the pinned checksums and pre-existing RTL stay
byte-identical — and each one is cross-checked here against the
array-indexing original it mirrors.
"""

import pytest

from repro.core.batch import BatchCompiler
from repro.programs import compile_benchmark
from repro.vm import Interpreter


def _vm(name, fuel=60_000_000):
    return Interpreter(compile_benchmark(name), fuel=fuel)


class TestShaPointerPort:
    def test_word_sum_walks_the_buffer(self):
        vm = _vm("sha")
        vm.run("selftest")  # fills message[] deterministically
        total = vm.run("word_sum", [vm.global_address("message"), 40])
        expected = 0
        fresh = _vm("sha")
        fresh.run("selftest")
        for index in range(40):
            word = fresh.load_global("message", index)
            expected = (expected + word) & 0xFFFFFFFF
        assert total.value & 0xFFFFFFFF == expected

    def test_sha_update_ptr_matches_sha_update_words(self):
        with_arrays = _vm("sha")
        with_arrays.run("selftest")
        expected = with_arrays.run("sha_final_word").value

        with_pointers = _vm("sha")
        # Replicate selftest's message fill, then hash via the pointer
        # walker instead of the array indexer.
        with_pointers.run("selftest")
        base = with_pointers.global_address("message")
        with_pointers.run("sha_init")
        with_pointers.store_global("sha_count", 0, 0)
        with_pointers.run("sha_update_ptr", [base, 40])
        assert with_pointers.run("sha_final_word").value == expected

    def test_sha_update_ptr_partial_blocks(self):
        # 21 words: one full block plus a 5-word tail that must be
        # zero-padded, exactly like sha_update_words does.
        reference = _vm("sha")
        reference.run("selftest")
        base_ref = reference.global_address("message")
        reference.run("sha_init")
        reference.store_global("sha_count", 0, 0)
        reference.run("sha_update_words", [base_ref, 21])
        expected = reference.run("sha_final_word").value

        pointered = _vm("sha")
        pointered.run("selftest")
        base = pointered.global_address("message")
        pointered.run("sha_init")
        pointered.store_global("sha_count", 0, 0)
        pointered.run("sha_update_ptr", [base, 21])
        assert pointered.run("sha_final_word").value == expected


class TestStringsearchStructPort:
    def _prepared(self, which=0):
        vm = _vm("stringsearch")
        vm.run("make_text", [20060325])
        patlen = vm.run("set_pattern", [which]).value
        vm.run("bmh_init", [patlen])
        return vm, patlen

    @pytest.mark.parametrize("which", range(4))
    def test_simple_search_ptr_matches_simple_search(self, which):
        vm, patlen = self._prepared(which)
        vm.run("plant_pattern", [100, patlen])
        baseline = vm.run("simple_search", [256, patlen]).value
        pointered = vm.run("simple_search_ptr", [256, patlen]).value
        assert pointered == baseline
        assert baseline == 100

    def test_find_all_counts_planted_matches(self):
        vm, patlen = self._prepared(0)
        vm.run("plant_pattern", [50, patlen])
        vm.run("plant_pattern", [120, patlen])
        result = vm.run("find_all", [256, patlen]).value
        assert result == 50 * 1000 + 2
        assert vm.load_global("last_match", 0) == 50
        assert vm.load_global("last_match", 1) == 2

    def test_find_all_without_matches(self):
        vm, patlen = self._prepared(2)  # "qzx" never occurs
        assert vm.run("find_all", [256, patlen]).value == -1 * 1000 + 0

    def test_match_here_pointer_walk(self):
        vm, patlen = self._prepared(1)
        vm.run("plant_pattern", [200, patlen])
        text = vm.global_address("search_text")
        pattern = vm.global_address("pattern")
        assert vm.run("match_here", [text + 200 * 4, pattern, patlen]).value == 1
        assert vm.run("match_here", [text, pattern, patlen]).value == 0


class TestPortsSurviveOptimization:
    @pytest.mark.parametrize(
        "name,function",
        [
            ("sha", "word_sum"),
            ("sha", "sha_update_ptr"),
            ("stringsearch", "record_match"),
            ("stringsearch", "find_all"),
            ("stringsearch", "match_here"),
            ("stringsearch", "simple_search_ptr"),
        ],
    )
    def test_batch_compiled_port_agrees_with_naive(self, name, function):
        vm, patlen = None, None
        if name == "stringsearch":
            naive = _vm(name)
            naive.run("make_text", [20060325])
            patlen = naive.run("set_pattern", [0]).value
            naive.run("bmh_init", [patlen])
            naive.run("plant_pattern", [100, patlen])
            baseline = naive.run("find_all", [256, patlen]).value

            program = compile_benchmark(name)
            BatchCompiler().compile(program.functions[function])
            optimized = Interpreter(program, fuel=60_000_000)
            optimized.run("make_text", [20060325])
            optimized.run("set_pattern", [0])
            optimized.run("bmh_init", [patlen])
            optimized.run("plant_pattern", [100, patlen])
            assert optimized.run("find_all", [256, patlen]).value == baseline
        else:
            naive = _vm(name)
            naive.run("selftest")
            base = naive.global_address("message")
            naive.run("sha_init")
            naive.store_global("sha_count", 0, 0)
            naive.run("sha_update_ptr", [base, 40])
            baseline = naive.run("sha_final_word").value

            program = compile_benchmark(name)
            BatchCompiler().compile(program.functions[function])
            optimized = Interpreter(program, fuel=60_000_000)
            optimized.run("selftest")
            base = optimized.global_address("message")
            optimized.run("sha_init")
            optimized.store_global("sha_count", 0, 0)
            optimized.run("sha_update_ptr", [base, 40])
            assert optimized.run("sha_final_word").value == baseline
