"""Tests for the MiBench-like benchmark programs."""

import pytest

from repro.core.batch import BatchCompiler
from repro.ir.cfg import validate_function
from repro.programs import PROGRAMS, compile_benchmark
from repro.vm import Interpreter

# Checksums pinned from the unoptimized reference run; any compiler or
# interpreter change that shifts them is a semantic regression (the
# bitcount value is independently confirmed against pure Python in
# test_bitcount_cross_checked_in_python).
EXPECTED = {
    "bitcount": 3976,
    "dijkstra": 121,
    "fft": 12816,
    "jpeg": 5104,
    "sha": -1194316910,
    "stringsearch": 98309508,
}

# Each benchmark also carries a `selftest` driver exercising its extra
# functions (queued dijkstra, AAN DCT row, Huffman bit packing, ...).
EXPECTED_SELFTEST = {
    "bitcount": 105348510,
    "dijkstra": 4396069,
    "fft": 1351903491,
    "jpeg": 756941404,
    "sha": 989703214,
    "stringsearch": 919026559,
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
class TestPerBenchmark:
    def test_compiles_and_validates(self, name):
        program = compile_benchmark(name)
        assert program.functions
        for func in program.functions.values():
            validate_function(func)

    def test_unoptimized_checksum(self, name):
        program = compile_benchmark(name)
        result = Interpreter(program, fuel=40_000_000).run(PROGRAMS[name].entry)
        assert result.value == EXPECTED[name]

    def test_batch_optimized_checksum_and_speedup(self, name):
        baseline_prog = compile_benchmark(name)
        baseline = Interpreter(baseline_prog, fuel=40_000_000).run(
            PROGRAMS[name].entry
        )
        program = compile_benchmark(name)
        for func in program.functions.values():
            BatchCompiler().compile(func)
        optimized = Interpreter(program, fuel=40_000_000).run(PROGRAMS[name].entry)
        assert optimized.value == EXPECTED[name]
        assert optimized.total_insts < baseline.total_insts

    def test_study_functions_exist(self, name):
        program = compile_benchmark(name)
        for function_name in PROGRAMS[name].study_functions:
            assert function_name in program.functions

    def test_selftest_checksum(self, name):
        program = compile_benchmark(name)
        result = Interpreter(program, fuel=60_000_000).run("selftest")
        assert result.value == EXPECTED_SELFTEST[name]

    def test_selftest_survives_batch_compilation(self, name):
        program = compile_benchmark(name)
        for func in program.functions.values():
            BatchCompiler().compile(func)
        result = Interpreter(program, fuel=60_000_000).run("selftest")
        assert result.value == EXPECTED_SELFTEST[name]


class TestSuite:
    def test_six_categories(self):
        categories = {bench.category for bench in PROGRAMS.values()}
        assert categories == {
            "auto",
            "network",
            "telecomm",
            "consumer",
            "security",
            "office",
        }

    def test_bitcount_cross_checked_in_python(self):
        def mask32(value):
            value &= 0xFFFFFFFF
            return value - 0x100000000 if value >= 0x80000000 else value

        seed = 1013904223
        total = 0
        for _ in range(64):
            seed = mask32(seed * 1664525 + 1013904223)
            total += 4 * bin(seed & 0x7FFFFFFF).count("1")
        assert total == EXPECTED["bitcount"]

    def test_dijkstra_cross_checked_in_python(self):
        def mask32(value):
            value &= 0xFFFFFFFF
            return value - 0x100000000 if value >= 0x80000000 else value

        # rebuild the graph exactly as init_graph does
        adj = [[0] * 20 for _ in range(20)]
        v = 42
        for i in range(20):
            for j in range(20):
                v = mask32(v * 1103515245 + 12345)
                if i != j:
                    w = (v >> 16) & 31
                    adj[i][j] = 0 if w < 4 else w

        def dijkstra(src):
            dist = [1000000] * 20
            visited = [False] * 20
            dist[src] = 0
            for _ in range(20):
                u, best = -1, 1000000
                for i in range(20):
                    if not visited[i] and dist[i] < best:
                        best, u = dist[i], i
                if u < 0:
                    break
                visited[u] = True
                for i in range(20):
                    w = adj[u][i]
                    if w > 0 and dist[u] + w < dist[i]:
                        dist[i] = dist[u] + w
            return dist[19]

        total = 0
        for src in range(10):
            d = dijkstra(src)
            total += d if d < 1000000 else 7
        assert total == EXPECTED["dijkstra"]

    def test_stringsearch_finds_planted_patterns(self):
        program = compile_benchmark("stringsearch")
        vm = Interpreter(program, fuel=40_000_000)
        vm.run("make_text", (20060325,))
        vm.run("set_pattern", (0,))
        vm.run("plant_pattern", (100, 4))
        patlen = vm.run("set_pattern", (0,)).value
        vm.run("bmh_init", (patlen,))
        found = vm.run("bmh_search", (256, patlen)).value
        assert 0 <= found <= 100
