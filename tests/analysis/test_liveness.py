"""Unit tests for register and slot liveness."""

from repro.analysis.liveness import compute_liveness, compute_slot_liveness
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Assign, Compare, CondBranch, Jump, Return
from repro.ir.operands import BinOp, Const, Mem, Reg
from repro.machine.target import FP, RV
from tests.conftest import compile_fn


def straightline():
    func = Function("f", returns_value=True)
    block = func.add_block("L0")
    block.insts = [
        Assign(Reg(1), Const(1)),
        Assign(Reg(2), BinOp("add", Reg(1), Const(2))),
        Assign(RV, Reg(2)),
        Return(),
    ]
    return func


class TestRegisterLiveness:
    def test_straightline_chain(self):
        func = straightline()
        liveness = compute_liveness(func)
        before = liveness.live_before_each("L0")
        assert Reg(1) not in before[0]
        assert Reg(1) in before[1]
        assert Reg(2) in before[2]
        assert RV in before[3]

    def test_return_value_live_only_when_function_returns(self):
        func = straightline()
        func.returns_value = False
        liveness = compute_liveness(func)
        # the copy into RV is now dead at its own position
        after = liveness.live_after_each("L0")
        assert RV not in after[2]

    def test_loop_carried_liveness(self):
        func = Function("f", returns_value=True)
        head = func.add_block("head")
        body = func.add_block("body")
        exit_ = func.add_block("exit")
        head.insts = [Compare(Reg(1), Const(10)), CondBranch("ge", "exit")]
        body.insts = [Assign(Reg(1), BinOp("add", Reg(1), Const(1))), Jump("head")]
        exit_.insts = [Assign(RV, Reg(1)), Return()]
        liveness = compute_liveness(func)
        assert Reg(1) in liveness.live_in["head"]
        assert Reg(1) in liveness.live_out["body"]

    def test_branch_keeps_both_paths_alive(self):
        func = Function("f", returns_value=True)
        entry = func.add_block("entry")
        then = func.add_block("then")
        other = func.add_block("other")
        entry.insts = [
            Assign(Reg(5), Const(1)),
            Assign(Reg(6), Const(2)),
            Compare(Reg(7), Const(0)),
            CondBranch("eq", "other"),
        ]
        then.insts = [Assign(RV, Reg(5)), Return()]
        other.insts = [Assign(RV, Reg(6)), Return()]
        liveness = compute_liveness(func)
        assert {Reg(5), Reg(6)} <= set(liveness.live_out["entry"])


class TestSlotLiveness:
    def test_dead_store_detected(self):
        func = Function("f", returns_value=True)
        func.add_local("x", 1, "int", False)  # offset 0
        block = func.add_block("L0")
        block.insts = [
            Assign(Mem(FP), Reg(1, pseudo=False)),  # store never loaded
            Assign(RV, Const(0)),
            Return(),
        ]
        slots = compute_slot_liveness(func)
        after = slots.live_after_each("L0")
        assert 0 not in after[0]

    def test_store_then_load_is_live(self):
        func = Function("f", returns_value=True)
        func.add_local("x", 1, "int", False)
        block = func.add_block("L0")
        block.insts = [
            Assign(Mem(FP), Reg(1, pseudo=False)),
            Assign(RV, Mem(FP)),
            Return(),
        ]
        slots = compute_slot_liveness(func)
        after = slots.live_after_each("L0")
        assert 0 in after[0]

    def test_load_through_address_register_keeps_slot_live(self):
        # t1 = fp + 0; rv = M[t1] must count as a read of slot 0.
        func = Function("f", returns_value=True)
        func.add_local("x", 1, "int", False)
        block = func.add_block("L0")
        t1 = Reg(1)
        block.insts = [
            Assign(Mem(FP), Reg(2, pseudo=False)),
            Assign(t1, FP),
            Assign(RV, Mem(t1)),
            Return(),
        ]
        slots = compute_slot_liveness(func)
        after = slots.live_after_each("L0")
        assert 0 in after[0]

    def test_arrays_not_tracked(self, sum_array_func):
        slots = compute_slot_liveness(sum_array_func)
        offsets = {slot.offset for slot in sum_array_func.scalar_slots()}
        assert slots.tracked == offsets
