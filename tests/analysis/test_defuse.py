"""Unit tests for the def/use rewriting helpers."""

from repro.analysis.defuse import (
    defined_reg,
    rewrite_registers,
    rewrite_uses,
    single_def_registers,
)
from repro.ir.function import Function
from repro.ir.instructions import Assign, Call, Compare, Jump, Return
from repro.ir.operands import BinOp, Const, Mem, Reg
from repro.machine.target import RV


class TestDefinedReg:
    def test_register_assign(self):
        assert defined_reg(Assign(Reg(1), Const(0))) == Reg(1)

    def test_store_defines_nothing(self):
        assert defined_reg(Assign(Mem(Reg(1)), Reg(2))) is None

    def test_non_assign(self):
        assert defined_reg(Jump("L1")) is None


class TestRewriteUses:
    def test_rewrites_source_operands(self):
        inst = Assign(Reg(1), BinOp("add", Reg(2), Reg(3)))
        out = rewrite_uses(inst, {Reg(2): Const(5)})
        assert out == Assign(Reg(1), BinOp("add", Const(5), Reg(3)))

    def test_destination_register_never_rewritten(self):
        inst = Assign(Reg(1), Reg(2))
        out = rewrite_uses(inst, {Reg(1): Reg(9)})
        assert out.dst == Reg(1)

    def test_store_address_is_a_use(self):
        inst = Assign(Mem(BinOp("add", Reg(1), Const(4))), Reg(2))
        out = rewrite_uses(inst, {Reg(1): Reg(7)})
        assert out == Assign(Mem(BinOp("add", Reg(7), Const(4))), Reg(2))

    def test_compare_operands_rewritten(self):
        inst = Compare(Reg(1), Reg(2))
        out = rewrite_uses(inst, {Reg(1): Reg(3), Reg(2): Const(0)})
        assert out == Compare(Reg(3), Const(0))

    def test_no_change_returns_same_object(self):
        inst = Assign(Reg(1), Reg(2))
        assert rewrite_uses(inst, {Reg(9): Reg(3)}) is inst

    def test_transfers_untouched(self):
        inst = Jump("L1")
        assert rewrite_uses(inst, {Reg(1): Reg(2)}) is inst


class TestRewriteRegisters:
    def test_rewrites_both_defs_and_uses(self):
        inst = Assign(Reg(1), BinOp("add", Reg(1), Const(4)))
        out = rewrite_registers(inst, {Reg(1): Reg(9)})
        assert out == Assign(Reg(9), BinOp("add", Reg(9), Const(4)))

    def test_store_destination_address_rewritten(self):
        inst = Assign(Mem(Reg(1)), Reg(2))
        out = rewrite_registers(inst, {Reg(1): Reg(3), Reg(2): Reg(4)})
        assert out == Assign(Mem(Reg(3)), Reg(4))


class TestSingleDefRegisters:
    def _func(self, insts, params=False):
        func = Function("f", returns_value=True)
        block = func.add_block("L0")
        block.insts = list(insts) + [Return()]
        return func

    def test_single_textual_def_found(self):
        func = self._func([Assign(Reg(1), Const(4)), Assign(RV, Reg(1))])
        singles = single_def_registers(func)
        assert Reg(1) in singles
        assert singles[Reg(1)] == Assign(Reg(1), Const(4))

    def test_double_def_excluded(self):
        func = self._func(
            [
                Assign(Reg(1), Const(4)),
                Assign(Reg(1), Const(5)),
                Assign(RV, Reg(1)),
            ]
        )
        assert Reg(1) not in single_def_registers(func)

    def test_call_clobbered_register_excluded(self):
        func = self._func([Call("g", 0), Assign(Reg(1, pseudo=False), Const(1)),
                           Assign(RV, Reg(1, pseudo=False))])
        assert Reg(1, pseudo=False) not in single_def_registers(func)

    def test_argument_register_has_implicit_entry_def(self):
        # r0 is read before any def (it carries an argument), so its
        # later textual def is not its only source.
        r0 = Reg(0, pseudo=False)
        func = self._func(
            [
                Assign(Reg(8, pseudo=False), r0),  # use of the argument
                Assign(r0, Const(7)),  # textual def
                Assign(RV, BinOp("add", Reg(8, pseudo=False), r0)),
            ]
        )
        singles = single_def_registers(func)
        assert r0 not in singles
        assert Reg(8, pseudo=False) in singles
