"""Unit tests for the frame-reference alias analysis."""

from repro.analysis.framerefs import compute_frame_refs
from repro.ir.function import Function
from repro.ir.instructions import Assign, Call, Compare, CondBranch, Jump, Return
from repro.ir.operands import BinOp, Const, Mem, Reg
from repro.machine.target import FP, RV


def one_block(insts, locals_spec=(("x", False), ("y", False))):
    func = Function("f", returns_value=True)
    for name, is_array in locals_spec:
        func.add_local(name, 4 if is_array else 1, "int", is_array)
    block = func.add_block("L0")
    block.insts = list(insts) + [Return()]
    return func


class TestClassification:
    def test_literal_slot_access(self):
        func = one_block([Assign(RV, Mem(BinOp("add", FP, Const(4))))])
        refs = compute_frame_refs(func)
        assert refs.refs["L0"][0].reads == frozenset({4})
        assert not refs.has_wild

    def test_access_through_address_register(self):
        t = Reg(1)
        func = one_block(
            [
                Assign(t, BinOp("add", FP, Const(4))),
                Assign(RV, Mem(t)),
            ]
        )
        refs = compute_frame_refs(func)
        assert refs.refs["L0"][1].reads == frozenset({4})

    def test_chained_offsets(self):
        t1, t2 = Reg(1), Reg(2)
        func = one_block(
            [
                Assign(t1, FP),
                Assign(t2, BinOp("add", t1, Const(4))),
                Assign(RV, Mem(t2)),
            ]
        )
        refs = compute_frame_refs(func)
        assert refs.refs["L0"][2].reads == frozenset({4})

    def test_array_element_is_not_a_scalar_slot(self):
        # base = fp + 8 (array base), addr = base + index -> in-bounds
        # derived pointer, never aliases scalar slots.
        base, index, addr = Reg(1), Reg(2), Reg(3)
        func = one_block(
            [
                Assign(base, BinOp("add", FP, Const(8))),
                Assign(addr, BinOp("add", base, index)),
                Assign(RV, Mem(addr)),
            ],
            locals_spec=(("x", False), ("y", False), ("arr", True)),
        )
        refs = compute_frame_refs(func)
        assert refs.refs["L0"][2].reads == frozenset()
        assert not refs.has_wild

    def test_loaded_value_is_not_frame_derived(self):
        t = Reg(1)
        func = one_block([Assign(t, Mem(FP)), Assign(RV, Mem(t))])
        refs = compute_frame_refs(func)
        assert refs.refs["L0"][1].reads == frozenset()
        assert not refs.has_wild

    def test_calls_do_not_touch_scalar_slots(self):
        func = one_block([Call("g", 0)])
        refs = compute_frame_refs(func)
        ref = refs.refs["L0"][0]
        assert not ref.reads and not ref.writes
        assert not ref.wild_read and not ref.wild_write

    def test_stores_classified(self):
        func = one_block([Assign(Mem(BinOp("add", FP, Const(0))), RV)])
        refs = compute_frame_refs(func)
        assert refs.refs["L0"][0].writes == frozenset({0})


class TestMerging:
    def test_conflicting_offsets_become_wild(self):
        # r1 = fp+0 on one path, fp+4 on the other; M[r1] afterwards
        # must be treated as possibly touching either slot.
        func = Function("f", returns_value=True)
        func.add_local("x", 1, "int", False)
        func.add_local("y", 1, "int", False)
        entry = func.add_block("entry")
        left = func.add_block("left")
        right = func.add_block("right")
        join = func.add_block("join")
        r1 = Reg(1)
        entry.insts = [Compare(RV, Const(0)), CondBranch("eq", "right")]
        left.insts = [Assign(r1, FP), Jump("join")]
        right.insts = [Assign(r1, BinOp("add", FP, Const(4)))]
        join.insts = [Assign(RV, Mem(r1)), Return()]
        refs = compute_frame_refs(func)
        assert refs.refs["join"][0].wild_read
        assert refs.has_wild

    def test_consistent_offsets_stay_precise(self):
        func = Function("f", returns_value=True)
        func.add_local("x", 1, "int", False)
        entry = func.add_block("entry")
        left = func.add_block("left")
        join = func.add_block("join")
        r1 = Reg(1)
        entry.insts = [
            Assign(r1, FP),
            Compare(RV, Const(0)),
            CondBranch("eq", "join"),
        ]
        left.insts = [Assign(r1, FP)]
        join.insts = [Assign(RV, Mem(r1)), Return()]
        refs = compute_frame_refs(func)
        assert refs.refs["join"][0].reads == frozenset({0})
