"""Unit tests for dominator computation."""

from repro.analysis.dominators import compute_dominators
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Compare, CondBranch, Jump, Return
from repro.ir.operands import Const, Reg


def build(edges_spec):
    """Build a function from {label: terminator_spec} in given order.

    terminator_spec: ("jump", target) | ("branch", target) | ("ret",)
    A branch falls through to the next positional block.
    """
    func = Function("f")
    labels = list(edges_spec)
    for label in labels:
        func.add_block(label)
    for label, spec in edges_spec.items():
        block = func.block(label)
        if spec[0] == "jump":
            block.insts.append(Jump(spec[1]))
        elif spec[0] == "branch":
            block.insts.append(Compare(Reg(1), Const(0)))
            block.insts.append(CondBranch("lt", spec[1]))
        else:
            block.insts.append(Return())
    return func


class TestDominators:
    def test_straight_line(self):
        func = build({"a": ("jump", "b"), "b": ("jump", "c"), "c": ("ret",)})
        dom = compute_dominators(func)
        assert dom.idom["a"] is None
        assert dom.idom["b"] == "a"
        assert dom.idom["c"] == "b"

    def test_diamond(self):
        func = build(
            {
                "entry": ("branch", "right"),
                "left": ("jump", "join"),
                "right": ("jump", "join"),
                "join": ("ret",),
            }
        )
        dom = compute_dominators(func)
        assert dom.idom["left"] == "entry"
        assert dom.idom["right"] == "entry"
        assert dom.idom["join"] == "entry"
        assert dom.dominates("entry", "join")
        assert not dom.dominates("left", "join")
        assert dom.dominates("join", "join")
        assert not dom.strictly_dominates("join", "join")

    def test_loop(self):
        func = build(
            {
                "entry": ("jump", "head"),
                "head": ("branch", "exit"),
                "body": ("jump", "head"),
                "exit": ("ret",),
            }
        )
        dom = compute_dominators(func)
        assert dom.idom["head"] == "entry"
        assert dom.idom["body"] == "head"
        assert dom.idom["exit"] == "head"
        assert dom.dominates("head", "body")

    def test_unreachable_blocks_excluded(self):
        func = build(
            {"entry": ("jump", "exit"), "island": ("jump", "exit"), "exit": ("ret",)}
        )
        dom = compute_dominators(func)
        assert "island" not in dom.idom
        assert dom.idom["exit"] == "entry"

    def test_depths(self):
        func = build(
            {
                "entry": ("branch", "c"),
                "b": ("jump", "d"),
                "c": ("jump", "d"),
                "d": ("ret",),
            }
        )
        dom = compute_dominators(func)
        assert dom.depth("entry") == 0
        assert dom.depth("b") == 1
        assert dom.depth("d") == 1

    def test_children(self):
        func = build(
            {
                "entry": ("branch", "c"),
                "b": ("jump", "d"),
                "c": ("jump", "d"),
                "d": ("ret",),
            }
        )
        dom = compute_dominators(func)
        assert sorted(dom.children()["entry"]) == ["b", "c", "d"]
