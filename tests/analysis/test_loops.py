"""Unit tests for natural loop detection."""

from repro.analysis.loops import find_natural_loops
from repro.ir.cfg import build_cfg
from tests.analysis.test_dominators import build
from tests.conftest import compile_fn


class TestFindNaturalLoops:
    def test_no_loops(self):
        func = build({"a": ("jump", "b"), "b": ("ret",)})
        assert find_natural_loops(func) == []

    def test_simple_while_loop(self):
        func = build(
            {
                "entry": ("jump", "head"),
                "head": ("branch", "exit"),
                "body": ("jump", "head"),
                "exit": ("ret",),
            }
        )
        (loop,) = find_natural_loops(func)
        assert loop.header == "head"
        assert loop.body == {"head", "body"}
        assert loop.latches == {"body"}
        cfg = build_cfg(func)
        assert loop.exits(cfg) == ["exit"]
        assert loop.exiting_blocks(cfg) == ["head"]

    def test_nested_loops_sorted_innermost_first(self):
        func = build(
            {
                "entry": ("jump", "outer"),
                "outer": ("branch", "exit"),
                "inner": ("branch", "outer_latch"),
                "inner_body": ("jump", "inner"),
                "outer_latch": ("jump", "outer"),
                "exit": ("ret",),
            }
        )
        loops = find_natural_loops(func)
        assert len(loops) == 2
        assert loops[0].header == "inner"
        assert loops[0].depth == 2
        assert loops[1].header == "outer"
        assert loops[1].depth == 1
        assert loops[0].body < loops[1].body

    def test_two_latches_share_one_loop(self):
        func = build(
            {
                "entry": ("jump", "head"),
                "head": ("branch", "exit"),
                "a": ("branch", "latch2"),
                "latch1": ("jump", "head"),
                "latch2": ("jump", "head"),
                "exit": ("ret",),
            }
        )
        (loop,) = find_natural_loops(func)
        assert loop.latches == {"latch1", "latch2"}

    def test_loop_count_on_real_function(self, sum_array_func):
        assert len(find_natural_loops(sum_array_func)) == 1

    def test_self_loop(self):
        func = build(
            {"entry": ("jump", "head"), "head": ("branch", "head"), "exit": ("ret",)}
        )
        (loop,) = find_natural_loops(func)
        assert loop.header == "head"
        assert loop.body == {"head"}
        assert loop.latches == {"head"}
