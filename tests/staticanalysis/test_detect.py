"""Mutation tests: every sanitizer layer must catch its seeded defect.

Each test takes healthy compiled IR, applies one targeted corruption
(drop a def, retarget a branch, widen an operand, misorder phases, ...)
and asserts the sanitizer reports the *right* diagnostic code — not
just any failure.  This pins the catalogue in docs/STATIC_ANALYSIS.md
to behaviour.
"""

import pytest

from repro.core.batch import BatchCompiler
from repro.frontend import compile_source
from repro.ir.function import LocalSlot
from repro.ir.instructions import Assign, Compare, CondBranch, Jump, Return
from repro.ir.operands import BinOp, Const, Reg
from repro.machine.target import DEFAULT_TARGET
from repro.opt import apply_phase, phase_by_id
from repro.robustness.guard import GuardedPhaseRunner
from repro.staticanalysis import (
    FAST,
    FULL,
    EdgeChecker,
    check_contract,
    contract_for,
    contract_registry,
    sanitize_function,
    sanitize_program,
    validate_contracts,
)
from tests.conftest import GCD_SRC, MAXI_SRC, SQUARE_SRC, compile_fn


def codes(findings):
    return {finding.code for finding in findings}


@pytest.fixture
def square():
    return compile_fn(SQUARE_SRC, "square")


@pytest.fixture
def gcd():
    return compile_fn(GCD_SRC, "gcd")


class TestCleanBaseline:
    def test_clean_functions_have_no_findings(self, square, gcd):
        assert sanitize_function(square, DEFAULT_TARGET, mode=FULL) == []
        assert sanitize_function(gcd, DEFAULT_TARGET, mode=FULL) == []

    def test_whole_program_clean(self):
        program = compile_source(GCD_SRC + MAXI_SRC)
        from repro.opt import implicit_cleanup

        for func in program.functions.values():
            implicit_cleanup(func)
        assert sanitize_program(program, DEFAULT_TARGET, mode=FULL) == []


class TestStructuralMutations:
    def test_retarget_branch_to_unknown_label(self, gcd):
        for block in gcd.blocks:
            last = block.insts[-1] if block.insts else None
            if isinstance(last, (Jump, CondBranch)):
                block.insts[-1] = (
                    Jump("__void__")
                    if isinstance(last, Jump)
                    else CondBranch(last.relop, "__void__")
                )
                break
        assert "CFG004" in codes(sanitize_function(gcd, mode=FAST))

    def test_retarget_branch_into_another_function(self):
        program = compile_source(GCD_SRC + MAXI_SRC)
        from repro.opt import implicit_cleanup

        gcd = program.functions["gcd"]
        maxi = program.functions["maxi"]
        implicit_cleanup(gcd)
        implicit_cleanup(maxi)
        # A gcd label maxi does not have (gcd has more blocks, so its
        # high labels are unique to it across the shared L* namespace).
        own = {block.label for block in maxi.blocks}
        foreign = next(
            block.label for block in gcd.blocks if block.label not in own
        )
        for block in maxi.blocks:
            last = block.insts[-1] if block.insts else None
            if isinstance(last, CondBranch):
                block.insts[-1] = CondBranch(last.relop, foreign)
                break
        found = codes(sanitize_function(maxi, program=program, mode=FAST))
        assert "CFG008" in found
        # Without program context the same defect reads as CFG004.
        maxi.invalidate_analyses()
        assert "CFG004" in codes(sanitize_function(maxi, mode=FAST))

    def test_duplicate_block_labels(self, gcd):
        gcd.blocks[1].label = gcd.blocks[0].label
        assert "CFG002" in codes(sanitize_function(gcd, mode=FAST))

    def test_transfer_mid_block(self, gcd):
        target = gcd.blocks[-1].label
        gcd.blocks[0].insts.insert(0, Jump(target))
        assert "CFG003" in codes(sanitize_function(gcd, mode=FAST))

    def test_fallthrough_off_the_end(self, square):
        square.blocks[-1].insts.pop()  # drop the Return
        assert "CFG005" in codes(sanitize_function(square, mode=FAST))


class TestMachineMutations:
    def test_widened_operand(self, square):
        wide = DEFAULT_TARGET.alu_imm_limit * 16
        reg = Reg(square.next_pseudo - 1, pseudo=True)
        square.blocks[0].insts.insert(
            1, Assign(reg, BinOp("add", reg, Const(wide)))
        )
        found = codes(sanitize_function(square, DEFAULT_TARGET, mode=FAST))
        assert "MACH002" in found
        assert "MACH001" not in found

    def test_hardware_register_outside_file(self, square):
        square.blocks[0].insts.insert(
            0, Assign(Reg(99, pseudo=False), Const(1))
        )
        assert "MACH003" in codes(sanitize_function(square, mode=FAST))

    def test_pseudo_after_assignment(self, square):
        BatchCompiler().compile(square)
        assert square.reg_assigned
        square.blocks[0].insts.insert(
            0, Assign(Reg(7, pseudo=True), Const(1))
        )
        assert "MACH004" in codes(sanitize_function(square, mode=FAST))

    def test_never_allocated_pseudo(self, square):
        bogus = square.next_pseudo + 10
        square.blocks[0].insts.insert(
            0, Assign(Reg(bogus, pseudo=True), Const(1))
        )
        assert "MACH005" in codes(sanitize_function(square, mode=FAST))


class TestFrameMutations:
    def test_slot_outside_frame(self, square):
        square.frame["bad"] = LocalSlot(
            "bad", square.frame_size, 1, "int", False, False
        )
        assert "FRAME001" in codes(sanitize_function(square, mode=FAST))

    def test_overlapping_slots(self, square):
        square.frame["x"] = LocalSlot("x", 0, 2, "int", False, False)
        square.frame["y"] = LocalSlot("y", 4, 1, "int", False, False)
        square.frame_size = max(square.frame_size, 8)
        assert "FRAME002" in codes(sanitize_function(square, mode=FAST))


class TestDataflowMutations:
    def test_dropped_def(self, gcd):
        """Deleting the defining assignment of a later-used register
        must surface as a use-before-def."""
        dropped = None
        for block in gcd.blocks:
            for index, inst in enumerate(block.insts):
                if not isinstance(inst, Assign):
                    continue
                defs = inst.defs()
                if len(defs) == 1 and next(iter(defs)).pseudo:
                    dropped = (block, index)
                    break
            if dropped:
                break
        assert dropped is not None
        block, index = dropped
        del block.insts[index]
        gcd.invalidate_analyses()
        found = codes(sanitize_function(gcd, mode=FULL))
        assert "DFA001" in found or "CC001" in found

    def test_condbranch_with_unset_cc(self, gcd):
        # Delete the Compare feeding a conditional branch: the cc is
        # garbage on every path into the branch.
        removed = False
        for block in gcd.blocks:
            if block.insts and isinstance(block.insts[-1], CondBranch):
                for index, inst in enumerate(block.insts):
                    if isinstance(inst, Compare):
                        del block.insts[index]
                        removed = True
                        break
            if removed:
                break
        assert removed
        gcd.invalidate_analyses()
        assert "DFA002" in codes(sanitize_function(gcd, mode=FULL))

    def test_return_value_maybe_uninitialized(self):
        # Zero-argument function: in square/gcd the return-value
        # register doubles as the first argument register, so it is
        # defined at entry and the mutation would be masked.
        func = compile_fn("int five() { int a; a = 5; return a; }", "five")
        assert func.returns_value
        rv = Reg(0, pseudo=False)
        for block in func.blocks:
            block.insts = [
                inst
                for inst in block.insts
                if not (isinstance(inst, Assign) and inst.dst == rv)
            ]
        func.invalidate_analyses()
        assert "CC002" in codes(sanitize_function(func, mode=FULL))

    def test_call_arity_mismatch(self):
        program = compile_source(
            MAXI_SRC + "int two(void) { return maxi(1, 2); }"
        )
        from repro.ir.instructions import Call

        two = program.functions["two"]
        for block in two.blocks:
            for index, inst in enumerate(block.insts):
                if isinstance(inst, Call):
                    block.insts[index] = Call(inst.name, 1)
        two.invalidate_analyses()
        found = codes(sanitize_function(two, program=program, mode=FAST))
        assert "CC004" in found

    def test_call_to_unknown_function(self):
        program = compile_source(MAXI_SRC)
        from repro.ir.instructions import Call

        maxi = program.functions["maxi"]
        maxi.blocks[0].insts.insert(0, Call("__missing__", 0))
        maxi.invalidate_analyses()
        found = codes(sanitize_function(maxi, program=program, mode=FAST))
        assert "CC003" in found


class TestContractMutations:
    def test_registry_is_complete_and_consistent(self):
        assert validate_contracts() == []
        assert len(contract_registry()) == 17

    def test_illegal_phase_order(self, square):
        """Register allocation before instruction selection violates
        regalloc's requires clause."""
        contract = contract_for("k")
        assert "selection-done" in contract.requires
        before = square.clone()
        assert not before.sel_applied
        after = square.clone()
        violations = check_contract("k", before, after)
        assert violations
        found = {v.code for v in violations}
        assert "CON001" in found
        assert any(
            v.code == "CON001" and "selection-done" in v.detail
            for v in violations
        )

    def test_broken_establishes(self, square):
        """The compulsory assignment pass must leave no pseudo
        registers; an ``after`` that still has them violates CON002."""
        before = square.clone()
        after = square.clone()
        after.reg_assigned = True  # claims assignment ran ...
        # ... but pseudo registers survive in the body (unchanged).
        violations = check_contract("assign", before, after)
        assert "CON002" in {v.code for v in violations}

    def test_monotone_invariant_broken(self, square):
        """No phase may silently retract registers-assigned."""
        BatchCompiler().compile(square)
        before = square.clone()
        after = square.clone()
        after.reg_assigned = False
        violations = check_contract("u", before, after)
        assert "CON003" in {v.code for v in violations}


class TestGuardIntegration:
    def test_sanitizer_quarantines_corrupted_phase(self, gcd):
        """A phase whose output drops a def must be quarantined with
        kind 'sanitizer', and the function restored."""

        class _Corrupting:
            id = "u"
            name = "corrupting stand-in"
            requires_assignment = False

        def corrupt(func):
            for block in func.blocks:
                for index, inst in enumerate(block.insts):
                    if isinstance(inst, Assign):
                        defs = inst.defs()
                        if len(defs) == 1 and next(iter(defs)).pseudo:
                            del block.insts[index]
                            func.invalidate_analyses()
                            return True
            return False

        import repro.opt as opt_mod

        checker = EdgeChecker(mode=FULL)
        runner = GuardedPhaseRunner(validate=False, sanitizer=checker)
        phase = _Corrupting()
        original = opt_mod.apply_phase
        before_text = [repr(block.insts) for block in gcd.blocks]

        from unittest import mock

        with mock.patch(
            "repro.robustness.guard.apply_phase",
            lambda func, ph, target: corrupt(func),
        ):
            active = runner.apply(gcd, phase)
        assert original is opt_mod.apply_phase
        assert active is False
        assert len(runner.quarantine) == 1
        record = runner.quarantine.records[0]
        assert record.kind == "sanitizer"
        assert checker.counters["findings"] >= 1
        # The pre-phase instance must be restored bit-for-bit.
        assert [repr(block.insts) for block in gcd.blocks] == before_text

    def test_clean_phase_passes_through(self, gcd):
        checker = EdgeChecker(mode=FULL)
        runner = GuardedPhaseRunner(validate=True, sanitizer=checker)
        applied = 0
        for phase_id in "sckshu":
            if runner.apply(gcd, phase_by_id(phase_id)):
                applied += 1
        assert applied > 0
        assert len(runner.quarantine) == 0
        assert checker.counters["edges"] == applied
        assert checker.counters["findings"] == 0
        assert checker.counters["contract_violations"] == 0


class TestTranslationValidator:
    def test_inverted_relop_is_refuted(self):
        from repro.staticanalysis.transval import TranslationValidator

        program = compile_source(MAXI_SRC)
        from repro.opt import implicit_cleanup

        maxi = program.functions["maxi"]
        implicit_cleanup(maxi)
        corrupted = maxi.clone()
        _INVERT = {
            "lt": "ge", "le": "gt", "gt": "le", "ge": "lt",
            "eq": "ne", "ne": "eq",
        }
        for block in corrupted.blocks:
            for index, inst in enumerate(block.insts):
                if isinstance(inst, CondBranch):
                    block.insts[index] = CondBranch(
                        _INVERT[inst.relop], inst.target
                    )
        corrupted.invalidate_analyses()
        validator = TranslationValidator(program, "maxi")
        verdict = validator.classify(maxi, corrupted)
        assert verdict.status == "refuted"

    def test_identity_edge_is_proved(self):
        from repro.staticanalysis.transval import TranslationValidator

        program = compile_source(MAXI_SRC)
        maxi = program.functions["maxi"]
        verdict = TranslationValidator(program, "maxi").classify(
            maxi, maxi.clone()
        )
        assert verdict.status == "proved"

    def test_real_phase_edge_verifies(self):
        from repro.staticanalysis.transval import TranslationValidator

        program = compile_source(GCD_SRC)
        from repro.opt import implicit_cleanup

        gcd = program.functions["gcd"]
        implicit_cleanup(gcd)
        before = gcd.clone()
        assert apply_phase(gcd, phase_by_id("s"))
        verdict = TranslationValidator(program, "gcd").classify(before, gcd)
        assert verdict.status in ("proved", "tested")
