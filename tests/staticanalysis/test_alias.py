"""Tests for the IR alias oracle and its use in translation validation."""

import pytest

from repro.core.checkpoint import function_from_dict, function_to_dict
from repro.frontend import compile_source
from repro.ir.flat import from_flat, to_flat
from repro.machine.target import FP
from repro.staticanalysis.alias import AliasOracle, oracle_for
from repro.staticanalysis.transval import TranslationValidator, prove_equivalent

_FP_ATOM = ("reg", FP.index, FP.pseudo)


def _frame(offset):
    return ("lin", ((_FP_ATOM, 1),), offset)


def _global(name, offset=0, extra=()):
    terms = ((("sym", name, "hi"), 1), (("sym", name, "lo"), 1)) + tuple(extra)
    return ("lin", terms, offset)


def _compiled():
    source = """
    int g;
    int h[4];
    int f(int n) {
        int x;
        x = n;
        g = n * 2;
        return x;
    }
    int main() { return f(5); }
    """
    program = compile_source(source)
    return program, program.functions["f"]


class TestRegionDisjointness:
    def setup_method(self):
        program, func = _compiled()
        self.oracle = oracle_for(func, program)

    def test_frame_vs_global(self):
        assert self.oracle.distinct(_frame(0), _global("g"))
        assert self.oracle.distinct(_global("g"), _frame(4))

    def test_different_globals(self):
        assert self.oracle.distinct(_global("g"), _global("h"))

    def test_same_global_not_distinct(self):
        assert not self.oracle.distinct(_global("g"), _global("g"))

    def test_out_of_bounds_global_gets_no_claim(self):
        assert not self.oracle.distinct(_frame(0), _global("g", 4))
        assert not self.oracle.distinct(_frame(0), _global("h", 16))

    def test_dynamic_global_index_in_bounds_by_contract(self):
        dynamic = _global("h", 0, extra=(((("reg", 5, True)), 4),))
        assert self.oracle.distinct(_frame(0), dynamic)

    def test_out_of_frame_offset_gets_no_claim(self):
        assert not self.oracle.distinct(_frame(-4), _global("g"))
        assert not self.oracle.distinct(_frame(10_000), _global("g"))

    def test_unknown_global_name_gets_no_region_claim(self):
        # frame offset 8 is in neither frame_private nor (with only 8
        # bytes of frame) provably in bounds... use a non-private slot:
        # without a known extent the region rule cannot fire, and
        # privacy does not apply to non-private offsets.
        assert not self.oracle.distinct(_frame(8), _global("nosuch"))
        # A *private* slot still gets the privacy claim: the unknown
        # symbol is source-built, so its target is a source object.
        assert self.oracle.distinct(_frame(0), _global("nosuch"))


class TestFramePrivacy:
    def setup_method(self):
        program, func = _compiled()
        # Both of f's scalar slots (the spilled param and x) are
        # address-free, so codegen published them as private.
        assert func.mem_facts == {"frame_private": [0, 4]}
        self.oracle = oracle_for(func, program)

    def test_private_slot_vs_global_loaded_pointer(self):
        derived = ("lin", ((("load", 0, _global("g")), 1),), 0)
        assert self.oracle.distinct(_frame(0), derived)

    def test_private_slot_vs_opaque_register(self):
        # A live-in or call-preserved register may hold a planted
        # frame address (spill reload): no claim, ever.
        opaque = ("lin", ((("reg", 5, True), 1),), 0)
        assert not self.oracle.distinct(_frame(0), opaque)

    def test_private_slot_vs_call_result(self):
        derived = ("lin", ((("call", 0, 0), 1),), 0)
        assert not self.oracle.distinct(_frame(0), derived)

    def test_private_slot_vs_load_from_unknown_frame_cell(self):
        # A load from a *non-private* exact frame offset may be a
        # spill reload of an address register.
        spilly = ("lin", ((("load", 0, _frame(8)), 1),), 0)
        assert not self.oracle.distinct(_frame(0), spilly)

    def test_private_slot_vs_load_from_private_cell(self):
        source_value = ("lin", ((("load", 0, _frame(4)), 1),), 0)
        assert self.oracle.distinct(_frame(0), source_value)

    def test_no_facts_degrades_to_layout_only(self):
        bare = AliasOracle(frame_size=8)
        assert not bare.distinct(
            _frame(0), ("lin", ((("load", 0, _global("g")), 1),), 0)
        )


class TestProverIntegration:
    def test_load_hoist_across_global_store_needs_the_oracle(self):
        program, func = _compiled()
        before = func.clone()
        after = func.clone()
        block = after.blocks[0]
        # Hoist the frame-slot load of x (address computation plus the
        # load itself) above the store to g.
        moved = block.insts[13:15]
        del block.insts[13:15]
        block.insts[8:8] = moved
        assert not prove_equivalent(before, after)
        oracle = oracle_for(before, program)
        assert prove_equivalent(before, after, oracle=oracle)

    def test_validator_builds_oracles_by_default(self):
        program, func = _compiled()
        validator = TranslationValidator(program=program, entry="main")
        assert validator._oracle_for(func) is not None
        disabled = TranslationValidator(
            program=program, entry="main", alias_oracle=False
        )
        assert disabled._oracle_for(func) is None

    def test_collapse_validator_stays_structural(self):
        # DAG-collapse verdicts must not depend on source contracts.
        import inspect

        from repro.staticanalysis import canon

        assert "alias_oracle=False" in inspect.getsource(canon)


class TestMemFactsPlumbing:
    def test_checkpoint_round_trip(self):
        __, func = _compiled()
        data = function_to_dict(func)
        assert data["mem_facts"] == {"frame_private": [0, 4]}
        rebuilt = function_from_dict(data)
        assert rebuilt.mem_facts == func.mem_facts

    def test_old_checkpoints_tolerated(self):
        __, func = _compiled()
        data = function_to_dict(func)
        del data["mem_facts"]
        assert function_from_dict(data).mem_facts is None

    def test_clone_and_flat_round_trip(self):
        __, func = _compiled()
        assert func.clone().mem_facts == func.mem_facts
        assert from_flat(to_flat(func)).mem_facts == func.mem_facts

    def test_hand_built_functions_have_no_facts(self):
        from repro.ir.function import Function

        func = Function("bare")
        assert func.mem_facts is None
        oracle = oracle_for(func)
        assert oracle.frame_private == frozenset()
