"""Property-based tests for the sanitizer and translation validator.

Two invariants the static-analysis layer stakes its soundness on:

- the sanitizer never cries wolf: a legally compiled function is
  finding-free, and stays finding-free after *any* legal phase
  application — whatever the phase, whatever the order;
- the translation validator never certifies a lie: an edge the VM can
  refute (the two sides compute different values on some input) is
  never classified ``proved``.
"""

from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.frontend import compile_source
from repro.ir.function import Program
from repro.ir.instructions import Assign
from repro.ir.operands import Const
from repro.machine.target import DEFAULT_TARGET
from repro.opt import apply_phase, implicit_cleanup, phase_by_id
from repro.staticanalysis import FULL, sanitize_function
from repro.staticanalysis.transval import PROVED, REFUTED, VERDICTS, TranslationValidator
from repro.vm import Interpreter
from tests.test_properties import phase_sequences, programs

_SETTINGS = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _compiled(source):
    program = compile_source(source)
    func = program.function("f")
    implicit_cleanup(func)
    return program, func


def _spliced(program, func):
    spliced = Program()
    spliced.globals = program.globals
    spliced.functions = dict(program.functions)
    spliced.functions["f"] = func
    return spliced


def _value(program, func, vector):
    return Interpreter(_spliced(program, func)).run("f", vector).value


@settings(max_examples=25, **_SETTINGS)
@given(programs(), phase_sequences)
def test_sanitizer_clean_across_legal_phase_applications(source, sequence):
    """No legal phase application may introduce a sanitizer finding."""
    program, func = _compiled(source)
    assert (
        sanitize_function(func, DEFAULT_TARGET, program=program, mode=FULL)
        == []
    )
    for phase_id in sequence:
        apply_phase(func, phase_by_id(phase_id))
        findings = sanitize_function(
            func, DEFAULT_TARGET, program=program, mode=FULL
        )
        assert findings == [], (phase_id, findings)


@settings(max_examples=15, **_SETTINGS)
@given(programs(), phase_sequences, st.integers(-20, 20), st.integers(-20, 20))
@example(
    # Regression: register allocation used to let two frame slots share
    # a register across a *dead* store (the interference analysis only
    # saw live-after slots), so the materialized dead store clobbered
    # the other slot's live value — a miscompilation the validator
    # correctly refuted.  See RegisterAllocation._interference.
    source="int f(int x, int y) {\n    int a = x;\n    int b = y;\n"
    "    int c = 1;\n    int i0;\n    int i1;\n    int i2;\n    b = x;\n"
    "    return a + b * 3 + c * 7;\n}\n",
    sequence=["s", "k"],
    x=2,
    y=3,
).via("discovered failure")
def test_proved_edges_agree_with_vm(source, sequence, x, y):
    """A ``proved`` verdict is a promise: VM co-execution must agree.

    Legal edges must also never be refuted — the phases preserve
    semantics, and the validator may not claim otherwise.
    """
    program, func = _compiled(source)
    validator = TranslationValidator(program, "f")
    for phase_id in sequence:
        before = func.clone()
        if not apply_phase(func, phase_by_id(phase_id)):
            continue
        verdict = validator.classify(before, func)
        assert verdict.status in VERDICTS
        assert verdict.status != REFUTED, (phase_id, verdict)
        if verdict.status == PROVED:
            assert _value(program, before, (x, y)) == _value(
                program, func, (x, y)
            ), (phase_id, verdict)


@settings(max_examples=25, **_SETTINGS)
@given(programs(), st.integers(0, 10**6), st.integers(1, 97))
def test_never_proved_on_vm_refuted_edge(source, pick, delta):
    """Corrupt one constant; if the VM can tell the difference, the
    validator must not classify the edge ``proved``."""
    program, func = _compiled(source)
    after = func.clone()
    sites = [
        (block, index)
        for block in after.blocks
        for index, inst in enumerate(block.insts)
        if isinstance(inst, Assign) and isinstance(inst.src, Const)
    ]
    if not sites:
        return  # nothing to corrupt in this draw
    block, index = sites[pick % len(sites)]
    inst = block.insts[index]
    block.insts[index] = Assign(inst.dst, Const(inst.src.value + delta))
    after.invalidate_analyses()

    vectors = ((0, 0), (1, 1), (2, 3), (-5, 7))
    refuted_by_vm = any(
        _value(program, func, vector) != _value(program, after, vector)
        for vector in vectors
    )
    verdict = TranslationValidator(program, "f").classify(func, after)
    if refuted_by_vm:
        assert verdict.status != PROVED, verdict
