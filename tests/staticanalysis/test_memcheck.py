"""Tests for the MEM0xx memory-access sanitizer checks."""

import pytest

from repro.frontend import compile_source
from repro.ir.function import Function, GlobalVar, Program
from repro.ir.instructions import Assign, Compare, CondBranch, Jump, Return
from repro.ir.operands import BinOp, Const, Mem, Reg, Sym
from repro.machine.target import FP, RV
from repro.programs import PROGRAMS, compile_benchmark
from repro.staticanalysis import sanitize_function
from repro.staticanalysis.memcheck import CATALOG, memory_findings


def _codes(findings):
    return sorted({finding.code for finding in findings})


def _func_with(insts, locals_words=2):
    func = Function("t")
    for index in range(locals_words):
        func.add_local(f"x{index}", 1, "int", False, False)
    block = func.add_block("L0")
    block.insts.extend(insts)
    block.insts.append(Assign(Reg(RV.index, pseudo=False), Const(0)))
    block.insts.append(Return())
    return func


def _pseudo(index):
    return Reg(index, pseudo=True)


class TestWildAccesses:
    def test_mem001_load_from_constant_address(self):
        r = _pseudo(20)
        func = _func_with([Assign(r, Mem(Const(0)))])
        assert "MEM001" in _codes(memory_findings(func))

    def test_mem002_store_to_constant_address(self):
        func = _func_with([Assign(Mem(Const(64)), Const(7))])
        assert "MEM002" in _codes(memory_findings(func))

    def test_constant_address_via_arithmetic(self):
        r = _pseudo(20)
        insts = [
            Assign(r, BinOp("add", Const(40), Const(24))),
            Assign(Mem(r), Const(1)),
        ]
        assert "MEM002" in _codes(memory_findings(_func_with(insts)))


class TestAlignment:
    def test_mem003_misaligned_frame_access(self):
        r = _pseudo(20)
        insts = [
            Assign(r, BinOp("add", FP, Const(2))),
            Assign(Mem(r), Const(1)),
        ]
        assert "MEM003" in _codes(memory_findings(_func_with(insts)))

    def test_aligned_frame_access_is_clean(self):
        r = _pseudo(20)
        insts = [
            Assign(r, BinOp("add", FP, Const(4))),
            Assign(Mem(r), Const(1)),
        ]
        assert memory_findings(_func_with(insts)) == []


class TestGlobalBounds:
    def _program(self, words=2):
        program = Program()
        program.add_global(GlobalVar("garr", words, "int", [0] * words, True))
        return program

    def _global_access(self, offset):
        hi, base, addr = _pseudo(20), _pseudo(21), _pseudo(22)
        return [
            Assign(hi, Sym("garr", "hi")),
            Assign(base, BinOp("add", hi, Sym("garr", "lo"))),
            Assign(addr, BinOp("add", base, Const(offset))),
            Assign(Mem(addr), Const(7)),
        ]

    def test_mem004_past_the_end(self):
        program = self._program(words=2)
        func = _func_with(self._global_access(8))
        findings = memory_findings(func, program=program)
        assert "MEM004" in _codes(findings)

    def test_mem004_negative_offset(self):
        program = self._program(words=2)
        func = _func_with(self._global_access(-4))
        assert "MEM004" in _codes(memory_findings(func, program=program))

    def test_in_bounds_global_is_clean(self):
        program = self._program(words=2)
        func = _func_with(self._global_access(4))
        assert memory_findings(func, program=program) == []

    def test_unknown_global_not_flagged(self):
        # No program context: extent unknown, no claim.
        func = _func_with(self._global_access(8))
        assert memory_findings(func) == []


class TestMustSemantics:
    def test_join_of_differing_values_is_unknown(self):
        """An address that is wild on only one path must not be
        flagged — findings are must-facts, not may-facts."""
        func = Function("t")
        func.add_local("x", 1, "int", False, False)
        r = _pseudo(20)
        entry = func.add_block("L0")
        then = func.add_block("L1")
        other = func.add_block("L2")
        join = func.add_block("L3")
        entry.insts.append(Compare(Reg(0, pseudo=False), Const(0)))
        entry.insts.append(CondBranch("eq", "L1"))
        entry.insts.append(Jump("L2"))
        then.insts.append(Assign(r, Const(0)))  # wild on this path
        then.insts.append(Jump("L3"))
        other.insts.append(Assign(r, FP))       # valid on this path
        other.insts.append(Jump("L3"))
        join.insts.append(Assign(Mem(r), Const(1)))
        join.insts.append(Assign(Reg(RV.index, pseudo=False), Const(0)))
        join.insts.append(Return())
        assert memory_findings(func) == []

    def test_loop_reaches_fixpoint(self):
        source = """
        int a[8];
        int f(int n) {
            int i;
            int total;
            total = 0;
            for (i = 0; i < n; i++) {
                total += a[i & 7];
            }
            return total;
        }
        int main() { return f(5); }
        """
        program = compile_source(source)
        for func in program.functions.values():
            assert memory_findings(func, program=program) == []


class TestIntegration:
    def test_full_mode_includes_memory_findings(self):
        func = _func_with([Assign(_pseudo(20), Mem(Const(0)))])
        full = sanitize_function(func, mode="full")
        assert "MEM001" in _codes(full)
        fast = sanitize_function(func, mode="fast")
        assert "MEM001" not in _codes(fast)

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_seed_benchmarks_are_clean(self, name):
        program = compile_benchmark(name)
        for func in program.functions.values():
            assert memory_findings(func, program=program) == []

    def test_catalog_matches_sanitize_docstring(self):
        from repro.staticanalysis import sanitize

        for code, summary in CATALOG.items():
            assert code in sanitize.__doc__
