"""Semantic canonicalization: keys, proofs, and the collapser protocol.

The collapse machinery stakes soundness on two properties tested here:

- the canonical summary really is canonical — forms the symbolic
  evaluator normalizes (commutative operand order, linear combinations,
  provably-overwritten stores) share one key, genuinely different
  computations do not;
- a proved equivalence is never a lie: whenever
  :func:`prove_semantic_equivalent` says yes, the VM agrees on every
  recorded input vector.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.core import checkpoint as ckpt
from repro.frontend import compile_source
from repro.ir.function import Program
from repro.opt import apply_phase, implicit_cleanup, phase_by_id
from repro.staticanalysis.canon import (
    SemanticCollapser,
    prove_semantic_equivalent,
    semantic_key,
)
from repro.vm import Interpreter
from tests.test_properties import phase_sequences, programs

_SETTINGS = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _fn(source, name="f"):
    program = compile_source(source)
    func = program.function(name)
    implicit_cleanup(func)
    return program, func


class TestSemanticKey:
    def test_commutative_operands_share_key(self):
        _, a = _fn("int f(int x, int y) { return x + y; }")
        _, b = _fn("int f(int x, int y) { return y + x; }")
        assert semantic_key(a) is not None
        assert semantic_key(a) == semantic_key(b)

    def test_linear_forms_share_key(self):
        _, a = _fn("int f(int x) { return x * 4; }")
        _, b = _fn("int f(int x) { return x + x + x + x; }")
        assert semantic_key(a) == semantic_key(b)

    def test_provably_overwritten_store_is_normalized_away(self):
        _, a = _fn("int g; int f(int x) { g = 1; g = 2; return x; }")
        _, b = _fn("int g; int f(int x) { g = 2; return x; }")
        assert semantic_key(a) is not None
        assert semantic_key(a) == semantic_key(b)

    def test_call_in_window_blocks_dead_store_drop(self):
        src = "int g; int h(void){ return 0; } "
        _, a = _fn(src + "int f(int x) { g = 1; h(); g = 2; return x; }")
        _, b = _fn(src + "int f(int x) { h(); g = 2; return x; }")
        # h() may observe g == 1; the logs must stay distinguishable.
        assert semantic_key(a) != semantic_key(b)

    def test_different_computations_differ(self):
        _, a = _fn("int f(int x) { return x + 1; }")
        _, b = _fn("int f(int x) { return x + 2; }")
        assert semantic_key(a) != semantic_key(b)

    def test_key_survives_clone_and_checkpoint_round_trip(self):
        _, func = _fn("int f(int x, int y) { if (x > y) return x; return y; }")
        key = semantic_key(func)
        assert key == semantic_key(func.clone())
        restored = ckpt.function_from_dict(ckpt.function_to_dict(func))
        assert key == semantic_key(restored)


class TestProof:
    def test_equivalent_pair_proves(self):
        _, a = _fn("int f(int x, int y) { return x + y; }")
        _, b = _fn("int f(int x, int y) { return y + x; }")
        assert prove_semantic_equivalent(a, b)

    def test_reflexive(self):
        _, func = _fn("int f(int x) { int i0; int s = 0; "
                      "for (i0 = 0; i0 < x; i0++) s += i0; return s; }")
        assert prove_semantic_equivalent(func, func.clone())

    def test_different_values_do_not_prove(self):
        _, a = _fn("int f(int x) { return x + 1; }")
        _, b = _fn("int f(int x) { return x + 2; }")
        assert not prove_semantic_equivalent(a, b)

    def test_phase_legality_mismatch_never_proves(self):
        _, a = _fn("int f(int x) { return x + 1; }")
        b = a.clone()
        b.reg_assigned = True
        # Identical code, different attemptable-phase set: a merge
        # would change which phases the node offers.  Must stay split.
        assert not prove_semantic_equivalent(a, b)

    @settings(max_examples=15, **_SETTINGS)
    @given(programs(), phase_sequences, phase_sequences)
    def test_proof_is_never_refuted_by_the_vm(self, source, seq_a, seq_b):
        """prove_semantic_equivalent => the VM agrees on every vector."""
        program, base = _fn(source)
        a = base.clone()
        b = base.clone()
        for phase_id in seq_a:
            apply_phase(a, phase_by_id(phase_id))
        for phase_id in seq_b:
            apply_phase(b, phase_by_id(phase_id))
        if not prove_semantic_equivalent(a, b):
            return
        for vector in [(0, 0), (1, -2), (7, 3)]:
            values = []
            for func in (a, b):
                spliced = Program()
                spliced.globals = program.globals
                spliced.functions = dict(program.functions)
                spliced.functions["f"] = func
                values.append(Interpreter(spliced).run("f", vector).value)
            assert values[0] == values[1], (vector, seq_a, seq_b)


class TestCollapserProtocol:
    def test_register_first_wins(self):
        collapser = SemanticCollapser()
        _, func = _fn("int f(int x) { return x; }")
        assert collapser.register("digest", 0, func)
        assert not collapser.register("digest", 5, func)
        assert collapser.index == {"digest": 0}
        assert 5 not in collapser.reps

    def test_forget_undoes_register(self):
        collapser = SemanticCollapser()
        _, func = _fn("int f(int x) { return x; }")
        collapser.register("digest", 3, func)
        collapser.forget("digest", 3)
        assert collapser.index == {}
        assert collapser.reps == {}

    def test_forget_leaves_other_owner_alone(self):
        collapser = SemanticCollapser()
        _, func = _fn("int f(int x) { return x; }")
        collapser.register("digest", 1, func)
        collapser.forget("digest", 2)
        assert collapser.index == {"digest": 1}

    def test_state_dict_round_trip(self):
        collapser = SemanticCollapser()
        _, func = _fn("int f(int x) { return x * 3; }")
        digest = collapser.digest_of(func)
        collapser.register(digest, 0, func)
        collapser.stats["candidates"] = 7
        state = collapser.state_dict()
        restored = SemanticCollapser()
        restored.restore(state)
        assert restored.index == collapser.index
        assert restored.stats["candidates"] == 7
        rep = restored.rep_function(0)
        assert rep is not None
        assert semantic_key(rep) == digest

    def test_uncanonical_instances_never_index(self):
        collapser = SemanticCollapser()
        assert not collapser.register(None, 0, None)
        assert collapser.index == {}
