"""The cross-run transition memo through the parallel service.

A warm memo must be a pure accelerator: every DAG, dormant set and
counter comes out bit-identical to a cold run — serial, sharded, and
store-served alike.
"""

from __future__ import annotations

import os

import pytest

from repro.core.enumeration import EnumerationConfig
from repro.core.memo import TransitionMemo
from repro.parallel import ParallelConfig, SpaceStore, enumerate_space_parallel
from tests.parallel.conftest import dag_snapshot


@pytest.fixture()
def store(tmp_path):
    return SpaceStore(str(tmp_path / "spaces"))


def _drop_space_entries(store):
    """Delete the full-space cache entries, keeping only the memo —
    forces the next run to re-enumerate through the memo fast path."""
    for name in os.listdir(store.root):
        if not name.startswith("memo-"):
            os.unlink(os.path.join(store.root, name))


def test_memo_written_alongside_space_entries(store, case_functions):
    func = case_functions[("sha", "rol")]
    enumerate_space_parallel(
        func, EnumerationConfig(), ParallelConfig(jobs=2, store=store)
    )
    memo_file = os.path.basename(store.memo_path(EnumerationConfig()))
    assert memo_file in os.listdir(store.root)
    # memo files are not space entries
    assert len(store) == 1
    memo = store.load_memo(EnumerationConfig())
    assert len(memo) > 0


def test_memo_warm_run_bit_identical(store, case_functions, serial_results):
    for case in (("sha", "rol"), ("jpeg", "descale")):
        func = case_functions[case]
        enumerate_space_parallel(
            func, EnumerationConfig(), ParallelConfig(jobs=2, store=store)
        )
        _drop_space_entries(store)
        warm_store = SpaceStore(store.root)
        warm = enumerate_space_parallel(
            func, EnumerationConfig(), ParallelConfig(jobs=2, store=warm_store)
        )
        serial = serial_results[case]
        assert warm.resumed_from is None  # enumerated, not cache-served
        assert dag_snapshot(warm.dag) == dag_snapshot(serial.dag)
        assert warm.attempted_phases == serial.attempted_phases
        assert warm.phases_applied == serial.phases_applied
        assert warm.completed
        # the Table 4/5/6 interaction matrices come out identical too
        from repro.core.interactions import analyze_interactions

        warm_tables = analyze_interactions([warm])
        serial_tables = analyze_interactions([serial])
        assert warm_tables.format_enabling() == serial_tables.format_enabling()
        assert warm_tables.format_disabling() == serial_tables.format_disabling()
        assert (
            warm_tables.format_independence()
            == serial_tables.format_independence()
        )


def test_memo_round_trips_through_disk(store, case_functions, serial_results):
    func = case_functions[("fft", "fcos")]
    enumerate_space_parallel(
        func, EnumerationConfig(), ParallelConfig(jobs=1, store=store)
    )
    memo = store.load_memo(EnumerationConfig())
    assert len(memo) > 0
    # A serial run on the deserialized memo must also be identical —
    # that is the serial/parallel/warm equivalence triangle.
    from repro.core.enumeration import enumerate_space

    warm = enumerate_space(func, EnumerationConfig(memo=memo))
    serial = serial_results[("fft", "fcos")]
    assert dag_snapshot(warm.dag) == dag_snapshot(serial.dag)
    assert warm.attempted_phases == serial.attempted_phases


def test_memo_is_per_config(store):
    assert store.memo_path(EnumerationConfig()) != store.memo_path(
        EnumerationConfig(exact=True)
    )
    assert store.memo_path(EnumerationConfig()) != store.memo_path(
        EnumerationConfig(validate=True)
    )


def test_corrupt_memo_is_a_cold_cache(store):
    path = store.memo_path(EnumerationConfig())
    with open(path, "w") as handle:
        handle.write("{ not json")
    memo = store.load_memo(EnumerationConfig())
    assert isinstance(memo, TransitionMemo)
    assert len(memo) == 0


def test_fault_injected_runs_never_save_a_memo(store):
    from repro.robustness.faults import FaultInjector

    config = EnumerationConfig(fault_injector=FaultInjector(seed=1, rate=0.5))
    assert store.save_memo(config, TransitionMemo()) is None
