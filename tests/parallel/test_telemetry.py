"""Telemetry layer: JSONL event log, gauges, status line, ETA."""

from __future__ import annotations

import io
import json

from repro.parallel import ProgressReporter


def test_jsonl_event_log(tmp_path):
    path = tmp_path / "events.jsonl"
    with ProgressReporter(jsonl_path=str(path)) as reporter:
        reporter.event("job_start", functions=3, jobs=2)
        reporter.event("shard_done", shard=0, nodes=5, attempts=70)
        reporter.event("function_done", function="f", wall=1.5)
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert [event["event"] for event in events] == [
        "job_start",
        "shard_done",
        "function_done",
    ]
    assert all("t" in event for event in events)
    assert events[1]["nodes"] == 5


def test_gauges_follow_events():
    reporter = ProgressReporter()
    reporter.event("job_start", functions=4, jobs=2)
    reporter.event("cache_hit", function="a")
    reporter.event("shard_done", nodes=10, attempts=150)
    reporter.event("lease_reclaim", shard=3)
    reporter.event("function_done", function="b", wall=2.0)
    assert reporter.functions_total == 4
    assert reporter.workers == 2
    assert reporter.cache_hits == 1
    assert reporter.functions_done == 2  # cache hit + function_done
    assert reporter.attempts == 150
    assert reporter.reclaims == 1
    reporter.gauges(queue_depth=7, busy=2, instances=42)
    assert reporter.queue_depth == 7
    assert reporter.instances == 42


def test_status_line_content():
    reporter = ProgressReporter()
    reporter.event("job_start", functions=2, jobs=4)
    reporter.event("cache_hit", function="a")
    reporter.gauges(queue_depth=3, busy=4, instances=100)
    line = reporter.status_line()
    assert "fns 1/2" in line
    assert "workers 4/4" in line
    assert "queue 3" in line
    assert "100 inst" in line
    assert "1 cached" in line


def test_tty_rendering_only_when_tty():
    quiet = io.StringIO()
    reporter = ProgressReporter(stream=quiet)
    reporter.tick(force=True)
    assert quiet.getvalue() == ""  # not a TTY: no escape noise

    loud = io.StringIO()
    forced = ProgressReporter(stream=loud, force_tty=True)
    forced.event("job_start", functions=1, jobs=1)
    forced.tick(force=True)
    forced.close()
    assert loud.getvalue().startswith("\r")
    assert loud.getvalue().endswith("\n")


def test_eta_appears_after_first_function():
    reporter = ProgressReporter()
    reporter.event("job_start", functions=4, jobs=2)
    assert reporter.eta_seconds() is None
    reporter.event("function_done", function="a", wall=2.0)
    reporter.gauges(queue_depth=0, busy=2, instances=0)
    eta = reporter.eta_seconds()
    assert eta is not None
    assert eta == 3 * 2.0 / 2  # 3 functions left, 2 busy workers
