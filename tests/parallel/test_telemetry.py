"""Telemetry layer: JSONL event log, gauges, status line, ETA."""

from __future__ import annotations

import io
import json
import os
import shutil
from collections import deque

from repro.parallel import ProgressReporter
from repro.parallel.telemetry import replay_journal


def test_jsonl_event_log(tmp_path):
    path = tmp_path / "events.jsonl"
    with ProgressReporter(jsonl_path=str(path)) as reporter:
        reporter.event("job_start", functions=3, jobs=2)
        reporter.event("shard_done", shard=0, nodes=5, attempts=70)
        reporter.event("function_done", function="f", wall=1.5)
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert [event["event"] for event in events] == [
        "job_start",
        "shard_done",
        "function_done",
    ]
    assert all("t" in event for event in events)
    assert events[1]["nodes"] == 5


def test_gauges_follow_events():
    reporter = ProgressReporter()
    reporter.event("job_start", functions=4, jobs=2)
    reporter.event("cache_hit", function="a")
    reporter.event("shard_done", nodes=10, attempts=150)
    reporter.event("lease_reclaim", shard=3)
    reporter.event("function_done", function="b", wall=2.0)
    assert reporter.functions_total == 4
    assert reporter.workers == 2
    assert reporter.cache_hits == 1
    # enumerated and cache-satisfied functions are separate gauges;
    # total_done is their sum (what the status line shows)
    assert reporter.functions_done == 1
    assert reporter.cached_done == 1
    assert reporter.total_done == 2
    assert reporter.attempts == 150
    assert reporter.reclaims == 1
    reporter.gauges(queue_depth=7, busy=2, instances=42)
    assert reporter.queue_depth == 7
    assert reporter.instances == 42


def test_status_line_content():
    reporter = ProgressReporter()
    reporter.event("job_start", functions=2, jobs=4)
    reporter.event("cache_hit", function="a")
    reporter.gauges(queue_depth=3, busy=4, instances=100)
    line = reporter.status_line()
    assert "fns 1/2" in line
    assert "workers 4/4" in line
    assert "queue 3" in line
    assert "100 inst" in line
    assert "1 cached" in line


def test_tty_rendering_only_when_tty():
    quiet = io.StringIO()
    reporter = ProgressReporter(stream=quiet)
    reporter.tick(force=True)
    assert quiet.getvalue() == ""  # not a TTY: no escape noise

    loud = io.StringIO()
    forced = ProgressReporter(stream=loud, force_tty=True)
    forced.event("job_start", functions=1, jobs=1)
    forced.tick(force=True)
    forced.close()
    assert loud.getvalue().startswith("\r")
    assert loud.getvalue().endswith("\n")


def test_eta_appears_after_first_function():
    reporter = ProgressReporter()
    reporter.event("job_start", functions=4, jobs=2)
    assert reporter.eta_seconds() is None
    reporter.event("function_done", function="a", wall=2.0)
    reporter.gauges(queue_depth=0, busy=2, instances=0)
    eta = reporter.eta_seconds()
    assert eta is not None
    assert eta == 3 * 2.0 / 2  # 3 functions left, 2 busy workers


def test_eta_on_warm_store_run():
    """Store cache hits must not bias the ETA: a cached function is off
    the remaining-work ledger but contributes no wall sample (the
    resumed/warm-store regression)."""
    reporter = ProgressReporter()
    reporter.event("job_start", functions=4, jobs=1)
    reporter.event("cache_hit", function="a")
    reporter.event("cache_hit", function="b")
    assert reporter.eta_seconds() is None  # no enumerated function yet
    reporter.event("function_done", function="c", wall=2.0)
    reporter.gauges(queue_depth=0, busy=1, instances=0)
    # one function left to really enumerate, at 2.0s average
    assert reporter.eta_seconds() == 2.0
    reporter.event("cache_hit", function="d")
    assert reporter.eta_seconds() == 0.0
    assert reporter.functions_done == 1
    assert reporter.cached_done == 3
    assert reporter.total_done == 4


def test_throughput_is_pure_read():
    """Reading the rate must not mutate the sample window (rendering or
    logging extra times used to append samples and skew the rate)."""
    reporter = ProgressReporter()
    reporter.gauges(queue_depth=0, busy=1, instances=0)
    reporter._start -= 2.0  # age the first sample by two seconds
    reporter.gauges(queue_depth=0, busy=1, instances=100)
    before = list(reporter._samples)
    first = reporter.throughput()
    for _ in range(5):
        assert reporter.throughput() == first
    assert list(reporter._samples) == before
    assert first > 0.0


def test_sample_window_is_pruned_deque():
    reporter = ProgressReporter()
    assert isinstance(reporter._samples, deque)
    reporter._samples.append((0.0, 0))
    reporter._start -= 60.0  # now well past the window
    reporter.gauges(queue_depth=0, busy=1, instances=10)
    assert all(t > 1.0 for t, _n in reporter._samples)


def test_status_line_width_follows_terminal(monkeypatch):
    stream = io.StringIO()
    reporter = ProgressReporter(stream=stream, force_tty=True)
    reporter.event("job_start", functions=1, jobs=1)
    monkeypatch.setattr(
        shutil, "get_terminal_size", lambda: os.terminal_size((120, 24))
    )
    reporter.tick(force=True)
    assert len(stream.getvalue()) == 1 + 119  # \r + width-1 columns
    # absurdly narrow terminals get the floor, not a truncated mess
    monkeypatch.setattr(
        shutil, "get_terminal_size", lambda: os.terminal_size((20, 24))
    )
    narrow = io.StringIO()
    other = ProgressReporter(stream=narrow, force_tty=True)
    other.tick(force=True)
    assert len(narrow.getvalue()) == 1 + 40


def test_jsonl_log_is_utf8(tmp_path):
    path = tmp_path / "events.jsonl"
    with ProgressReporter(jsonl_path=str(path)) as reporter:
        reporter.event("function_done", function="smålänning", wall=0.1)
    record = json.loads(path.read_text(encoding="utf-8"))
    assert record["function"] == "smålänning"


def test_replay_journal_reconstructs_gauges(tmp_path):
    path = tmp_path / "events.jsonl"
    with ProgressReporter(jsonl_path=str(path)) as reporter:
        reporter.event("job_start", functions=3, jobs=2)
        reporter.event("cache_hit", function="a")
        reporter.event("shard_done", shard=0, nodes=5, attempts=70)
        reporter.event("function_done", function="b", wall=1.5)
    replayed = replay_journal(str(path))
    assert replayed.functions_total == 3
    assert replayed.functions_done == 1
    assert replayed.cached_done == 1
    assert replayed.total_done == 2
    assert replayed.attempts == 70
