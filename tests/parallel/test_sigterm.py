"""SIGTERM drains a live parallel run into serially-resumable state.

The coordinator installs a SIGTERM handler for the duration of the
pool drive: an orchestrator shutdown takes the exact KeyboardInterrupt
path — every in-flight function job writes a level checkpoint in the
PR-1 serial format, the pool is torn down (hung workers included), and
a later *serial* resume completes to a bit-identical DAG.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.enumeration import EnumerationConfig, enumerate_space
from tests.parallel.conftest import bench_function, dag_snapshot

#: exit code the driver script uses to say "KeyboardInterrupt reached
#: the top" — i.e. the SIGTERM was translated, not delivered raw
GRACEFUL_EXIT = 42

_DRIVER = """
import sys
from repro.core.enumeration import EnumerationConfig
from repro.frontend import compile_source
from repro.opt import implicit_cleanup
from repro.parallel.coordinator import (
    EnumerationRequest,
    ParallelConfig,
    ParallelEnumerator,
)
from repro.programs import PROGRAMS

run_dir = sys.argv[1]
func = compile_source(PROGRAMS["sha"].source).functions["rol"].clone()
implicit_cleanup(func)
enumerator = ParallelEnumerator(
    EnumerationConfig(),
    ParallelConfig(
        jobs=1,
        run_dir=run_dir,
        lease_timeout=300.0,
        # The lone worker wedges after 10 node expansions, so the run
        # is reliably in flight (never finished) when SIGTERM lands.
        chaos={"worker": 0, "after_nodes": 10, "kind": "hang"},
    ),
)
try:
    enumerator.enumerate([EnumerationRequest("rol", func)])
except KeyboardInterrupt:
    sys.exit(42)
sys.exit(0)
"""


def _wait_for_journal(path: str, needles, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            with open(path, encoding="utf-8") as stream:
                for line in stream:
                    if all(needle in line for needle in needles):
                        return
        time.sleep(0.05)
    raise AssertionError(f"journal never showed {needles}")


def test_sigterm_checkpoints_and_serial_resume_is_bit_identical(tmp_path):
    run_dir = str(tmp_path / "run")
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [sys.executable, "-c", _DRIVER, run_dir],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        # Progress has merged through level 1 once level 2 is planned,
        # so the forced checkpoint will carry real partial state.
        _wait_for_journal(
            os.path.join(run_dir, "events.jsonl"),
            ['"event": "level_start"', '"level": 2'],
        )
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == GRACEFUL_EXIT, (
        proc.returncode,
        stdout.decode(),
        stderr.decode(),
    )

    checkpoint = os.path.join(run_dir, "rol.ckpt.json")
    assert os.path.exists(checkpoint), "drain did not write a level checkpoint"

    func = bench_function("sha", "rol")
    reference = enumerate_space(func, EnumerationConfig())
    resumed = enumerate_space(
        func, EnumerationConfig(checkpoint_path=checkpoint, resume=True)
    )
    assert resumed.completed
    assert resumed.resumed_from == checkpoint
    assert dag_snapshot(resumed.dag) == dag_snapshot(reference.dag)
