"""Shared fixtures for the parallel enumeration tests.

Serial baselines are session-scoped: each is enumerated once and every
equivalence test compares against the same reference snapshot.
"""

from __future__ import annotations

import pytest

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.frontend import compile_source
from repro.opt import implicit_cleanup
from repro.programs import PROGRAMS

#: the three bundled functions the equivalence matrix runs on — small
#: enough to enumerate in well under a second each, and together they
#: exercise merges, multi-parent nodes and several levels of depth
CASES = (("sha", "rol"), ("jpeg", "descale"), ("fft", "fcos"))


def bench_function(bench: str, name: str):
    func = compile_source(PROGRAMS[bench].source).functions[name].clone()
    implicit_cleanup(func)
    return func


def dag_snapshot(dag):
    """Everything "bit-identical" promises: ids, keys, levels, sizes,
    edges, dormant sets, expansion flags and in-edge order."""
    return tuple(
        (
            node_id,
            dag.nodes[node_id].key,
            dag.nodes[node_id].level,
            dag.nodes[node_id].num_insts,
            dag.nodes[node_id].cf_crc,
            tuple(sorted(dag.nodes[node_id].active.items())),
            tuple(sorted(dag.nodes[node_id].dormant)),
            dag.nodes[node_id].expanded,
            tuple(dag.nodes[node_id].parents),
        )
        for node_id in range(len(dag.nodes))
    )


@pytest.fixture(scope="session")
def case_functions():
    return {case: bench_function(*case) for case in CASES}


@pytest.fixture(scope="session")
def serial_results(case_functions):
    return {
        case: enumerate_space(func, EnumerationConfig())
        for case, func in case_functions.items()
    }
