"""The persistent merged-space store: hits, misses, and safety rules."""

from __future__ import annotations

import pytest

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.parallel import ParallelConfig, SpaceStore, enumerate_space_parallel
from repro.parallel.store import cacheable, store_signature
from repro.robustness.faults import FaultInjector
from tests.parallel.conftest import dag_snapshot


@pytest.fixture()
def store(tmp_path):
    return SpaceStore(str(tmp_path / "spaces"))


def test_second_run_is_a_cache_hit(store, case_functions, serial_results):
    func = case_functions[("sha", "rol")]
    cold = enumerate_space_parallel(
        func, EnumerationConfig(), ParallelConfig(jobs=2, store=store)
    )
    assert cold.resumed_from is None
    assert len(store) == 1
    warm = enumerate_space_parallel(
        func, EnumerationConfig(), ParallelConfig(jobs=2, store=store)
    )
    assert warm.resumed_from is not None
    assert warm.resumed_from.startswith("store:")
    assert store.hits == 1
    serial = serial_results[("sha", "rol")]
    assert dag_snapshot(warm.dag) == dag_snapshot(serial.dag)
    assert warm.attempted_phases == serial.attempted_phases
    assert warm.completed


def test_space_shaping_config_splits_entries(store, case_functions):
    """exact/validate/difftest/remap key distinct cache entries."""
    func = case_functions[("jpeg", "descale")]
    enumerate_space_parallel(
        func, EnumerationConfig(), ParallelConfig(jobs=1, store=store)
    )
    result = enumerate_space_parallel(
        func, EnumerationConfig(exact=True), ParallelConfig(jobs=1, store=store)
    )
    assert result.resumed_from is None  # miss: different signature
    assert len(store) == 2
    assert store_signature(EnumerationConfig()) != store_signature(
        EnumerationConfig(validate=True)
    )
    assert store_signature(EnumerationConfig()) != store_signature(
        EnumerationConfig(difftest=True)
    )


def test_aborted_runs_are_never_stored(store, case_functions):
    func = case_functions[("sha", "rol")]
    result = enumerate_space_parallel(
        func,
        EnumerationConfig(max_nodes=10),
        ParallelConfig(jobs=1, store=store),
    )
    assert not result.completed
    assert len(store) == 0


def test_fault_injected_runs_are_never_stored(store, case_functions):
    config = EnumerationConfig(
        fault_injector=FaultInjector(seed=7, rate=0.2)
    )
    assert not cacheable(config)
    func = case_functions[("jpeg", "descale")]
    result = enumerate_space_parallel(
        func, config, ParallelConfig(jobs=1, store=store)
    )
    assert result.completed
    assert len(store) == 0


def test_corrupt_entry_reads_as_miss(store, case_functions):
    func = case_functions[("jpeg", "descale")]
    enumerate_space_parallel(
        func, EnumerationConfig(), ParallelConfig(jobs=1, store=store)
    )
    config = EnumerationConfig()
    serial = enumerate_space(func, config)
    root_key = serial.dag.root.key
    path = store.entry_path(func.name, root_key, config)
    with open(path, "w") as handle:
        handle.write("{ not json")
    assert store.get(func.name, root_key, config) is None
    assert store.misses >= 1


def test_direct_put_get_roundtrip(store, case_functions, serial_results):
    serial = serial_results[("fft", "fcos")]
    func_name = serial.dag.function_name
    root_key = serial.dag.root.key
    config = EnumerationConfig()
    path = store.put(func_name, root_key, config, serial)
    assert path is not None
    loaded = store.get(func_name, root_key, config)
    assert loaded is not None
    assert dag_snapshot(loaded.dag) == dag_snapshot(serial.dag)
    assert loaded.attempted_phases == serial.attempted_phases
    assert loaded.levels_completed == serial.levels_completed
