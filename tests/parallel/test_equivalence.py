"""Serial-vs-parallel equivalence: the subsystem's core contract.

The merged space DAG of a parallel run must be *bit-identical* to the
serial enumerator's — node ids, edges, dormant sets, counters, and the
Table 4–6 interaction statistics derived from them — at every worker
count, across lease recoveries, and across the serial↔parallel
checkpoint boundary in both directions.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.interactions import analyze_interactions
from repro.parallel import (
    EnumerationRequest,
    ParallelConfig,
    ParallelEnumerator,
    ProgressReporter,
    enumerate_space_parallel,
)
from tests.parallel.conftest import CASES, dag_snapshot


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_bit_identical_at_every_worker_count(
    jobs, case_functions, serial_results
):
    requests = [
        EnumerationRequest(f"{bench}.{name}", case_functions[(bench, name)])
        for bench, name in CASES
    ]
    results = ParallelEnumerator(
        EnumerationConfig(), ParallelConfig(jobs=jobs)
    ).enumerate(requests)
    for case, result in zip(CASES, results):
        serial = serial_results[case]
        assert result.completed
        assert dag_snapshot(result.dag) == dag_snapshot(serial.dag), case
        assert result.attempted_phases == serial.attempted_phases
        assert result.phases_applied == serial.phases_applied
        assert result.levels_completed == serial.levels_completed


def test_interaction_tables_match_serial(case_functions, serial_results):
    """Tables 4–6 computed from the merged DAGs equal the serial ones."""
    requests = [
        EnumerationRequest(f"{bench}.{name}", case_functions[(bench, name)])
        for bench, name in CASES
    ]
    parallel = ParallelEnumerator(
        EnumerationConfig(), ParallelConfig(jobs=2)
    ).enumerate(requests)
    reference = analyze_interactions(
        [serial_results[case] for case in CASES]
    )
    merged = analyze_interactions(parallel)
    assert merged.enabling == reference.enabling
    assert merged.disabling == reference.disabling
    assert merged.independence == reference.independence
    assert merged.start == reference.start


def test_exact_mode_equivalence(case_functions):
    func = case_functions[("sha", "rol")]
    serial = enumerate_space(func, EnumerationConfig(exact=True))
    parallel = enumerate_space_parallel(
        func, EnumerationConfig(exact=True), ParallelConfig(jobs=2)
    )
    assert dag_snapshot(parallel.dag) == dag_snapshot(serial.dag)


def test_killed_worker_lease_recovery(tmp_path, case_functions, serial_results):
    """A worker dying mid-shard loses its lease, the shard is re-leased
    to a respawned worker (resuming the shard checkpoint), and the
    merged space is still bit-identical."""
    events_path = tmp_path / "events.jsonl"
    reporter = ProgressReporter(jsonl_path=str(events_path))
    parallel = ParallelConfig(
        jobs=2,
        run_dir=str(tmp_path / "run"),
        lease_timeout=10.0,
        shard_checkpoint_interval=0.0,  # checkpoint at every node
        chaos={"worker": 0, "after_nodes": 2, "kind": "exit"},
        progress=reporter,
    )
    result = enumerate_space_parallel(
        case_functions[("sha", "rol")], EnumerationConfig(), parallel
    )
    reporter.close()
    serial = serial_results[("sha", "rol")]
    assert result.completed
    assert dag_snapshot(result.dag) == dag_snapshot(serial.dag)
    assert result.attempted_phases == serial.attempted_phases
    events = [
        json.loads(line) for line in events_path.read_text().splitlines()
    ]
    kinds = {event["event"] for event in events}
    assert "worker_dead" in kinds
    assert "lease_reclaim" in kinds


def test_hung_worker_lease_timeout(tmp_path, case_functions, serial_results):
    """A worker that stops heartbeating (hang, not crash) is terminated
    once its lease expires and the shard completes elsewhere."""
    events_path = tmp_path / "events.jsonl"
    reporter = ProgressReporter(jsonl_path=str(events_path))
    parallel = ParallelConfig(
        jobs=2,
        lease_timeout=1.5,
        heartbeat_interval=0.1,
        chaos={"worker": 0, "after_nodes": 2, "kind": "hang"},
        progress=reporter,
    )
    result = enumerate_space_parallel(
        case_functions[("jpeg", "descale")], EnumerationConfig(), parallel
    )
    reporter.close()
    serial = serial_results[("jpeg", "descale")]
    assert result.completed
    assert dag_snapshot(result.dag) == dag_snapshot(serial.dag)
    events = [
        json.loads(line) for line in events_path.read_text().splitlines()
    ]
    assert "lease_timeout" in {event["event"] for event in events}


def test_serial_resume_of_parallel_checkpoint(tmp_path, case_functions, serial_results):
    """A parallel run aborted by budget leaves a PR-1-format level
    checkpoint that the *serial* enumerator can resume to the full,
    bit-identical space."""
    func = case_functions[("sha", "rol")]
    aborted = enumerate_space_parallel(
        func,
        EnumerationConfig(max_nodes=20),
        ParallelConfig(jobs=2, run_dir=str(tmp_path)),
        label=func.name,
    )
    assert not aborted.completed
    assert aborted.abort_reason == "max_nodes"
    checkpoint = tmp_path / f"{func.name}.ckpt.json"
    assert checkpoint.exists()
    resumed = enumerate_space(
        func,
        EnumerationConfig(checkpoint_path=str(checkpoint), resume=True),
    )
    serial = serial_results[("sha", "rol")]
    assert resumed.completed
    assert resumed.resumed_from == str(checkpoint)
    assert dag_snapshot(resumed.dag) == dag_snapshot(serial.dag)
    assert resumed.attempted_phases == serial.attempted_phases


def test_parallel_resume_of_serial_checkpoint(tmp_path, case_functions, serial_results):
    """...and the other direction: a serially-written checkpoint is
    picked up by ``ParallelConfig(resume=True)``."""
    func = case_functions[("sha", "rol")]
    checkpoint = tmp_path / f"{func.name}.ckpt.json"
    aborted = enumerate_space(
        func,
        EnumerationConfig(
            max_nodes=20,
            checkpoint_path=str(checkpoint),
        ),
    )
    assert not aborted.completed
    assert checkpoint.exists()
    resumed = enumerate_space_parallel(
        func,
        EnumerationConfig(),
        ParallelConfig(jobs=2, run_dir=str(tmp_path), resume=True),
        label=func.name,
    )
    serial = serial_results[("sha", "rol")]
    assert resumed.completed
    assert resumed.resumed_from == str(checkpoint)
    assert dag_snapshot(resumed.dag) == dag_snapshot(serial.dag)
    assert resumed.attempted_phases == serial.attempted_phases


def test_completed_run_discards_run_dir_checkpoints(tmp_path, case_functions):
    parallel = ParallelConfig(
        jobs=2, run_dir=str(tmp_path), shard_checkpoint_interval=0.0
    )
    result = enumerate_space_parallel(
        case_functions[("jpeg", "descale")], EnumerationConfig(), parallel
    )
    assert result.completed
    assert glob.glob(os.path.join(str(tmp_path), "*.ckpt.json")) == []


def test_unsupported_configs_are_rejected(case_functions):
    with pytest.raises(ValueError, match="share_prefixes"):
        ParallelEnumerator(EnumerationConfig(share_prefixes=False))
    with pytest.raises(ValueError, match="ParallelConfig"):
        ParallelEnumerator(EnumerationConfig(checkpoint_path="x.json"))
    with pytest.raises(ValueError, match="jobs"):
        ParallelConfig(jobs=0)
    with pytest.raises(ValueError, match="source"):
        ParallelEnumerator(EnumerationConfig(difftest=True)).enumerate(
            [EnumerationRequest("f", case_functions[("sha", "rol")])]
        )


def test_difftest_guard_runs_in_workers(case_functions):
    """Differential testing works across the process boundary: the
    worker recompiles the program from source and the guarded space
    still matches an unguarded serial run (all phases are correct)."""
    from repro.programs import PROGRAMS

    func = case_functions[("jpeg", "descale")]
    result = enumerate_space_parallel(
        func,
        EnumerationConfig(difftest=True),
        ParallelConfig(jobs=2),
        source=PROGRAMS["jpeg"].source,
    )
    serial = enumerate_space(func, EnumerationConfig())
    assert result.completed
    assert len(result.quarantine.records) == 0
    assert dag_snapshot(result.dag) == dag_snapshot(serial.dag)
