#!/usr/bin/env python3
"""Genetic phase-order search, checked against the exhaustive optimum.

The paper's related work searches the phase order space with genetic
algorithms; the exhaustive enumeration of this repository makes it
possible to ask how good those searches actually are.  This example
runs the GA (with the fingerprint-based redundancy detection of [14])
on functions whose spaces were fully enumerated and compares the GA's
best code size with the true optimum — and shows the section 7 idea of
guiding mutation with the measured enabling probabilities.

Run:  python examples/genetic_search.py
"""

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.interactions import analyze_interactions
from repro.opt import implicit_cleanup
from repro.programs import compile_benchmark
from repro.search import GeneticSearcher

STUDY = [
    ("sha", "rol"),
    ("jpeg", "descale"),
    ("jpeg", "rgb_to_y"),
    ("bitcount", "tbl_bitcount"),
    ("stringsearch", "set_pattern"),
]


def fresh(bench, name):
    func = compile_benchmark(bench).functions[name]
    implicit_cleanup(func)
    return func


def main():
    print("enumerating the study spaces (for ground truth + training) ...")
    results = {}
    for bench, name in STUDY:
        results[(bench, name)] = enumerate_space(
            fresh(bench, name), EnumerationConfig(max_nodes=4000, time_limit=60)
        )
    interactions = analyze_interactions(results.values())

    header = (
        f"{'function':26s} {'optimum':>8s} {'GA':>6s} {'guided GA':>10s} "
        f"{'evals':>6s} {'cache hits':>11s}"
    )
    print("\n" + header)
    print("-" * len(header))
    for (bench, name), result in results.items():
        optimum = result.dag.min_codesize()
        uniform = GeneticSearcher(
            fresh(bench, name), generations=12, seed=42
        ).run()
        guided = GeneticSearcher(
            fresh(bench, name),
            generations=12,
            seed=42,
            interactions=interactions,
        ).run()
        optimum_text = str(optimum) if optimum is not None else "N/A"
        print(
            f"{bench + '.' + name:26s} {optimum_text:>8s} "
            f"{uniform.best_fitness:>6.0f} {guided.best_fitness:>10.0f} "
            f"{guided.evaluations:>6d} {guided.cache_hits:>11d}"
        )
    print(
        "\n(cache hits: sequences pruned by the paper's fingerprint-based "
        "redundancy detection [14])"
    )


if __name__ == "__main__":
    main()
