#!/usr/bin/env python3
"""The paper's motivating claim: no universal phase order exists.

"It is widely acknowledged that a single order of optimization phases
does not produce optimal code for every application" (section 1).
With the space enumerated exhaustively, the claim can be demonstrated
rather than acknowledged: this example compiles a set of functions with
several fixed phase orders and shows that every order is beaten by the
exhaustive optimum on some function — and that different orders win on
different functions.

It also locates the batch compiler's result inside each enumerated
space: the fixed order usually lands on a leaf, but rarely the best.

Run:  python examples/no_universal_order.py
"""

from repro.core.batch import BatchCompiler
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.opt import apply_phase, implicit_cleanup, phase_by_id
from repro.programs import compile_benchmark

STUDY = [
    ("sha", "rol"),
    ("jpeg", "descale"),
    ("jpeg", "rgb_to_y"),
    ("jpeg", "range_limit"),
    ("bitcount", "tbl_bitcount"),
    ("stringsearch", "set_pattern"),
    ("sha", "sha_init"),
]

# A handful of plausible fixed orders (each applied twice through).
FIXED_ORDERS = {
    "cleanup-first": "biurs" + "schklgjqnd" * 2,
    "select-first": "s" + "ckhlgjqnbiurd" * 2,
    "cse-first": "c" + "shkqlgjnbiurd" * 2,
    "alloc-early": "sck" + "hslgjqnbiurd" * 2,
}


def fresh(bench, name):
    func = compile_benchmark(bench).functions[name]
    implicit_cleanup(func)
    return func


def main():
    rows = []
    for bench, name in STUDY:
        func = fresh(bench, name)
        result = enumerate_space(
            func, EnumerationConfig(max_nodes=5000, time_limit=60, exact=True)
        )
        optimum = result.dag.min_codesize()
        sizes = {}
        for label, order in FIXED_ORDERS.items():
            trial = fresh(bench, name)
            for phase_id in order:
                apply_phase(trial, phase_by_id(phase_id))
            sizes[label] = trial.num_instructions()
        batch = fresh(bench, name)
        BatchCompiler().compile(batch)
        node = result.dag.find_instance(batch)
        rows.append((f"{bench}.{name}", optimum, sizes, batch.num_instructions(), node))

    header = f"{'function':26s} {'optimum':>8s}"
    for label in FIXED_ORDERS:
        header += f" {label:>14s}"
    header += f" {'batch':>6s} {'in space':>9s}"
    print(header)
    print("-" * len(header))
    losses = {label: 0 for label in FIXED_ORDERS}
    for name, optimum, sizes, batch_size, node in rows:
        line = f"{name:26s} {str(optimum) if optimum else 'N/A':>8s}"
        for label in FIXED_ORDERS:
            marker = ""
            if optimum is not None and sizes[label] > optimum:
                marker = "*"
                losses[label] += 1
            line += f" {str(sizes[label]) + marker:>14s}"
        where = "yes" if node is not None else "no"
        line += f" {batch_size:>6d} {where:>9s}"
        print(line)
    print("-" * len(header))
    print("* = worse than the exhaustive optimum")
    for label, count in losses.items():
        print(f"  {label}: suboptimal on {count}/{len(rows)} functions")
    beaten_everywhere = all(count > 0 for count in losses.values())
    print(
        "\nevery fixed order is suboptimal somewhere: "
        f"{beaten_everywhere} — the paper's motivating claim"
    )


if __name__ == "__main__":
    main()
