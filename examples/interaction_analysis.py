#!/usr/bin/env python3
"""Phase interaction analysis over enumerated spaces (paper section 5).

Enumerates the phase order spaces of several functions from the
MiBench-like suite, builds the weighted DAG of each (Figure 7), and
aggregates the enabling (Table 4), disabling (Table 5), and
independence (Table 6) probabilities.

Run:  python examples/interaction_analysis.py
"""

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.interactions import analyze_interactions
from repro.opt import implicit_cleanup
from repro.programs import PROGRAMS, compile_benchmark

# Small-to-medium functions keep this example under a couple minutes.
STUDY = [
    ("bitcount", "bit_count"),
    ("bitcount", "bit_shifter"),
    ("dijkstra", "next_rand"),
    ("jpeg", "descale"),
    ("jpeg", "range_limit"),
    ("sha", "rol"),
    ("stringsearch", "plant_pattern"),
]


def main():
    results = []
    for bench_name, func_name in STUDY:
        program = compile_benchmark(bench_name)
        func = program.functions[func_name]
        implicit_cleanup(func)
        result = enumerate_space(
            func, EnumerationConfig(max_nodes=5_000, time_limit=60)
        )
        dag = result.dag
        weights = dag.weights()
        status = "complete" if result.completed else "truncated"
        print(
            f"{bench_name}.{func_name}: {len(dag)} instances, "
            f"{len(dag.leaves())} leaves, depth {dag.depth()}, "
            f"{weights[dag.root_id]} distinct active sequences ({status})"
        )
        results.append(result)

    analysis = analyze_interactions(results)
    print()
    print(analysis.format_enabling())
    print()
    print(analysis.format_disabling())
    print()
    print(analysis.format_independence())

    print("\nheadline relations (compare with the paper):")
    print(f"  P(s active at start)     = {analysis.start.get('s', 0):.2f}")
    print(f"  P(c active at start)     = {analysis.start.get('c', 0):.2f}")
    print(f"  P(k enabled by s)        = {analysis.enabling.get('k', {}).get('s', 0):.2f}")
    print(f"  P(s enabled by k)        = {analysis.enabling.get('s', {}).get('k', 0):.2f}")
    print(f"  P(o disabled by c)       = {analysis.disabling.get('o', {}).get('c', 0):.2f}")


if __name__ == "__main__":
    main()
