#!/usr/bin/env python3
"""Probabilistic batch compilation (paper section 6, Table 7).

Trains the Figure 8 probabilistic compiler on enumerated phase order
spaces, then compiles every function of every MiBench-like benchmark
with both the conventional batch compiler and the probabilistic one,
comparing attempted phases, compile time, code size, and dynamic
instruction counts.

Run:  python examples/probabilistic_compiler.py
"""

import time

from repro.core.batch import BatchCompiler
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.interactions import analyze_interactions
from repro.core.probabilistic import ProbabilisticCompiler
from repro.opt import implicit_cleanup
from repro.programs import PROGRAMS, compile_benchmark
from repro.vm import Interpreter

TRAINING = [
    ("bitcount", "bit_count"),
    ("dijkstra", "next_rand"),
    ("jpeg", "descale"),
    ("jpeg", "range_limit"),
    ("sha", "rol"),
]


def train():
    results = []
    for bench_name, func_name in TRAINING:
        func = compile_benchmark(bench_name).functions[func_name]
        implicit_cleanup(func)
        results.append(
            enumerate_space(func, EnumerationConfig(max_nodes=4000, time_limit=45))
        )
    return analyze_interactions(results)


def main():
    print("training interaction probabilities on enumerated spaces ...")
    interactions = train()
    compiler_prob = ProbabilisticCompiler(interactions)
    compiler_batch = BatchCompiler()

    header = (
        f"{'function':28s} {'batch att/act':>14s} {'prob att/act':>14s} "
        f"{'time':>6s} {'size':>6s} {'speed':>6s}"
    )
    print("\n" + header)
    print("-" * len(header))

    totals = {"batch_att": 0, "prob_att": 0, "batch_t": 0.0, "prob_t": 0.0}
    size_ratios, speed_ratios = [], []

    for bench_name, bench in PROGRAMS.items():
        batch_prog = compile_benchmark(bench_name)
        prob_prog = compile_benchmark(bench_name)

        reports = {}
        for func_name in batch_prog.functions:
            rb = compiler_batch.compile(batch_prog.functions[func_name])
            rp = compiler_prob.compile(prob_prog.functions[func_name])
            reports[func_name] = (rb, rp)
            totals["batch_att"] += rb.attempted
            totals["prob_att"] += rp.attempted
            totals["batch_t"] += rb.elapsed
            totals["prob_t"] += rp.elapsed

        batch_run = Interpreter(batch_prog, fuel=50_000_000).run(bench.entry)
        prob_run = Interpreter(prob_prog, fuel=50_000_000).run(bench.entry)
        assert batch_run.value == prob_run.value, bench_name

        for func_name, (rb, rp) in reports.items():
            size_ratio = rp.code_size / rb.code_size if rb.code_size else 1.0
            size_ratios.append(size_ratio)
            b_dyn = batch_run.per_function.get(func_name)
            p_dyn = prob_run.per_function.get(func_name)
            speed = f"{p_dyn / b_dyn:6.3f}" if b_dyn and p_dyn else "   N/A"
            if b_dyn and p_dyn:
                speed_ratios.append(p_dyn / b_dyn)
            time_ratio = rp.elapsed / rb.elapsed if rb.elapsed else 1.0
            print(
                f"{bench_name + '.' + func_name:28s} "
                f"{rb.attempted:>7d}/{rb.active:<5d} "
                f"{rp.attempted:>7d}/{rp.active:<5d} "
                f"{time_ratio:6.3f} {size_ratio:6.3f} {speed}"
            )

    print("-" * len(header))
    att_ratio = totals["prob_att"] / totals["batch_att"]
    time_ratio = totals["prob_t"] / totals["batch_t"]
    print(
        f"{'average':28s} attempted-phase ratio {att_ratio:.3f}, "
        f"compile-time ratio {time_ratio:.3f}, "
        f"code-size ratio {sum(size_ratios)/len(size_ratios):.3f}, "
        f"dynamic-count ratio "
        f"{sum(speed_ratios)/len(speed_ratios):.3f}"
    )
    print(
        "\n(the paper reports ~1/3 the compile time at comparable code "
        "size and speed — Table 7)"
    )


if __name__ == "__main__":
    main()
