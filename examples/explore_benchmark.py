#!/usr/bin/env python3
"""Explore the phase order space of MiBench-like functions (Table 3).

Enumerates the space of selected benchmark functions, prints their
Table 3 rows, and then *executes* the best and worst leaf instances of
one function to show the dynamic impact of phase ordering.

Run:  python examples/explore_benchmark.py
"""

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.stats import FunctionSpaceStats, format_stats_table, static_function_facts
from repro.opt import implicit_cleanup
from repro.programs import PROGRAMS, compile_benchmark
from repro.vm import Interpreter

STUDY = [
    ("bitcount", "bit_count"),
    ("bitcount", "bit_shifter"),
    ("dijkstra", "next_rand"),
    ("jpeg", "descale"),
    ("jpeg", "range_limit"),
    ("sha", "rol"),
    ("stringsearch", "plant_pattern"),
    ("stringsearch", "bmh_init"),
]


def main():
    rows = []
    keepers = {}
    for bench_name, func_name in STUDY:
        program = compile_benchmark(bench_name)
        func = program.functions[func_name]
        implicit_cleanup(func)
        insts, blocks, branches, loops = static_function_facts(func)
        result = enumerate_space(
            func,
            EnumerationConfig(max_nodes=6000, time_limit=90, keep_functions=True),
        )
        rows.append(
            FunctionSpaceStats(
                f"{func_name}({bench_name[0]})",
                insts,
                blocks,
                branches,
                loops,
                result,
            )
        )
        keepers[(bench_name, func_name)] = result

    print(format_stats_table(rows))

    # Execute best vs worst leaf of bit_count inside the full program.
    result = keepers[("bitcount", "bit_count")]
    dag = result.dag
    leaves = dag.leaves()
    if leaves:
        best = min(leaves, key=lambda n: n.num_insts)
        worst = max(leaves, key=lambda n: n.num_insts)
        print(
            f"\nbit_count: best leaf {best.num_insts} insts, "
            f"worst leaf {worst.num_insts} insts"
        )
        for label, leaf in (("best", best), ("worst", worst)):
            program = compile_benchmark("bitcount")
            program.functions["bit_count"] = leaf.function
            run = Interpreter(program, fuel=50_000_000).run("main")
            print(
                f"  whole-benchmark run with {label} bit_count: "
                f"value={run.value}, dynamic insts={run.total_insts}"
            )


if __name__ == "__main__":
    main()
