#!/usr/bin/env python3
"""Section 7 future work: pricing a whole space with few executions.

The paper's eventual goal is finding the instance with near-optimal
*execution* performance, but simulating hundreds of thousands of
instances is infeasible.  Its proposed lever is the CF column of
Table 3: instances sharing a control flow execute corresponding blocks
equally often, so dynamic instruction counts for the whole space follow
from one profiled execution per distinct control flow.

This example enumerates a function's space, prices every instance with
the oracle, and reports how few executions that took — then contrasts
the best-code-size leaf with the best-dynamic-count leaf.

Run:  python examples/dynamic_inference.py
"""

from repro.core.dynamic import DynamicCountOracle
from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.frontend import compile_source
from repro.opt import implicit_cleanup

SOURCE = """
int a[30];
int weighted_sum(int scale) {
    int total = 0;
    int i;
    for (i = 0; i < 30; i++) {
        if (a[i] > 0)
            total += a[i] * scale;
    }
    return total;
}
"""


def drive(interpreter):
    for i in range(30):
        interpreter.store_global("a", (i % 7) - 3, i)
    interpreter.run("weighted_sum", (5,))


def main():
    program = compile_source(SOURCE)
    func = program.function("weighted_sum")
    implicit_cleanup(func)
    print("enumerating weighted_sum's space (capped) ...")
    result = enumerate_space(
        func,
        EnumerationConfig(max_nodes=4000, time_limit=120, keep_functions=True),
    )
    dag = result.dag
    print(f"{len(dag)} instances, {dag.distinct_control_flows()} distinct control flows")

    oracle = DynamicCountOracle(program, "weighted_sum", drive)
    prices = oracle.price_space(dag)
    print(
        f"priced {len(prices)} instances with only {oracle.executions} "
        "executions (one per control flow)"
    )

    leaves = [node for node in dag.leaves() if node.function is not None]
    if leaves:
        by_size = min(leaves, key=lambda n: n.num_insts)
        by_speed = min(leaves, key=lambda n: prices[n.node_id])
        print(
            f"\nsmallest leaf   : {by_size.num_insts} insts, "
            f"{prices[by_size.node_id]} dynamic insts"
        )
        print(
            f"fastest leaf    : {by_speed.num_insts} insts, "
            f"{prices[by_speed.node_id]} dynamic insts"
        )
        if by_size.node_id != by_speed.node_id:
            print("(code size and speed optima are different instances — "
                  "the phase ordering trade-off is real)")
    else:
        best = min(prices.items(), key=lambda kv: kv[1])
        print(f"\nfastest enumerated instance: {best[1]} dynamic insts")


if __name__ == "__main__":
    main()
