#!/usr/bin/env python3
"""Quickstart: enumerate a function's optimization phase order space.

Compiles a small mini-C function, exhaustively enumerates every
distinct function instance reachable by reordering the fifteen
optimization phases (the paper's core algorithm), and reports the
statistics of Table 3 for it — then extracts the phase ordering that
reaches the smallest code.

Run:  python examples/quickstart.py
"""

from repro import EnumerationConfig, enumerate_space
from repro.frontend import compile_source
from repro.ir.printer import format_function
from repro.opt import apply_phase, implicit_cleanup, phase_by_id

SOURCE = """
int a[100];
int sum_array(void) {
    int sum = 0;
    int i;
    for (i = 0; i < 100; i++)
        sum += a[i];
    return sum;
}
"""


def best_sequence(dag):
    """Phase ids of a root path reaching a minimum-codesize leaf."""
    candidates = dag.leaves() or list(dag.nodes.values())
    best_leaf = min(candidates, key=lambda node: node.num_insts)
    # walk back to the root via parent links
    sequence = []
    node = best_leaf
    while node.parents:
        parent_id, phase_id = node.parents[0]
        sequence.append(phase_id)
        node = dag.nodes[parent_id]
    return "".join(reversed(sequence)), best_leaf


def main():
    program = compile_source(SOURCE)
    func = program.function("sum_array")
    implicit_cleanup(func)
    print(f"unoptimized sum_array: {func.num_instructions()} instructions\n")

    print("enumerating the phase order space (this takes a few minutes;")
    print("the space has tens of thousands of distinct instances) ...")
    config = EnumerationConfig(max_nodes=20_000, time_limit=120)
    result = enumerate_space(func, config)
    dag = result.dag

    print(f"\ndistinct function instances : {len(dag)}")
    print(f"attempted phases            : {result.attempted_phases}")
    print(f"largest active sequence     : {dag.depth()}")
    print(f"leaf instances              : {len(dag.leaves())}")
    print(f"distinct control flows      : {dag.distinct_control_flows()}")
    print(f"codesize range over leaves  : {dag.min_codesize()}..{dag.max_codesize()}")
    print(f"complete enumeration        : {result.completed}")
    if not result.completed:
        print(f"  (aborted: {result.abort_reason} — statistics are a lower bound)")

    sequence, leaf = best_sequence(dag)
    print(f"\nbest code size {leaf.num_insts} reached by sequence: {sequence}")

    # Replay it to show the final code.
    replay = compile_source(SOURCE).function("sum_array")
    implicit_cleanup(replay)
    for phase_id in sequence:
        assert apply_phase(replay, phase_by_id(phase_id))
    print("\nfinal code:")
    print(format_function(replay))


if __name__ == "__main__":
    main()
