#!/usr/bin/env python3
"""Figure 5 demo: detecting equivalent code under register renaming.

Different phase orderings consume registers and create blocks in
different orders, producing code that can differ *only* in register
numbers and label names.  The paper's naive remapping (renumber on
first encounter, scanning from the top block) maps such instances to
the same text, so the search space prunes them as one node.

This demo enumerates a small function's space, picks a DAG node that
two different orderings reach, replays both orderings, and shows that
the raw texts differ while the remapped texts coincide.

Run:  python examples/remapping_demo.py
"""

from repro.core.enumeration import EnumerationConfig, enumerate_space
from repro.core.fingerprint import fingerprint_function, remap_function_text
from repro.frontend import compile_source
from repro.ir.printer import format_function
from repro.opt import apply_phase, implicit_cleanup, phase_by_id

SOURCE = """
int gcd(int a, int b) {
    while (b != 0) {
        int t = b;
        b = a % b;
        a = t;
    }
    return a;
}
"""


def path_to(dag, node):
    """One root path (list of phase ids) reaching *node*."""
    sequence = []
    while node.parents:
        parent_id, phase_id = node.parents[0]
        sequence.append(phase_id)
        node = dag.nodes[parent_id]
    return list(reversed(sequence))


def replay(sequence):
    func = compile_source(SOURCE).function("gcd")
    implicit_cleanup(func)
    for phase_id in sequence:
        assert apply_phase(func, phase_by_id(phase_id))
    return func


def main():
    func = compile_source(SOURCE).function("gcd")
    implicit_cleanup(func)
    print("enumerating gcd's phase order space ...")
    result = enumerate_space(
        func, EnumerationConfig(max_nodes=4000, time_limit=90)
    )
    dag = result.dag
    print(f"{len(dag)} distinct instances\n")

    # Find a merged node whose two arrival paths produce raw texts that
    # differ (the Figure 5 situation: merged only thanks to remapping).
    for node in dag.nodes.values():
        if len(node.parents) < 2:
            continue
        paths = []
        seen_phases = set()
        for parent_id, phase_id in node.parents:
            if phase_id in seen_phases:
                continue
            seen_phases.add(phase_id)
            parent_path = path_to(dag, dag.nodes[parent_id])
            paths.append(parent_path + [phase_id])
        if len(paths) < 2:
            continue
        left, right = replay(paths[0]), replay(paths[1])
        if format_function(left) != format_function(right):
            print(f"orderings {''.join(paths[0])} and {''.join(paths[1])} "
                  "reach the same instance:\n")
            print("=== raw code after ordering 1 ===")
            print(format_function(left))
            print("\n=== raw code after ordering 2 ===")
            print(format_function(right))
            assert (
                fingerprint_function(left).key == fingerprint_function(right).key
            )
            print("\n=== common remapped form (Figure 5d) ===")
            print(remap_function_text(left))
            print(
                "\nfingerprint (insts, byte-sum, CRC): "
                f"{fingerprint_function(left).key}"
            )
            return
    print("(no rename-only merge found in this space — every merge was "
          "textually identical)")


if __name__ == "__main__":
    main()
